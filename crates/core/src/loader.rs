//! The linker interface (paper, Sec. 3 and 4.3).
//!
//! ldb reads the loader table — a PostScript dictionary generated from
//! `nm` output — to learn anchor-symbol addresses and the (address, name)
//! pairs of procedures. The frame-layout side differs by target: "the
//! VAX, SPARC, and 68020 share a single, machine-independent
//! implementation of the linker interface. The MIPS cannot use this
//! implementation because it has no frame pointer" — its frame sizes come
//! from the *runtime procedure table in the target address space*.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ldb_machine::{Arch, Rpt};
use ldb_postscript::{DictRef, Interp, Object, PsResult};

use crate::amemory::MemRef;

/// Frame metadata for one procedure, as the stack walkers need it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Procedure start address.
    pub proc_addr: u32,
    /// Frame size in bytes.
    pub frame_size: u32,
    /// Offset below the frame top where the return address is saved
    /// (RISC convention; CISC frames find it at fp+4).
    pub ra_offset: Option<u32>,
    /// Callee-saved registers this procedure saves.
    pub save_mask: u32,
    /// Offset below the frame top of the save area.
    pub save_offset: u32,
}

/// The loader table, parsed.
pub struct Loader {
    /// The whole loader dictionary.
    pub table: DictRef,
    /// The program's top-level symbol dictionary.
    pub top: DictRef,
    /// Anchor symbol → address.
    pub anchors: HashMap<String, u32>,
    /// (address, linker name) pairs, sorted by address.
    pub proctable: Vec<(u32, String)>,
    /// The architecture named in the symbol table.
    pub arch: Arch,
    /// Cached MIPS runtime procedure table.
    rpt: RefCell<Option<Rpt>>,
}

impl std::fmt::Debug for Loader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Loader {{ arch: {}, procs: {} }}", self.arch, self.proctable.len())
    }
}

impl Loader {
    /// Interpret loader-table PostScript and extract the pieces ldb
    /// needs. The arch dictionary must already be on the dictionary stack
    /// (symbol tables execute `Regset0` etc. while loading).
    ///
    /// # Errors
    /// PostScript errors and malformed tables.
    pub fn load(interp: &mut Interp, loader_ps: &str) -> PsResult<Loader> {
        interp.run_str(loader_ps)?;
        let table_obj = interp.pop()?;
        let table = table_obj.as_dict()?;
        let (top, anchors, proctable, arch);
        {
            let t = table.borrow();
            let top_obj = t
                .get_name("symtab")
                .cloned()
                .ok_or_else(|| bad("loader table has no /symtab"))?;
            top = top_obj.as_dict()?;
            let mut amap = HashMap::new();
            let am = t
                .get_name("anchormap")
                .cloned()
                .ok_or_else(|| bad("loader table has no /anchormap"))?
                .as_dict()?;
            for (k, v) in am.borrow().iter() {
                amap.insert(k.to_string().trim_start_matches('/').to_string(), v.as_int()? as u32);
            }
            anchors = amap;
            let mut procs = Vec::new();
            let pt = t
                .get_name("proctable")
                .cloned()
                .ok_or_else(|| bad("loader table has no /proctable"))?
                .as_array()?;
            let pt = pt.borrow();
            let mut i = 0;
            while i + 1 < pt.len() {
                procs.push((pt[i].as_int()? as u32, pt[i + 1].as_string()?.to_string()));
                i += 2;
            }
            procs.sort();
            proctable = procs;
            let arch_name = top
                .borrow()
                .get_name("architecture")
                .cloned()
                .ok_or_else(|| bad("symbol table has no /architecture"))?
                .as_string()?;
            arch = Arch::from_name(&arch_name)
                .ok_or_else(|| bad(format!("unknown architecture ({arch_name})")))?;
        }
        Ok(Loader { table, top, anchors, proctable, arch, rpt: RefCell::new(None) })
    }

    /// The procedure containing `pc`: the proctable pair with the largest
    /// address not above `pc` (mapping program counters to procedure
    /// addresses, the first step of pc → symbol-table entry).
    pub fn proc_containing(&self, pc: u32) -> Option<(u32, &str)> {
        let idx = self.proctable.partition_point(|(a, _)| *a <= pc);
        if idx == 0 {
            return None;
        }
        let (a, n) = &self.proctable[idx - 1];
        Some((*a, n))
    }

    /// The address of a procedure by linker name.
    pub fn proc_addr(&self, link_name: &str) -> Option<u32> {
        self.proctable.iter().find(|(_, n)| n == link_name).map(|(a, _)| *a)
    }

    /// Frame metadata for the procedure containing `pc`.
    ///
    /// The machine-independent implementation reads `/framesize`,
    /// `/savemask`, `/saveoffset` from the procedure's symbol-table entry;
    /// the MIPS implementation reads the runtime procedure table from the
    /// target address space through `wire`.
    pub fn frame_meta(&self, pc: u32, wire: &MemRef) -> Option<FrameMeta> {
        if self.arch == Arch::Mips {
            return self.frame_meta_mips(pc, wire);
        }
        let (proc_addr, link_name) = self.proc_containing(pc)?;
        let entry = self.proc_entry_by_link_name(link_name)?;
        let d = entry.as_dict().ok()?;
        let d = d.borrow();
        let get = |k: &str| d.get_name(k).and_then(|o| o.as_int().ok());
        Some(FrameMeta {
            proc_addr,
            frame_size: get("framesize")? as u32,
            ra_offset: get("raoffset").map(|v| v as u32),
            save_mask: get("savemask").unwrap_or(0) as u32,
            save_offset: get("saveoffset").unwrap_or(0) as u32,
        })
    }

    /// The MIPS linker interface: lazily read the runtime procedure table
    /// from target memory (paper: "gets machine-dependent data from the
    /// runtime procedure table located in the target address space").
    fn frame_meta_mips(&self, pc: u32, wire: &MemRef) -> Option<FrameMeta> {
        if self.rpt.borrow().is_none() {
            let addr = *self.anchors.get("__rpt")?;
            let rpt = Rpt::read_from(
                &mut |a| {
                    wire.fetch('d', a as i64, 4)
                        .map(|v| v as u32)
                        .map_err(|_| ldb_machine::Fault::BadAddress { addr: a, write: false })
                },
                addr,
            )
            .ok()?;
            *self.rpt.borrow_mut() = Some(rpt);
        }
        let rpt = self.rpt.borrow();
        let e = rpt.as_ref()?.lookup(pc)?;
        Some(FrameMeta {
            proc_addr: e.proc_addr,
            frame_size: e.frame_size,
            ra_offset: (e.ra_save_offset != u32::MAX).then_some(e.ra_save_offset),
            save_mask: e.save_mask,
            save_offset: e.save_offset,
        })
    }

    /// A procedure's symbol-table entry, by linker name (`_fib`).
    pub fn proc_entry_by_link_name(&self, link_name: &str) -> Option<Object> {
        // Externs carry a leading underscore; unit-private (static)
        // functions are unit-qualified (`fib_c.helper`).
        let source = link_name
            .strip_prefix('_')
            .unwrap_or_else(|| link_name.rsplit('.').next().unwrap_or(link_name));
        self.proc_entry_by_name(source)
    }

    /// A procedure's symbol-table entry, by source name (`fib`): externs
    /// first, then unit statics.
    pub fn proc_entry_by_name(&self, name: &str) -> Option<Object> {
        let top = self.top.borrow();
        for dictname in ["externs", "statics"] {
            if let Some(d) = top.get_name(dictname) {
                if let Ok(d) = d.as_dict() {
                    if let Some(e) = d.borrow().get_name(name) {
                        return Some(e.clone());
                    }
                }
            }
        }
        None
    }

    /// Iterate the `/procs` array (symbol-table entries of procedures).
    pub fn procs(&self) -> Vec<Object> {
        let top = self.top.borrow();
        match top.get_name("procs").and_then(|o| o.as_array().ok()) {
            Some(a) => a.borrow().clone(),
            None => Vec::new(),
        }
    }

    /// Share the cached runtime procedure table (tests, figures).
    pub fn rpt_cache(&self) -> Option<Rpt> {
        self.rpt.borrow().clone()
    }
}

/// A sharable loader.
pub type LoaderRef = Rc<Loader>;

fn bad(msg: impl Into<String>) -> ldb_postscript::PsError {
    ldb_postscript::PsError::runtime(ldb_postscript::ErrorKind::HostError, msg)
}
