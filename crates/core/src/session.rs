//! Sessions as self-contained values owned by worker threads — the
//! multi-tenant substrate under the `ldbd` daemon.
//!
//! [`Ldb`] is a deliberately single-threaded value: the interpreter, the
//! target views, and the wire cache share state through `Rc<RefCell<…>>`.
//! Rather than rewrite that web in `Arc`, a [`Session`] constructs the
//! *entire* debugger — interpreter, compiled target, cache, chaos layer,
//! trace, health counters — on its own worker thread and never lets it
//! leave: only `Send` data (command strings, transcripts, [`Health`]
//! snapshots, close reasons) crosses the command/response channels. One
//! tenant's panic unwinds one worker's stack; one tenant's wedged target
//! stalls one worker's loop; the neighbors never notice.
//!
//! Robustness is layered per tenant:
//!
//! - **Quarantine** — [`script::run_script`] already catches per-command
//!   panics; the worker adds a second `catch_unwind` around the whole
//!   script so even a panic in the runner itself leaves the worker alive.
//! - **Watchdog** — the controlling side arms a deadline per command
//!   ([`SessionConfig::watchdog`]). On expiry it sets the session's
//!   cancellation token (polled by the interpreter dispatch loop and the
//!   nub client's retry loops), waits [`SessionConfig::grace`] for the
//!   cancelled command's late reply, and the worker books the kill in
//!   that tenant's `info health` before running
//!   [`Ldb::recover_session`].
//! - **Bounded teardown** — every close path (client request, idle
//!   eviction, daemon shutdown, wedge) detaches live targets through
//!   [`Ldb::detach_all_with_deadline`] instead of relying on drop order,
//!   and journals a typed [`CloseReason`].
//!
//! [`SessionRegistry`] multiplexes many sessions behind one value: a hard
//! capacity cap with graceful rejection, per-tenant locking so tenants
//! run concurrently, idle eviction, and a shutdown that closes every
//! live tenant.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ldb_trace::{Layer, Severity};

use crate::debugger::{Health, Ldb};
use crate::script;
use crate::LdbError;

/// Why a session was closed — journaled as the tenant's final `close`
/// record and reported over the daemon protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The client asked (`close <id>`).
    ClientRequest,
    /// The idle reaper evicted it ([`SessionRegistry::evict_idle`]).
    Idle,
    /// The daemon is shutting down ([`SessionRegistry::close_all`]).
    Shutdown,
    /// The watchdog cancelled a command and the worker never came back
    /// within the grace period.
    Wedged,
}

impl CloseReason {
    /// The stable token used in journals and protocol replies.
    pub fn token(self) -> &'static str {
        match self {
            CloseReason::ClientRequest => "client-request",
            CloseReason::Idle => "idle",
            CloseReason::Shutdown => "shutdown",
            CloseReason::Wedged => "wedged",
        }
    }
}

impl std::fmt::Display for CloseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Per-session robustness policy.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Deadline per command. On expiry the controller sets the session's
    /// cancellation token and the wedged command aborts at its next poll
    /// point (interpreter dispatch, nub retry loop). `None` disables the
    /// watchdog: commands may block indefinitely.
    pub watchdog: Option<Duration>,
    /// After the watchdog fires, how long to wait for the cancelled
    /// command's late reply before declaring the worker wedged.
    pub grace: Duration,
    /// Per-target deadline for the best-effort `Detach` on teardown
    /// (see [`Ldb::detach_all_with_deadline`]).
    pub detach_deadline: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            watchdog: None,
            grace: Duration::from_secs(2),
            detach_deadline: Duration::from_millis(200),
        }
    }
}

/// Constructs the tenant's debugger on the worker thread: compile or
/// load the target, attach, set trace/chaos/fault policy. Returns a
/// banner for the `open` reply. Everything the closure captures must be
/// `Send`; the [`Ldb`] it receives never leaves the worker.
pub type SessionBuilder = Box<dyn FnOnce(&mut Ldb) -> Result<String, LdbError> + Send>;

/// Session failures as seen by the controlling side.
#[derive(Debug)]
pub enum SessionError {
    /// The registry is at its hard session cap.
    AtCapacity(usize),
    /// No session with that id (never existed, or already closed).
    UnknownSession(u64),
    /// The session was closed; the id is no longer usable.
    Closed,
    /// The watchdog cancelled a command and the worker missed the grace
    /// deadline; the session is unusable until closed.
    Wedged,
    /// The session builder failed (compile error, attach failure, panic
    /// during construction).
    Open(String),
    /// The worker thread died or broke protocol.
    Worker(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::AtCapacity(max) => {
                write!(f, "session limit reached ({max} live sessions)")
            }
            SessionError::UnknownSession(id) => write!(f, "no session {id}"),
            SessionError::Closed => f.write_str("session closed"),
            SessionError::Wedged => {
                f.write_str("session wedged (watchdog fired, worker missed grace deadline)")
            }
            SessionError::Open(m) => write!(f, "open failed: {m}"),
            SessionError::Worker(m) => write!(f, "session worker failed: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

enum ToWorker {
    Run(String),
    Health,
    Close(CloseReason),
}

enum FromWorker {
    Opened(Result<String, String>),
    Ran {
        transcript: String,
        outcome: script::BatchOutcome,
    },
    Health(Box<Health>),
    Closed(CloseReason),
}

/// How long a close waits for the worker's `Closed` acknowledgement
/// before abandoning the thread (it still exits on its own once its
/// cancelled command unwedges — the channel disconnect tears it down).
const CLOSE_DEADLINE: Duration = Duration::from_secs(10);

/// The controlling half of one tenant: a handle to a worker thread that
/// owns the whole debugger. All methods are request/response over
/// channels; the watchdog lives here, on the side that cannot wedge.
pub struct Session {
    to: Sender<ToWorker>,
    from: Receiver<FromWorker>,
    cancel: Arc<AtomicBool>,
    cfg: SessionConfig,
    join: Option<std::thread::JoinHandle<()>>,
    /// Set once closed (or abandoned as wedged): the handle is dead.
    closed: bool,
    /// Set when a command missed the grace deadline: the reply protocol
    /// is desynchronized, so only `close` is allowed.
    wedged: bool,
    last_used: Instant,
}

impl Session {
    /// Spawn a worker thread, construct the tenant's debugger on it via
    /// `builder`, and return the controlling handle once the build
    /// succeeds.
    ///
    /// # Errors
    /// [`SessionError::Open`] if the builder fails or panics;
    /// [`SessionError::Worker`] if the thread cannot be spawned or dies
    /// before replying.
    pub fn open(cfg: SessionConfig, builder: SessionBuilder) -> Result<Session, SessionError> {
        let (to_tx, to_rx) = unbounded::<ToWorker>();
        let (from_tx, from_rx) = unbounded::<FromWorker>();
        let cancel = Arc::new(AtomicBool::new(false));
        let worker_cancel = Arc::clone(&cancel);
        let worker_cfg = cfg.clone();
        let join = std::thread::Builder::new()
            .name("ldb-session".to_string())
            .spawn(move || worker(worker_cfg, worker_cancel, builder, to_rx, from_tx))
            .map_err(|e| SessionError::Worker(format!("spawn: {e}")))?;
        let mut session = Session {
            to: to_tx,
            from: from_rx,
            cancel,
            cfg,
            join: Some(join),
            closed: false,
            wedged: false,
            last_used: Instant::now(),
        };
        match session.from.recv() {
            Ok(FromWorker::Opened(Ok(_banner))) => Ok(session),
            Ok(FromWorker::Opened(Err(msg))) => {
                session.join_worker();
                session.closed = true;
                Err(SessionError::Open(msg))
            }
            Ok(_) | Err(_) => {
                session.join_worker();
                session.closed = true;
                Err(SessionError::Worker("worker died during open".to_string()))
            }
        }
    }

    /// Run a command script (one line or many) against the tenant's
    /// debugger and return the transcript, exactly as
    /// [`script::run_script`] formats it. Under a watchdog, a command
    /// that exceeds the deadline is cancelled; its transcript carries the
    /// cancellation as an `error:` line and the tenant's health counts
    /// the timeout.
    ///
    /// # Errors
    /// [`SessionError::Wedged`] if the cancelled command also missed the
    /// grace deadline (the session is then only good for closing).
    pub fn run(&mut self, commands: &str) -> Result<String, SessionError> {
        self.run_classified(commands).map(|(transcript, _)| transcript)
    }

    /// As [`Session::run`], returning the worker's typed
    /// [`BatchOutcome`](script::BatchOutcome) alongside the transcript —
    /// classified *inside* the worker, where the debugger's wire state
    /// and health counters live. The fleet supervisor builds its
    /// per-session outcome from this without parsing transcripts.
    ///
    /// # Errors
    /// As [`Session::run`].
    pub fn run_classified(
        &mut self,
        commands: &str,
    ) -> Result<(String, script::BatchOutcome), SessionError> {
        self.ready()?;
        self.last_used = Instant::now();
        self.to
            .send(ToWorker::Run(commands.to_string()))
            .map_err(|_| SessionError::Worker("worker gone".to_string()))?;
        let reply = match self.cfg.watchdog {
            None => self.from.recv().map_err(|_| recv_lost()),
            Some(deadline) => match self.from.recv_timeout(deadline) {
                Ok(m) => Ok(m),
                Err(RecvTimeoutError::Disconnected) => Err(recv_lost()),
                Err(RecvTimeoutError::Timeout) => {
                    // The command blew its deadline: cancel it and give
                    // the worker `grace` to abort, recover, and reply.
                    self.cancel.store(true, Ordering::Relaxed);
                    match self.from.recv_timeout(self.cfg.grace) {
                        Ok(m) => {
                            // The worker normally clears the token after
                            // booking the timeout; clear it here too for
                            // the race where the command finished just as
                            // the watchdog fired.
                            self.cancel.store(false, Ordering::Relaxed);
                            Ok(m)
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            self.wedged = true;
                            Err(SessionError::Wedged)
                        }
                        Err(RecvTimeoutError::Disconnected) => Err(recv_lost()),
                    }
                }
            },
        }?;
        match reply {
            FromWorker::Ran { transcript, outcome } => Ok((transcript, outcome)),
            _ => Err(SessionError::Worker("protocol desync on run".to_string())),
        }
    }

    /// A snapshot of the tenant's health counters. A read-only probe: it
    /// deliberately does *not* touch the idle clock, so a monitor polling
    /// health cannot keep an otherwise-idle tenant alive past
    /// [`SessionRegistry::evict_idle`]'s deadline.
    ///
    /// # Errors
    /// As [`Session::run`].
    pub fn health(&mut self) -> Result<Health, SessionError> {
        self.ready()?;
        self.to
            .send(ToWorker::Health)
            .map_err(|_| SessionError::Worker("worker gone".to_string()))?;
        // Health is answered from the worker's loop without touching the
        // target, so a generous fixed deadline suffices.
        match self.from.recv_timeout(CLOSE_DEADLINE) {
            Ok(FromWorker::Health(h)) => Ok(*h),
            Ok(_) => Err(SessionError::Worker("protocol desync on health".to_string())),
            Err(_) => Err(recv_lost()),
        }
    }

    /// Close the session: the worker journals the typed `reason`,
    /// detaches every live target with a bounded deadline, and exits;
    /// the thread is joined. Returns the reason the worker acknowledged.
    /// Closing twice is a no-op.
    ///
    /// # Errors
    /// [`SessionError::Wedged`] if the worker missed [`CLOSE_DEADLINE`];
    /// its thread is abandoned and exits on its own once the cancelled
    /// command unwedges (channel disconnect tears it down).
    pub fn close(&mut self, reason: CloseReason) -> Result<CloseReason, SessionError> {
        if self.closed {
            return Ok(reason);
        }
        // Abort whatever is in flight so the worker reaches its loop.
        self.cancel.store(true, Ordering::Relaxed);
        if self.to.send(ToWorker::Close(reason)).is_err() {
            // Worker already gone (it tears down on disconnect).
            self.join_worker();
            self.closed = true;
            return Ok(reason);
        }
        let deadline = Instant::now() + CLOSE_DEADLINE;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.from.recv_timeout(left) {
                // Drain stale replies (a wedged command's late `Ran`)
                // until the close acknowledgement.
                Ok(FromWorker::Closed(acked)) => {
                    self.join_worker();
                    self.closed = true;
                    return Ok(acked);
                }
                Ok(_) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    self.join_worker();
                    self.closed = true;
                    return Ok(reason);
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Abandon: drop our channel ends on return; the
                    // worker exits (and detaches) once it unwedges.
                    self.closed = true;
                    self.join = None;
                    return Err(SessionError::Wedged);
                }
            }
        }
    }

    /// Whether [`Session::close`] has retired this handle.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// How long since the last `run` request — what the idle reaper
    /// compares against its threshold. Health probes do not count as use.
    pub fn idle_for(&self) -> Duration {
        self.last_used.elapsed()
    }

    /// The session's cancellation token. The registry keeps a clone so
    /// daemon shutdown can abort in-flight commands *before* it can get
    /// each tenant's lock.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    fn ready(&self) -> Result<(), SessionError> {
        if self.closed {
            return Err(SessionError::Closed);
        }
        if self.wedged {
            return Err(SessionError::Wedged);
        }
        Ok(())
    }

    fn join_worker(&mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.closed {
            let _ = self.close(CloseReason::Shutdown);
        }
    }
}

fn recv_lost() -> SessionError {
    SessionError::Worker("worker died mid-command".to_string())
}

/// The worker thread: owns the tenant's entire debugger; nothing
/// non-`Send` escapes.
fn worker(
    cfg: SessionConfig,
    cancel: Arc<AtomicBool>,
    builder: SessionBuilder,
    to_worker: Receiver<ToWorker>,
    from_worker: Sender<FromWorker>,
) {
    let mut ldb = Ldb::new();
    ldb.set_cancel(Some(Arc::clone(&cancel)));
    match catch_unwind(AssertUnwindSafe(|| builder(&mut ldb))) {
        Ok(Ok(banner)) => {
            let _ = from_worker.send(FromWorker::Opened(Ok(banner)));
        }
        Ok(Err(e)) => {
            let _ = from_worker.send(FromWorker::Opened(Err(e.to_string())));
            ldb.detach_all_with_deadline(cfg.detach_deadline);
            return;
        }
        Err(payload) => {
            let msg = script::panic_text(payload.as_ref());
            let _ = from_worker
                .send(FromWorker::Opened(Err(format!("session builder panicked: {msg}"))));
            ldb.detach_all_with_deadline(cfg.detach_deadline);
            return;
        }
    }
    loop {
        match to_worker.recv() {
            Ok(ToWorker::Run(commands)) => {
                // run_script quarantines per-command panics itself; this
                // outer guard keeps the *worker* alive even if the runner
                // or the trace layer panics — one tenant, one blast
                // radius.
                let transcript =
                    match catch_unwind(AssertUnwindSafe(|| script::run_script(&mut ldb, &commands))) {
                        Ok(t) => t,
                        Err(payload) => {
                            let msg = script::panic_text(payload.as_ref());
                            ldb.note_quarantined();
                            ldb.recover_session();
                            format!("error: command quarantined (worker panic: {msg})\n")
                        }
                    };
                if cancel.load(Ordering::Relaxed) {
                    // The watchdog (or a shutdown) cancelled this
                    // command: book it in this tenant's health, put the
                    // session back into a coherent state, and re-arm.
                    ldb.note_watchdog_timeout();
                    ldb.recover_session();
                    cancel.store(false, Ordering::Relaxed);
                }
                // Classified here, where the debugger lives: wire state
                // and health counters never cross the channel raw.
                let outcome = script::BatchOutcome::classify(&ldb, &transcript);
                let _ = from_worker.send(FromWorker::Ran { transcript, outcome });
            }
            Ok(ToWorker::Health) => {
                let _ = from_worker.send(FromWorker::Health(Box::new(ldb.health())));
            }
            Ok(ToWorker::Close(reason)) => {
                ldb.trace().emit(
                    Layer::Dbg,
                    Severity::Info,
                    "close",
                    &[("reason", reason.token().to_string().into())],
                );
                ldb.detach_all_with_deadline(cfg.detach_deadline);
                let _ = from_worker.send(FromWorker::Closed(reason));
                return;
            }
            Err(_) => {
                // Controller abandoned us (wedge teardown or dropped
                // registry): journal it and detach anyway — the target
                // must not be left running with breakpoints planted.
                ldb.trace().emit(
                    Layer::Dbg,
                    Severity::Warn,
                    "close",
                    &[("reason", CloseReason::Shutdown.token().to_string().into())],
                );
                ldb.detach_all_with_deadline(cfg.detach_deadline);
                return;
            }
        }
    }
}

struct Tenant {
    session: Arc<Mutex<Session>>,
    /// Clone of the session's cancellation token, reachable without the
    /// per-tenant lock: shutdown aborts in-flight commands first, then
    /// takes each lock.
    cancel: Arc<AtomicBool>,
}

struct RegistryInner {
    next_id: u64,
    /// Opens in flight (capacity is reserved before the build so a burst
    /// of concurrent opens cannot overshoot the cap).
    reserved: usize,
    tenants: HashMap<u64, Tenant>,
}

/// Many sessions behind one value: the daemon's tenant table. A hard
/// capacity cap with graceful rejection, per-tenant locks so tenants run
/// concurrently, idle eviction, and whole-fleet shutdown.
pub struct SessionRegistry {
    max: usize,
    inner: Mutex<RegistryInner>,
    /// Worker threads abandoned because a close missed its deadline (see
    /// [`Session::close`]). Each exits on its own once its cancelled
    /// command unwedges, but until then it holds a thread and a target —
    /// soaks assert this gauge stays bounded.
    leaked_workers: std::sync::atomic::AtomicU64,
}

/// Lock a mutex, shrugging off poisoning: a tenant panicking while
/// holding its lock must not take the registry (or the tenant's own
/// handle) down with it — the state is channel-based and stays coherent.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SessionRegistry {
    /// A registry admitting at most `max` simultaneous sessions.
    pub fn new(max: usize) -> SessionRegistry {
        SessionRegistry {
            max,
            inner: Mutex::new(RegistryInner {
                next_id: 1,
                reserved: 0,
                tenants: HashMap::new(),
            }),
            leaked_workers: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The hard session cap.
    pub fn capacity(&self) -> usize {
        self.max
    }

    /// How many wedged worker threads have been abandoned by closes that
    /// missed their deadline. Monotonic: it counts abandonments, not
    /// currently-live leaked threads (each thread exits once its
    /// cancelled command unwedges) — a soak asserting boundedness wants
    /// the total, not a racy live count.
    pub fn leaked_workers(&self) -> u64 {
        self.leaked_workers.load(Ordering::Relaxed)
    }

    fn note_leaked(&self, r: &Result<CloseReason, SessionError>) {
        if matches!(r, Err(SessionError::Wedged)) {
            self.leaked_workers.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Live session count (not counting opens still building).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).tenants.len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Open a new session (see [`Session::open`]) and register it.
    /// Capacity is reserved up front, so the (possibly slow) build runs
    /// without holding the registry lock and a burst of opens cannot
    /// overshoot the cap.
    ///
    /// # Errors
    /// [`SessionError::AtCapacity`] at the cap — a graceful rejection,
    /// never a crash — plus the [`Session::open`] failures.
    pub fn open(&self, cfg: SessionConfig, builder: SessionBuilder) -> Result<u64, SessionError> {
        {
            let mut g = lock_unpoisoned(&self.inner);
            if g.tenants.len() + g.reserved >= self.max {
                return Err(SessionError::AtCapacity(self.max));
            }
            g.reserved += 1;
        }
        let opened = Session::open(cfg, builder);
        let mut g = lock_unpoisoned(&self.inner);
        g.reserved -= 1;
        let session = opened?;
        let id = g.next_id;
        g.next_id += 1;
        let cancel = session.cancel_token();
        g.tenants.insert(id, Tenant { session: Arc::new(Mutex::new(session)), cancel });
        Ok(id)
    }

    fn tenant(&self, id: u64) -> Result<Arc<Mutex<Session>>, SessionError> {
        lock_unpoisoned(&self.inner)
            .tenants
            .get(&id)
            .map(|t| Arc::clone(&t.session))
            .ok_or(SessionError::UnknownSession(id))
    }

    /// Run a command script in session `id` (see [`Session::run`]).
    /// Tenants lock individually: two tenants' commands run in parallel.
    ///
    /// # Errors
    /// [`SessionError::UnknownSession`], plus the [`Session::run`]
    /// failures.
    pub fn run(&self, id: u64, commands: &str) -> Result<String, SessionError> {
        let s = self.tenant(id)?;
        let mut s = lock_unpoisoned(&s);
        s.run(commands)
    }

    /// Session `id`'s health counters (see [`Session::health`]).
    ///
    /// # Errors
    /// As [`SessionRegistry::run`].
    pub fn health(&self, id: u64) -> Result<Health, SessionError> {
        let s = self.tenant(id)?;
        let mut s = lock_unpoisoned(&s);
        s.health()
    }

    /// Close session `id` with a typed reason and drop it from the
    /// table.
    ///
    /// # Errors
    /// [`SessionError::UnknownSession`]; [`SessionError::Wedged`] if the
    /// worker missed the close deadline (it is abandoned and still
    /// detaches on its own).
    pub fn close(&self, id: u64, reason: CloseReason) -> Result<CloseReason, SessionError> {
        let tenant = lock_unpoisoned(&self.inner)
            .tenants
            .remove(&id)
            .ok_or(SessionError::UnknownSession(id))?;
        // Abort any in-flight command before waiting on the lock.
        tenant.cancel.store(true, Ordering::Relaxed);
        let mut s = lock_unpoisoned(&tenant.session);
        let r = s.close(reason);
        self.note_leaked(&r);
        r
    }

    /// Evict every session idle for at least `max_idle`, closing each
    /// with [`CloseReason::Idle`]. A tenant whose lock is held is mid-
    /// command and therefore not idle — it is skipped, not waited on.
    /// Returns the evicted ids.
    pub fn evict_idle(&self, max_idle: Duration) -> Vec<u64> {
        let snapshot: Vec<(u64, Arc<Mutex<Session>>)> = lock_unpoisoned(&self.inner)
            .tenants
            .iter()
            .map(|(id, t)| (*id, Arc::clone(&t.session)))
            .collect();
        let mut evicted = Vec::new();
        for (id, session) in snapshot {
            let Ok(mut s) = session.try_lock() else { continue };
            if !s.is_closed() && s.idle_for() >= max_idle {
                let r = s.close(CloseReason::Idle);
                self.note_leaked(&r);
                evicted.push(id);
            }
        }
        if !evicted.is_empty() {
            let mut g = lock_unpoisoned(&self.inner);
            for id in &evicted {
                g.tenants.remove(id);
            }
        }
        evicted
    }

    /// Close every live session with the given reason (daemon shutdown
    /// uses [`CloseReason::Shutdown`]): all in-flight commands are
    /// cancelled first, then each tenant is closed — every live target
    /// gets its best-effort bounded `Detach`. Returns how many sessions
    /// were closed.
    pub fn close_all(&self, reason: CloseReason) -> usize {
        let tenants: Vec<Tenant> = {
            let mut g = lock_unpoisoned(&self.inner);
            g.tenants.drain().map(|(_, t)| t).collect()
        };
        // First pass: abort all in-flight commands at once, so a fleet of
        // mid-command tenants unwedges in parallel rather than serially.
        for t in &tenants {
            t.cancel.store(true, Ordering::Relaxed);
        }
        let mut closed = 0;
        for t in tenants {
            let mut s = lock_unpoisoned(&t.session);
            let r = s.close(reason);
            self.note_leaked(&r);
            if r.is_ok() {
                closed += 1;
            }
        }
        closed
    }
}

impl Drop for SessionRegistry {
    fn drop(&mut self) {
        self.close_all(CloseReason::Shutdown);
    }
}
