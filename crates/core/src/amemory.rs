//! Abstract memories (paper, Sec. 4.1).
//!
//! An abstract memory is a collection of *spaces* (single letters: `c`
//! code, `d` data, `r` integer registers, `f` floating registers, `x`
//! extra registers, `l` frame-locals) addressed by integer offsets. ldb
//! combines instances into a DAG per procedure activation:
//!
//! * the **wire** forwards fetches and stores to the nub (which serves
//!   only the code and data spaces),
//! * the **alias** memory translates register-space locations into code or
//!   data locations (the saved-register area of a context or stack frame)
//!   or into immediate values (the virtual frame pointer),
//! * the **register** memory turns sub-word accesses into full-word
//!   accesses so target byte order is irrelevant — ldb runs the same code
//!   against little- and big-endian MIPS targets,
//! * the **joined** memory routes each space to the right component and is
//!   what the rest of the debugger sees.
//!
//! Machine-independent code manipulates machine-dependent *data* (the
//! aliases); no machine-dependent code is involved, so cross-architecture
//! debugging is free.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use ldb_nub::{NubClient, NubError};

/// Errors from abstract-memory operations.
#[derive(Debug)]
pub enum MemError {
    /// The nub rejected the access or the connection failed.
    Nub(NubError),
    /// No component serves this space.
    NoSpace(char),
    /// A store to an immediate location.
    ImmutableLocation,
    /// Unsupported access width.
    BadSize(u8),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Nub(e) => write!(f, "{e}"),
            MemError::NoSpace(s) => write!(f, "no `{s}` space in this memory"),
            MemError::ImmutableLocation => write!(f, "store to an immediate location"),
            MemError::BadSize(n) => write!(f, "unsupported access width {n}"),
        }
    }
}

impl std::error::Error for MemError {}

impl From<NubError> for MemError {
    fn from(e: NubError) -> Self {
        MemError::Nub(e)
    }
}

/// Result alias for memory operations.
pub type MemResult<T> = Result<T, MemError>;

/// An abstract memory: fetch and store raw values by (space, offset,
/// width). Widths are 1, 2, 4, or 8 bytes; values travel as host `u64`s
/// (the wire ships them little-endian, so byte order never leaks).
pub trait AbstractMemory {
    /// Fetch a value.
    ///
    /// # Errors
    /// Unserved spaces, nub failures, bad widths.
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64>;

    /// Store a value.
    ///
    /// # Errors
    /// Unserved spaces, nub failures, bad widths, immutable locations.
    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()>;

    /// A short name for diagnostics and the F4 figure.
    fn name(&self) -> &'static str;
}

/// A shared abstract memory.
pub type MemRef = Rc<dyn AbstractMemory>;

/// The wire: forwards everything to the nub. The nub serves only the code
/// and data spaces.
pub struct WireMemory {
    client: Rc<RefCell<NubClient>>,
}

impl WireMemory {
    /// Wrap a nub connection.
    pub fn new(client: Rc<RefCell<NubClient>>) -> WireMemory {
        WireMemory { client }
    }
}

impl AbstractMemory for WireMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        if space != 'c' && space != 'd' {
            return Err(MemError::NoSpace(space));
        }
        Ok(self.client.borrow_mut().fetch(space, offset as u32, size)?)
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        if space != 'c' && space != 'd' {
            return Err(MemError::NoSpace(space));
        }
        Ok(self.client.borrow_mut().store(space, offset as u32, size, value)?)
    }

    fn name(&self) -> &'static str {
        "wire"
    }
}

/// Where an alias points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AliasTarget {
    /// A location in an underlying space (usually `d`: the context or a
    /// stack slot).
    Mem(char, i64),
    /// An immediate value (e.g. the virtual frame pointer).
    Imm(u64),
}

/// The alias memory: exact-index aliases for registers, and linear maps
/// for whole spaces (the `l` frame-local space maps to `d` at vfp+offset).
pub struct AliasMemory {
    under: MemRef,
    regs: RefCell<HashMap<(char, i64), AliasTarget>>,
    linear: HashMap<char, (char, i64)>,
}

impl AliasMemory {
    /// An alias memory over `under`.
    pub fn new(under: MemRef) -> AliasMemory {
        AliasMemory { under, regs: RefCell::new(HashMap::new()), linear: HashMap::new() }
    }

    /// Add an exact-index alias (register `idx` of `space`).
    pub fn alias(&self, space: char, idx: i64, target: AliasTarget) {
        self.regs.borrow_mut().insert((space, idx), target);
    }

    /// Add a linear space map: `space` offset o → (`to`, base + o).
    pub fn map_space(&mut self, space: char, to: char, base: i64) {
        self.linear.insert(space, (to, base));
    }

    /// Copy all exact-index aliases from another alias memory (the paper's
    /// reuse of aliases from the called frame for unsaved registers).
    pub fn inherit_from(&self, other: &AliasMemory) {
        let theirs = other.regs.borrow();
        let mut mine = self.regs.borrow_mut();
        for (k, v) in theirs.iter() {
            mine.entry(*k).or_insert(*v);
        }
    }

    fn resolve(&self, space: char, offset: i64) -> MemResult<AliasTarget> {
        if let Some(&(to, base)) = self.linear.get(&space) {
            return Ok(AliasTarget::Mem(to, base + offset));
        }
        self.regs
            .borrow()
            .get(&(space, offset))
            .copied()
            .ok_or(MemError::NoSpace(space))
    }
}

impl AbstractMemory for AliasMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        match self.resolve(space, offset)? {
            AliasTarget::Mem(to, addr) => self.under.fetch(to, addr, size),
            AliasTarget::Imm(v) => Ok(truncate(v, size)),
        }
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        match self.resolve(space, offset)? {
            AliasTarget::Mem(to, addr) => self.under.store(to, addr, size, value),
            AliasTarget::Imm(_) => Err(MemError::ImmutableLocation),
        }
    }

    fn name(&self) -> &'static str {
        "alias"
    }
}

/// The register memory: sub-word fetches from register spaces become
/// full-word fetches of the whole register, so the location of "the least
/// significant byte" never depends on byte order.
pub struct RegisterMemory {
    under: MemRef,
    /// Word width per register space: `r`/`x` are 4, `f` is 8.
    widths: HashMap<char, u8>,
}

impl RegisterMemory {
    /// Wrap `under`, treating `spaces` as register spaces of given widths.
    pub fn new(under: MemRef, widths: &[(char, u8)]) -> RegisterMemory {
        RegisterMemory { under, widths: widths.iter().copied().collect() }
    }
}

impl AbstractMemory for RegisterMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        match self.widths.get(&space) {
            None => self.under.fetch(space, offset, size),
            Some(&w) => {
                let full = self.under.fetch(space, offset, w)?;
                Ok(truncate(full, size))
            }
        }
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        match self.widths.get(&space) {
            None => self.under.store(space, offset, size, value),
            Some(&w) if size >= w => self.under.store(space, offset, w, value),
            Some(&w) => {
                // Read-modify-write the full register.
                let full = self.under.fetch(space, offset, w)?;
                let mask = width_mask(size);
                let merged = (full & !mask) | (value & mask);
                self.under.store(space, offset, w, merged)
            }
        }
    }

    fn name(&self) -> &'static str {
        "register"
    }
}

/// The joined memory: routes each space to a component; this is the
/// instance presented to the rest of the debugger.
pub struct JoinedMemory {
    routes: Vec<(char, MemRef)>,
    fallback: Option<MemRef>,
}

impl JoinedMemory {
    /// An empty joined memory.
    pub fn new() -> JoinedMemory {
        JoinedMemory { routes: Vec::new(), fallback: None }
    }

    /// Route `space` to `mem`.
    pub fn route(mut self, space: char, mem: MemRef) -> Self {
        self.routes.push((space, mem));
        self
    }

    /// Route any unknown space to `mem`.
    pub fn fallback(mut self, mem: MemRef) -> Self {
        self.fallback = Some(mem);
        self
    }

    fn pick(&self, space: char) -> MemResult<&MemRef> {
        self.routes
            .iter()
            .find(|(s, _)| *s == space)
            .map(|(_, m)| m)
            .or(self.fallback.as_ref())
            .ok_or(MemError::NoSpace(space))
    }
}

impl Default for JoinedMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl AbstractMemory for JoinedMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        self.pick(space)?.fetch(space, offset, size)
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        self.pick(space)?.store(space, offset, size, value)
    }

    fn name(&self) -> &'static str {
        "joined"
    }
}

/// An in-memory test double (also used by unit tests higher up).
#[derive(Default)]
pub struct FakeMemory {
    /// (space, offset) → byte. Multi-byte values live little-endian here;
    /// byte order questions are the wire's business, not this fake's.
    pub cells: RefCell<HashMap<(char, i64), u64>>,
}

impl AbstractMemory for FakeMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        let _ = size;
        Ok(*self.cells.borrow().get(&(space, offset)).unwrap_or(&0))
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        let _ = size;
        self.cells.borrow_mut().insert((space, offset), value);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "fake"
    }
}

fn truncate(v: u64, size: u8) -> u64 {
    v & width_mask(size)
}

fn width_mask(size: u8) -> u64 {
    match size {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

/// Sign-extend a fetched value of the given width.
pub fn sign_extend(v: u64, size: u8) -> i64 {
    match size {
        1 => v as u8 as i8 as i64,
        2 => v as u16 as i16 as i64,
        4 => v as u32 as i32 as i64,
        _ => v as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_routes_registers_to_context() {
        let fake = Rc::new(FakeMemory::default());
        fake.store('d', 92, 4, 1234).unwrap();
        let alias = AliasMemory::new(fake.clone());
        alias.alias('r', 30, AliasTarget::Mem('d', 92));
        // Register 30 is an alias for a location 92 bytes into the context
        // — the paper's worked example for i.
        assert_eq!(alias.fetch('r', 30, 4).unwrap(), 1234);
        alias.store('r', 30, 4, 99).unwrap();
        assert_eq!(fake.fetch('d', 92, 4).unwrap(), 99);
    }

    #[test]
    fn immediate_aliases_return_values_and_refuse_stores() {
        let fake = Rc::new(FakeMemory::default());
        let alias = AliasMemory::new(fake);
        alias.alias('x', 1, AliasTarget::Imm(0x7fff_0000));
        assert_eq!(alias.fetch('x', 1, 4).unwrap(), 0x7fff_0000);
        assert!(matches!(
            alias.store('x', 1, 4, 0),
            Err(MemError::ImmutableLocation)
        ));
    }

    #[test]
    fn linear_space_maps_frame_locals() {
        let fake = Rc::new(FakeMemory::default());
        fake.store('d', 0x8000 - 12, 4, 7).unwrap();
        let mut alias = AliasMemory::new(fake);
        alias.map_space('l', 'd', 0x8000); // vfp = 0x8000
        assert_eq!(alias.fetch('l', -12, 4).unwrap(), 7);
    }

    #[test]
    fn register_memory_makes_byte_fetches_order_free() {
        // The register holds 0x11223344; fetching its "char" must give
        // 0x44 regardless of target byte order, because the fetch is
        // transformed into a full-word fetch.
        let fake = Rc::new(FakeMemory::default());
        fake.store('r', 30, 4, 0x1122_3344).unwrap();
        let reg = RegisterMemory::new(fake.clone(), &[('r', 4), ('f', 8)]);
        assert_eq!(reg.fetch('r', 30, 1).unwrap(), 0x44);
        assert_eq!(reg.fetch('r', 30, 2).unwrap(), 0x3344);
        // Sub-word store: read-modify-write.
        reg.store('r', 30, 1, 0x99).unwrap();
        assert_eq!(fake.fetch('r', 30, 4).unwrap(), 0x1122_3399);
    }

    #[test]
    fn joined_memory_routes_spaces() {
        let code = Rc::new(FakeMemory::default());
        let regs = Rc::new(FakeMemory::default());
        code.store('d', 8, 4, 1).unwrap();
        regs.store('r', 2, 4, 2).unwrap();
        let joined = JoinedMemory::new()
            .route('r', regs)
            .fallback(code);
        assert_eq!(joined.fetch('d', 8, 4).unwrap(), 1);
        assert_eq!(joined.fetch('r', 2, 4).unwrap(), 2);
    }

    #[test]
    fn missing_space_is_an_error() {
        let joined = JoinedMemory::new();
        assert!(matches!(joined.fetch('q', 0, 4), Err(MemError::NoSpace('q'))));
    }

    #[test]
    fn inherit_keeps_existing_aliases() {
        let fake = Rc::new(FakeMemory::default());
        let child = AliasMemory::new(fake.clone());
        child.alias('r', 16, AliasTarget::Mem('d', 100));
        child.alias('r', 17, AliasTarget::Mem('d', 104));
        let parent = AliasMemory::new(fake);
        parent.alias('r', 16, AliasTarget::Mem('d', 200)); // saved by child
        parent.inherit_from(&child);
        // r16 keeps the parent's own (saved-slot) alias; r17 is inherited.
        assert_eq!(parent.resolve('r', 16).unwrap(), AliasTarget::Mem('d', 200));
        assert_eq!(parent.resolve('r', 17).unwrap(), AliasTarget::Mem('d', 104));
    }

    #[test]
    fn sign_extension_helper() {
        assert_eq!(sign_extend(0xff, 1), -1);
        assert_eq!(sign_extend(0x7f, 1), 127);
        assert_eq!(sign_extend(0xffff_ffff, 4), -1);
        assert_eq!(sign_extend(5, 8), 5);
    }
}
