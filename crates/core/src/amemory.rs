//! Abstract memories (paper, Sec. 4.1).
//!
//! An abstract memory is a collection of *spaces* (single letters: `c`
//! code, `d` data, `r` integer registers, `f` floating registers, `x`
//! extra registers, `l` frame-locals) addressed by integer offsets. ldb
//! combines instances into a DAG per procedure activation:
//!
//! * the **wire** forwards fetches and stores to the nub (which serves
//!   only the code and data spaces),
//! * the **alias** memory translates register-space locations into code or
//!   data locations (the saved-register area of a context or stack frame)
//!   or into immediate values (the virtual frame pointer),
//! * the **register** memory turns sub-word accesses into full-word
//!   accesses so target byte order is irrelevant — ldb runs the same code
//!   against little- and big-endian MIPS targets,
//! * the **joined** memory routes each space to the right component and is
//!   what the rest of the debugger sees.
//!
//! Machine-independent code manipulates machine-dependent *data* (the
//! aliases); no machine-dependent code is involved, so cross-architecture
//! debugging is free.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use ldb_nub::{NubClient, NubError};

/// Errors from abstract-memory operations.
#[derive(Debug)]
pub enum MemError {
    /// The nub rejected the access or the connection failed.
    Nub(NubError),
    /// No component serves this space.
    NoSpace(char),
    /// A store to an immediate location.
    ImmutableLocation,
    /// Unsupported access width.
    BadSize(u8),
    /// The offset does not fit the target's 32-bit address space (a
    /// negative or > 4 GiB offset used to wrap silently into a
    /// valid-looking address).
    BadOffset(i64),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Nub(e) => write!(f, "{e}"),
            MemError::NoSpace(s) => write!(f, "no `{s}` space in this memory"),
            MemError::ImmutableLocation => write!(f, "store to an immediate location"),
            MemError::BadSize(n) => write!(f, "unsupported access width {n}"),
            MemError::BadOffset(o) => {
                write!(f, "offset {o:#x} is outside the target's 32-bit address space")
            }
        }
    }
}

impl std::error::Error for MemError {}

impl From<NubError> for MemError {
    fn from(e: NubError) -> Self {
        MemError::Nub(e)
    }
}

/// Result alias for memory operations.
pub type MemResult<T> = Result<T, MemError>;

/// An abstract memory: fetch and store raw values by (space, offset,
/// width). Widths are 1, 2, 4, or 8 bytes; values travel as host `u64`s
/// (the wire ships them little-endian, so byte order never leaks).
pub trait AbstractMemory {
    /// Fetch a value.
    ///
    /// # Errors
    /// Unserved spaces, nub failures, bad widths.
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64>;

    /// Store a value.
    ///
    /// # Errors
    /// Unserved spaces, nub failures, bad widths, immutable locations.
    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()>;

    /// A short name for diagnostics and the F4 figure.
    fn name(&self) -> &'static str;
}

/// A shared abstract memory.
pub type MemRef = Rc<dyn AbstractMemory>;

/// Check a debugger-side `i64` offset against the target's 32-bit
/// address space before it goes near the wire.
fn wire_addr(offset: i64) -> MemResult<u32> {
    u32::try_from(offset).map_err(|_| MemError::BadOffset(offset))
}

/// The wire: forwards everything to the nub. The nub serves only the code
/// and data spaces.
pub struct WireMemory {
    client: Rc<RefCell<NubClient>>,
}

impl WireMemory {
    /// Wrap a nub connection.
    pub fn new(client: Rc<RefCell<NubClient>>) -> WireMemory {
        WireMemory { client }
    }
}

impl AbstractMemory for WireMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        if space != 'c' && space != 'd' {
            return Err(MemError::NoSpace(space));
        }
        Ok(self.client.borrow_mut().fetch(space, wire_addr(offset)?, size)?)
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        if space != 'c' && space != 'd' {
            return Err(MemError::NoSpace(space));
        }
        Ok(self.client.borrow_mut().store(space, wire_addr(offset)?, size, value)?)
    }

    fn name(&self) -> &'static str {
        "wire"
    }
}

/// Cache line size in bytes. Lines are aligned to this.
const LINE: u32 = 64;

/// Running counters for one [`CachedMemory`] (see `info wire`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches served entirely from resident lines.
    pub hits: u64,
    /// Fetches that needed at least one line fill (or an uncached
    /// fallback at the edge of target memory).
    pub misses: u64,
    /// Lines filled over the wire with a block fetch.
    pub fills: u64,
    /// Lines dropped by stores and invalidation calls.
    pub invalidated: u64,
}

/// A read-through, block-granular cache in front of the wire.
///
/// Fills 64-byte aligned lines with one `FetchBlock` round trip and
/// serves 1-, 2-, and 4-byte fetches from them, assembling values in the
/// target's byte order (learned from the block reply) so results are
/// bit-identical to individual wire fetches. Stores write through to the
/// wire and invalidate the touched line(s).
///
/// Two deliberate gaps in coverage:
///
/// * **8-byte fetches go to the wire uncached.** The nub applies
///   machine-dependent fixups to doubleword accesses (on big-endian MIPS
///   the kernel saves floating doubles word-swapped in the context, and
///   the nub compensates); assembling 8 raw bytes client-side would
///   bypass that.
/// * **The cache is policy-free.** It never guesses when target memory
///   changed behind its back; the debugger calls
///   [`CachedMemory::invalidate_space`]/[`CachedMemory::flush`] at every
///   resume, stop, plant, and direct-store boundary.
pub struct CachedMemory {
    client: Rc<RefCell<NubClient>>,
    lines: RefCell<HashMap<(char, u32), Vec<u8>>>,
    /// Target byte order per the nub's block replies (0 little, 1 big);
    /// learned on the first fill.
    order: Cell<u8>,
    stats: Cell<CacheStats>,
}

impl CachedMemory {
    /// An empty cache over a nub connection.
    pub fn new(client: Rc<RefCell<NubClient>>) -> CachedMemory {
        CachedMemory {
            client,
            lines: RefCell::new(HashMap::new()),
            order: Cell::new(0),
            stats: Cell::new(CacheStats::default()),
        }
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats.get()
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.borrow().len()
    }

    /// Drop every resident line of `space`.
    pub fn invalidate_space(&self, space: char) {
        let mut lines = self.lines.borrow_mut();
        let before = lines.len();
        lines.retain(|(s, _), _| *s != space);
        let dropped = (before - lines.len()) as u64;
        drop(lines);
        self.bump(|s| s.invalidated += dropped);
    }

    /// Drop every resident line (e.g. after a reconnect, when another
    /// debugger may have touched anything).
    pub fn flush(&self) {
        let mut lines = self.lines.borrow_mut();
        let dropped = lines.len() as u64;
        lines.clear();
        drop(lines);
        self.bump(|s| s.invalidated += dropped);
    }

    fn bump(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Drop the line(s) overlapping `[addr, addr + size)` in `space`.
    fn invalidate_range(&self, space: char, addr: u32, size: u8) {
        let first = addr & !(LINE - 1);
        let last = addr.saturating_add(u32::from(size.max(1)) - 1) & !(LINE - 1);
        let mut lines = self.lines.borrow_mut();
        let mut dropped = 0u64;
        let mut base = first;
        loop {
            if lines.remove(&(space, base)).is_some() {
                dropped += 1;
            }
            if base >= last {
                break;
            }
            base += LINE;
        }
        drop(lines);
        self.bump(|s| s.invalidated += dropped);
    }

    /// Fill the line at `base` (aligned) over the wire.
    fn fill(&self, space: char, base: u32) -> MemResult<()> {
        let (order, bytes) = self.client.borrow_mut().fetch_block(space, base, LINE)?;
        self.order.set(order);
        self.lines.borrow_mut().insert((space, base), bytes);
        self.bump(|s| s.fills += 1);
        Ok(())
    }
}

/// Assemble a value from raw target-memory bytes in the given order
/// (0 little, 1 big) — exactly what the nub's word reads would produce.
fn assemble(bytes: &[u8], order: u8) -> u64 {
    let mut v = 0u64;
    if order == 1 {
        for &b in bytes {
            v = (v << 8) | u64::from(b);
        }
    } else {
        for (i, &b) in bytes.iter().enumerate() {
            v |= u64::from(b) << (8 * i);
        }
    }
    v
}

impl AbstractMemory for CachedMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        if space != 'c' && space != 'd' {
            return Err(MemError::NoSpace(space));
        }
        if !matches!(size, 1 | 2 | 4 | 8) {
            return Err(MemError::BadSize(size));
        }
        let addr = wire_addr(offset)?;
        // Doubleword fetches bypass the cache (see the type docs); so do
        // accesses that would wrap the address space — let the nub rule.
        let Some(end) = addr.checked_add(u32::from(size) - 1) else {
            return Ok(self.client.borrow_mut().fetch(space, addr, size)?);
        };
        if size == 8 {
            return Ok(self.client.borrow_mut().fetch(space, addr, size)?);
        }
        // Make every line covering the access resident.
        let first = addr & !(LINE - 1);
        let last = end & !(LINE - 1);
        let mut missed = false;
        let mut base = first;
        loop {
            if !self.lines.borrow().contains_key(&(space, base)) {
                missed = true;
                if self.fill(space, base).is_err() {
                    // The whole line may be unreadable (end of target
                    // memory) even when the access itself is fine: fall
                    // back to an uncached fetch so edge semantics stay
                    // identical to the plain wire.
                    self.bump(|s| s.misses += 1);
                    return Ok(self.client.borrow_mut().fetch(space, addr, size)?);
                }
            }
            if base == last {
                break;
            }
            base += LINE;
        }
        self.bump(|s| if missed { s.misses += 1 } else { s.hits += 1 });
        let lines = self.lines.borrow();
        let mut bytes = [0u8; 8];
        for (i, slot) in bytes.iter_mut().take(usize::from(size)).enumerate() {
            let a = addr + i as u32;
            let line = &lines[&(space, a & !(LINE - 1))];
            *slot = line[(a % LINE) as usize];
        }
        Ok(assemble(&bytes[..usize::from(size)], self.order.get()))
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        if space != 'c' && space != 'd' {
            return Err(MemError::NoSpace(space));
        }
        let addr = wire_addr(offset)?;
        self.client.borrow_mut().store(space, addr, size, value)?;
        // Write through, then drop the touched line(s): the wire owns the
        // truth (the nub may transform the store, e.g. doubleword fixups).
        self.invalidate_range(space, addr, size);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cache"
    }
}

/// Where an alias points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AliasTarget {
    /// A location in an underlying space (usually `d`: the context or a
    /// stack slot).
    Mem(char, i64),
    /// An immediate value (e.g. the virtual frame pointer).
    Imm(u64),
}

/// The alias memory: exact-index aliases for registers, and linear maps
/// for whole spaces (the `l` frame-local space maps to `d` at vfp+offset).
pub struct AliasMemory {
    under: MemRef,
    regs: RefCell<HashMap<(char, i64), AliasTarget>>,
    linear: HashMap<char, (char, i64)>,
}

impl AliasMemory {
    /// An alias memory over `under`.
    pub fn new(under: MemRef) -> AliasMemory {
        AliasMemory { under, regs: RefCell::new(HashMap::new()), linear: HashMap::new() }
    }

    /// Add an exact-index alias (register `idx` of `space`).
    pub fn alias(&self, space: char, idx: i64, target: AliasTarget) {
        self.regs.borrow_mut().insert((space, idx), target);
    }

    /// Add a linear space map: `space` offset o → (`to`, base + o).
    pub fn map_space(&mut self, space: char, to: char, base: i64) {
        self.linear.insert(space, (to, base));
    }

    /// Copy all exact-index aliases from another alias memory (the paper's
    /// reuse of aliases from the called frame for unsaved registers).
    pub fn inherit_from(&self, other: &AliasMemory) {
        let theirs = other.regs.borrow();
        let mut mine = self.regs.borrow_mut();
        for (k, v) in theirs.iter() {
            mine.entry(*k).or_insert(*v);
        }
    }

    fn resolve(&self, space: char, offset: i64) -> MemResult<AliasTarget> {
        if let Some(&(to, base)) = self.linear.get(&space) {
            return Ok(AliasTarget::Mem(to, base + offset));
        }
        self.regs
            .borrow()
            .get(&(space, offset))
            .copied()
            .ok_or(MemError::NoSpace(space))
    }
}

impl AbstractMemory for AliasMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        match self.resolve(space, offset)? {
            AliasTarget::Mem(to, addr) => self.under.fetch(to, addr, size),
            AliasTarget::Imm(v) => Ok(truncate(v, size)),
        }
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        match self.resolve(space, offset)? {
            AliasTarget::Mem(to, addr) => self.under.store(to, addr, size, value),
            AliasTarget::Imm(_) => Err(MemError::ImmutableLocation),
        }
    }

    fn name(&self) -> &'static str {
        "alias"
    }
}

/// The register memory: sub-word fetches from register spaces become
/// full-word fetches of the whole register, so the location of "the least
/// significant byte" never depends on byte order.
pub struct RegisterMemory {
    under: MemRef,
    /// Word width per register space: `r`/`x` are 4, `f` is 8.
    widths: HashMap<char, u8>,
}

impl RegisterMemory {
    /// Wrap `under`, treating `spaces` as register spaces of given widths.
    pub fn new(under: MemRef, widths: &[(char, u8)]) -> RegisterMemory {
        RegisterMemory { under, widths: widths.iter().copied().collect() }
    }
}

impl AbstractMemory for RegisterMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        match self.widths.get(&space) {
            None => self.under.fetch(space, offset, size),
            Some(&w) => {
                let full = self.under.fetch(space, offset, w)?;
                Ok(truncate(full, size))
            }
        }
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        match self.widths.get(&space) {
            None => self.under.store(space, offset, size, value),
            // Mask to the register width: backends are entitled to assume
            // the value of a w-byte store fits in w bytes.
            Some(&w) if size >= w => self.under.store(space, offset, w, truncate(value, w)),
            Some(&w) => {
                // Read-modify-write the full register.
                let full = self.under.fetch(space, offset, w)?;
                let mask = width_mask(size);
                let merged = (full & !mask) | (value & mask);
                self.under.store(space, offset, w, merged)
            }
        }
    }

    fn name(&self) -> &'static str {
        "register"
    }
}

/// The joined memory: routes each space to a component; this is the
/// instance presented to the rest of the debugger.
pub struct JoinedMemory {
    routes: Vec<(char, MemRef)>,
    fallback: Option<MemRef>,
}

impl JoinedMemory {
    /// An empty joined memory.
    pub fn new() -> JoinedMemory {
        JoinedMemory { routes: Vec::new(), fallback: None }
    }

    /// Route `space` to `mem`.
    pub fn route(mut self, space: char, mem: MemRef) -> Self {
        self.routes.push((space, mem));
        self
    }

    /// Route any unknown space to `mem`.
    pub fn fallback(mut self, mem: MemRef) -> Self {
        self.fallback = Some(mem);
        self
    }

    fn pick(&self, space: char) -> MemResult<&MemRef> {
        self.routes
            .iter()
            .find(|(s, _)| *s == space)
            .map(|(_, m)| m)
            .or(self.fallback.as_ref())
            .ok_or(MemError::NoSpace(space))
    }
}

impl Default for JoinedMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl AbstractMemory for JoinedMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        self.pick(space)?.fetch(space, offset, size)
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        self.pick(space)?.store(space, offset, size, value)
    }

    fn name(&self) -> &'static str {
        "joined"
    }
}

/// An in-memory test double (also used by unit tests higher up).
///
/// Byte-granular: a store scatters its value into little-endian bytes and
/// a fetch gathers exactly `size` of them back, so overlapping and
/// mixed-width accesses behave like a real memory and width bugs surface
/// in unit tests instead of only on the wire. Byte order questions remain
/// the wire's business, not this fake's.
#[derive(Default)]
pub struct FakeMemory {
    /// (space, byte offset) → byte. Unwritten bytes read as zero.
    pub cells: RefCell<HashMap<(char, i64), u8>>,
}

impl AbstractMemory for FakeMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        let cells = self.cells.borrow();
        let mut v = 0u64;
        for i in 0..i64::from(size) {
            let b = *cells.get(&(space, offset + i)).unwrap_or(&0);
            v |= u64::from(b) << (8 * i);
        }
        Ok(v)
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        let mut cells = self.cells.borrow_mut();
        for i in 0..i64::from(size) {
            cells.insert((space, offset + i), (value >> (8 * i)) as u8);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "fake"
    }
}

fn truncate(v: u64, size: u8) -> u64 {
    v & width_mask(size)
}

fn width_mask(size: u8) -> u64 {
    match size {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

/// Sign-extend a fetched value of the given width.
pub fn sign_extend(v: u64, size: u8) -> i64 {
    match size {
        1 => v as u8 as i8 as i64,
        2 => v as u16 as i16 as i64,
        4 => v as u32 as i32 as i64,
        _ => v as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_routes_registers_to_context() {
        let fake = Rc::new(FakeMemory::default());
        fake.store('d', 92, 4, 1234).unwrap();
        let alias = AliasMemory::new(fake.clone());
        alias.alias('r', 30, AliasTarget::Mem('d', 92));
        // Register 30 is an alias for a location 92 bytes into the context
        // — the paper's worked example for i.
        assert_eq!(alias.fetch('r', 30, 4).unwrap(), 1234);
        alias.store('r', 30, 4, 99).unwrap();
        assert_eq!(fake.fetch('d', 92, 4).unwrap(), 99);
    }

    #[test]
    fn immediate_aliases_return_values_and_refuse_stores() {
        let fake = Rc::new(FakeMemory::default());
        let alias = AliasMemory::new(fake);
        alias.alias('x', 1, AliasTarget::Imm(0x7fff_0000));
        assert_eq!(alias.fetch('x', 1, 4).unwrap(), 0x7fff_0000);
        assert!(matches!(
            alias.store('x', 1, 4, 0),
            Err(MemError::ImmutableLocation)
        ));
    }

    #[test]
    fn linear_space_maps_frame_locals() {
        let fake = Rc::new(FakeMemory::default());
        fake.store('d', 0x8000 - 12, 4, 7).unwrap();
        let mut alias = AliasMemory::new(fake);
        alias.map_space('l', 'd', 0x8000); // vfp = 0x8000
        assert_eq!(alias.fetch('l', -12, 4).unwrap(), 7);
    }

    #[test]
    fn register_memory_makes_byte_fetches_order_free() {
        // The register holds 0x11223344; fetching its "char" must give
        // 0x44 regardless of target byte order, because the fetch is
        // transformed into a full-word fetch.
        let fake = Rc::new(FakeMemory::default());
        fake.store('r', 30, 4, 0x1122_3344).unwrap();
        let reg = RegisterMemory::new(fake.clone(), &[('r', 4), ('f', 8)]);
        assert_eq!(reg.fetch('r', 30, 1).unwrap(), 0x44);
        assert_eq!(reg.fetch('r', 30, 2).unwrap(), 0x3344);
        // Sub-word store: read-modify-write.
        reg.store('r', 30, 1, 0x99).unwrap();
        assert_eq!(fake.fetch('r', 30, 4).unwrap(), 0x1122_3399);
    }

    #[test]
    fn joined_memory_routes_spaces() {
        let code = Rc::new(FakeMemory::default());
        let regs = Rc::new(FakeMemory::default());
        code.store('d', 8, 4, 1).unwrap();
        regs.store('r', 2, 4, 2).unwrap();
        let joined = JoinedMemory::new()
            .route('r', regs)
            .fallback(code);
        assert_eq!(joined.fetch('d', 8, 4).unwrap(), 1);
        assert_eq!(joined.fetch('r', 2, 4).unwrap(), 2);
    }

    #[test]
    fn missing_space_is_an_error() {
        let joined = JoinedMemory::new();
        assert!(matches!(joined.fetch('q', 0, 4), Err(MemError::NoSpace('q'))));
    }

    #[test]
    fn inherit_keeps_existing_aliases() {
        let fake = Rc::new(FakeMemory::default());
        let child = AliasMemory::new(fake.clone());
        child.alias('r', 16, AliasTarget::Mem('d', 100));
        child.alias('r', 17, AliasTarget::Mem('d', 104));
        let parent = AliasMemory::new(fake);
        parent.alias('r', 16, AliasTarget::Mem('d', 200)); // saved by child
        parent.inherit_from(&child);
        // r16 keeps the parent's own (saved-slot) alias; r17 is inherited.
        assert_eq!(parent.resolve('r', 16).unwrap(), AliasTarget::Mem('d', 200));
        assert_eq!(parent.resolve('r', 17).unwrap(), AliasTarget::Mem('d', 104));
    }

    #[test]
    fn sign_extension_helper() {
        assert_eq!(sign_extend(0xff, 1), -1);
        assert_eq!(sign_extend(0x7f, 1), 127);
        assert_eq!(sign_extend(0xffff_ffff, 4), -1);
        assert_eq!(sign_extend(5, 8), 5);
    }

    /// A client over a dead wire: any request that actually reaches the
    /// transport errors out, so a `BadOffset` result proves the guard
    /// fired *before* the wire was touched.
    fn dead_client() -> Rc<RefCell<NubClient>> {
        Rc::new(RefCell::new(NubClient::new(Box::new(ldb_nub::DeadWire))))
    }

    #[test]
    fn wire_memory_rejects_out_of_range_offsets() {
        let wire = WireMemory::new(dead_client());
        for bad in [-1i64, i64::MIN, 1 << 32, i64::MAX] {
            assert!(matches!(wire.fetch('d', bad, 4), Err(MemError::BadOffset(o)) if o == bad));
            assert!(matches!(wire.store('d', bad, 4, 0), Err(MemError::BadOffset(o)) if o == bad));
        }
    }

    #[test]
    fn cached_memory_rejects_out_of_range_offsets() {
        let cache = CachedMemory::new(dead_client());
        for bad in [-1i64, i64::MIN, 1 << 32, i64::MAX] {
            assert!(matches!(cache.fetch('d', bad, 4), Err(MemError::BadOffset(o)) if o == bad));
            assert!(matches!(cache.store('d', bad, 4, 0), Err(MemError::BadOffset(o)) if o == bad));
        }
        assert!(matches!(cache.fetch('r', 0, 4), Err(MemError::NoSpace('r'))));
        assert!(matches!(cache.fetch('d', 0, 3), Err(MemError::BadSize(3))));
    }

    /// Records the widths and values its backend actually receives.
    #[derive(Default)]
    struct RecordingMemory {
        last: RefCell<Option<(u8, u64)>>,
    }

    impl AbstractMemory for RecordingMemory {
        fn fetch(&self, _space: char, _offset: i64, _size: u8) -> MemResult<u64> {
            Ok(0)
        }
        fn store(&self, _space: char, _offset: i64, size: u8, value: u64) -> MemResult<()> {
            *self.last.borrow_mut() = Some((size, value));
            Ok(())
        }
        fn name(&self) -> &'static str {
            "recording"
        }
    }

    #[test]
    fn register_store_masks_value_to_register_width() {
        // An 8-byte store into a 4-byte register space must not leak the
        // high 32 bits into a backend that trusts w-byte stores to carry
        // w-byte values.
        let under = Rc::new(RecordingMemory::default());
        let reg = RegisterMemory::new(under.clone(), &[('r', 4)]);
        reg.store('r', 5, 8, 0xdead_beef_1122_3344).unwrap();
        assert_eq!(*under.last.borrow(), Some((4, 0x1122_3344)));
    }

    #[test]
    fn fake_memory_is_byte_granular() {
        let fake = FakeMemory::default();
        fake.store('d', 0x100, 4, 0x0403_0201).unwrap();
        // Interior bytes and straddling reads see the little-endian bytes.
        assert_eq!(fake.fetch('d', 0x100, 1).unwrap(), 0x01);
        assert_eq!(fake.fetch('d', 0x103, 1).unwrap(), 0x04);
        assert_eq!(fake.fetch('d', 0x101, 2).unwrap(), 0x0302);
        // An overlapping narrower store only clobbers its own bytes.
        fake.store('d', 0x102, 1, 0xaa).unwrap();
        assert_eq!(fake.fetch('d', 0x100, 4).unwrap(), 0x04aa_0201);
        // Unwritten bytes read as zero, even adjacent to written ones.
        assert_eq!(fake.fetch('d', 0x103, 4).unwrap(), 0x0000_0004);
    }

    #[test]
    fn assemble_matches_both_byte_orders() {
        let bytes = [0x11, 0x22, 0x33, 0x44];
        assert_eq!(assemble(&bytes, 0), 0x4433_2211);
        assert_eq!(assemble(&bytes, 1), 0x1122_3344);
        assert_eq!(assemble(&bytes[..2], 0), 0x2211);
        assert_eq!(assemble(&bytes[..2], 1), 0x1122);
        assert_eq!(assemble(&bytes[..1], 0), 0x11);
        assert_eq!(assemble(&bytes[..1], 1), 0x11);
    }
}
