//! Operations over loaded PostScript symbol tables: stopping points, name
//! resolution by uplink walking, and entry accessors.
//!
//! "ldb resolves names by walking up the tree of entries for local
//! symbols, beginning with the symbol-table entry contained in the
//! stopping point. When it reaches the root, it searches two PostScript
//! dictionaries", the unit statics and the program externs (paper,
//! Sec. 2).

use ldb_postscript::{Interp, Object, PsResult, Value};

use crate::loader::Loader;

/// A stopping point, read from a procedure's `/loci` array.
#[derive(Debug, Clone)]
pub struct Locus {
    /// Index in the loci array.
    pub index: usize,
    /// Source line.
    pub line: u32,
    /// Source column.
    pub col: u32,
    /// The innermost visible symbol entry (a dict), if any.
    pub visible: Option<Object>,
}

/// Force a procedure's `/loci` value: deferred tables quote the whole
/// array as an executable string, scanned on first use and replaced by
/// its result.
///
/// # Errors
/// Malformed entries.
pub fn force_loci(interp: &mut Interp, entry: &Object) -> PsResult<Option<Object>> {
    let d = entry.as_dict()?;
    let loci = match d.borrow().get_name("loci") {
        Some(l) => l.clone(),
        None => return Ok(None),
    };
    if loci.as_array().is_ok() {
        return Ok(Some(loci));
    }
    interp.call(&loci)?;
    let arr = interp.pop()?;
    arr.as_array()?;
    d.borrow_mut().put_name("loci", arr.clone());
    Ok(Some(arr))
}

/// Read the loci of a procedure entry (without resolving object
/// addresses).
///
/// # Errors
/// Malformed entries.
pub fn loci_of(interp: &mut Interp, entry: &Object) -> PsResult<Vec<Locus>> {
    let Some(loci) = force_loci(interp, entry)? else {
        return Ok(Vec::new());
    };
    let arr = loci.as_array()?;
    let arr = arr.borrow();
    let mut out = Vec::with_capacity(arr.len());
    for (index, el) in arr.iter().enumerate() {
        let el = el.as_array()?;
        let el = el.borrow();
        let line = el[0].as_int()? as u32;
        let col = el[1].as_int()? as u32;
        let visible = match &el[3].val {
            Value::Null => None,
            _ => Some(el[3].clone()),
        };
        out.push(Locus { index, line, col, visible });
    }
    Ok(out)
}

/// Resolve the object-code address of stopping point `index` of `entry`,
/// interpreting (and memoizing) the lazy anchor reference.
///
/// # Errors
/// Interpretation failures (e.g. no stopped target for the first fetch).
pub fn stop_addr(interp: &mut Interp, entry: &Object, index: usize) -> PsResult<u32> {
    let loci = force_loci(interp, entry)?.ok_or_else(|| miss("procedure has no loci"))?;
    let arr = loci.as_array()?;
    let el = arr
        .borrow()
        .get(index)
        .cloned()
        .ok_or_else(|| miss(format!("no stopping point {index}")))?;
    let el = el.as_array()?;
    let lazy = el.borrow()[2].clone();
    if let Value::Int(a) = lazy.val {
        return Ok(a as u32);
    }
    interp.call(&lazy)?;
    let addr = interp.pop()?.as_int()?;
    // Replace the procedure with its result (at most one target fetch per
    // entry).
    el.borrow_mut()[2] = Object::int(addr);
    Ok(addr as u32)
}

/// Find the stopping point whose resolved address is `addr`.
///
/// # Errors
/// Interpretation failures while resolving loci.
pub fn stop_at_addr(
    interp: &mut Interp,
    loader: &Loader,
    addr: u32,
) -> PsResult<Option<(Object, usize)>> {
    let Some((_, name)) = loader.proc_containing(addr) else { return Ok(None) };
    let name = name.to_string();
    let Some(entry) = loader.proc_entry_by_link_name(&name) else { return Ok(None) };
    let n = loci_of(interp, &entry)?.len();
    for i in 0..n {
        if stop_addr(interp, &entry, i)? == addr {
            return Ok(Some((entry, i)));
        }
    }
    Ok(None)
}

/// Find stopping points by source line: every locus on `line` in any
/// procedure (the C preprocessor can give one line several stopping
/// points, so this returns all of them).
///
/// # Errors
/// Malformed tables.
pub fn stops_at_line(
    interp: &mut Interp,
    loader: &Loader,
    line: u32,
) -> PsResult<Vec<(Object, usize)>> {
    let mut out = Vec::new();
    for p in loader.procs() {
        for l in loci_of(interp, &p)? {
            if l.line == line {
                out.push((p.clone(), l.index));
            }
        }
    }
    Ok(out)
}

/// Find stopping points on `line` of a particular source `file`, using
/// the top-level dictionary's `/sourcemap` ("ldb uses the sourcemap
/// dictionary to build a map from source locations to stopping points,
/// making it possible to set breakpoints by source location").
///
/// # Errors
/// Malformed tables.
pub fn stops_at_file_line(
    interp: &mut Interp,
    loader: &Loader,
    file: &str,
    line: u32,
) -> PsResult<Vec<(Object, usize)>> {
    let procs = {
        let top = loader.top.borrow();
        let sm = top
            .get_name("sourcemap")
            .cloned()
            .ok_or_else(|| miss("no /sourcemap"))?;
        let sm = sm.as_dict()?;
        let arr = sm.borrow().get_name(file).cloned();
        match arr {
            None => return Ok(Vec::new()),
            Some(a) => a.as_array()?.borrow().clone(),
        }
    };
    let mut out = Vec::new();
    for p in procs {
        for l in loci_of(interp, &p)? {
            if l.line == line {
                out.push((p.clone(), l.index));
            }
        }
    }
    Ok(out)
}

/// The name of a symbol entry.
pub fn entry_name(entry: &Object) -> Option<String> {
    let d = entry.as_dict().ok()?;
    let n = d.borrow().get_name("name")?.as_string().ok()?;
    Some(n.to_string())
}

/// The type dictionary of a symbol entry.
pub fn entry_type(entry: &Object) -> Option<Object> {
    let d = entry.as_dict().ok()?;
    let t = d.borrow().get_name("type").cloned();
    t
}

/// Resolve `name` in the scope of stopping point `stop` of procedure
/// `entry`: walk the uplink chain from the stopping point's visible
/// symbol, then the unit statics, then the externs.
///
/// # Errors
/// Malformed tables.
pub fn resolve_name(
    interp: &mut Interp,
    loader: &Loader,
    entry: &Object,
    stop: usize,
    name: &str,
) -> PsResult<Option<Object>> {
    let loci = loci_of(interp, entry)?;
    let mut cur = loci.get(stop).and_then(|l| l.visible.clone());
    while let Some(e) = cur {
        if entry_name(&e).as_deref() == Some(name) {
            return Ok(Some(e));
        }
        let d = e.as_dict()?;
        let up = d.borrow().get_name("uplink").cloned();
        cur = up;
    }
    // Statics of this procedure's compilation unit (each procedure entry
    // carries its unit's statics dictionary), then the program externs.
    if let Ok(d) = entry.as_dict() {
        let statics = d.borrow().get_name("statics").cloned();
        if let Some(statics) = statics.and_then(|s| s.as_dict().ok()) {
            if let Some(e) = statics.borrow().get_name(name) {
                return Ok(Some(e.clone()));
            }
        }
    }
    let top = loader.top.borrow();
    for dictname in ["statics", "externs"] {
        if let Some(d) = top.get_name(dictname) {
            if let Ok(d) = d.as_dict() {
                if let Some(e) = d.borrow().get_name(name) {
                    return Ok(Some(e.clone()));
                }
            }
        }
    }
    Ok(None)
}

/// Walk the uplink chain from a stopping point, returning the names in
/// scope order (innermost first) — the Figure 2 view.
pub fn visible_chain(interp: &mut Interp, entry: &Object, stop: usize) -> PsResult<Vec<String>> {
    let loci = loci_of(interp, entry)?;
    let mut out = Vec::new();
    let mut cur = loci.get(stop).and_then(|l| l.visible.clone());
    while let Some(e) = cur {
        if let Some(n) = entry_name(&e) {
            out.push(n);
        }
        let d = e.as_dict()?;
        let up = d.borrow().get_name("uplink").cloned();
        cur = up;
    }
    Ok(out)
}

fn miss(msg: impl Into<String>) -> ldb_postscript::PsError {
    ldb_postscript::PsError::runtime(ldb_postscript::ErrorKind::HostError, msg)
}
