//! The debugging operators ldb registers into its embedded PostScript
//! interpreter, and the evaluation context they act on.
//!
//! The interpreter's machine-independent location operators (`Absolute`,
//! `Immediate`, `Shifted`) live in `ldb-postscript`; everything that
//! touches a *target* lives here: fetch/store through the current abstract
//! memory, lazy anchor resolution (`LazyData`, `LazyAddr`), symbol-entry
//! location computation with the paper's replace-procedure-by-result
//! memoization (`SymLoc`), the typed fetch/store words the expression
//! server's rewriter targets, and the `print` value printer that the
//! debugging dictionary *rebinds* over the standard `print`.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use ldb_postscript::{
    downcast_host, Dict, ErrorKind, HostObject, Interp, Location, Object, PsError, PsResult,
    Value,
};

use crate::amemory::{sign_extend, MemRef};

/// The state the debugging operators consult: the current frame's memory,
/// and the loader table's anchor map.
pub struct EvalCtx {
    /// The abstract memory of the selected frame (or the bare wire before
    /// any stop).
    pub mem: Option<MemRef>,
    /// Anchor symbol → address, from the loader table.
    pub anchors: HashMap<String, u32>,
    /// Lazy-anchor cache: fetches from the target address space happen "at
    /// most once per symbol-table entry". Keyed by target nonce too:
    /// different targets may share anchor names (same compilation unit).
    pub anchor_cache: HashMap<(usize, String, i64), u64>,
    /// Which target the context currently reflects.
    pub target_nonce: usize,
    /// Count of anchor fetches actually performed (tests observe this).
    pub anchor_fetches: u64,
    /// Addresses the current print has already followed a pointer
    /// through (`PtrVisit`); reset by [`EvalCtx::begin_print`]. Keeps a
    /// cyclic list printing `<cycle>` instead of recursing to a budget
    /// trip.
    pub ptr_seen: HashSet<i64>,
    /// Pointer follows charged against [`EvalCtx::follow_cap`] in the
    /// current print/evaluation; reset by [`EvalCtx::begin_print`].
    pub ptr_follows: u64,
    /// Per-print/per-expression cap on pointer follows.
    pub follow_cap: u64,
    /// Cumulative `<cycle>` diagnostics emitted (never reset; `info
    /// health` reads this).
    pub print_cycle_hits: u64,
    /// Cumulative follow-cap trips (never reset).
    pub follow_cap_trips: u64,
}

/// Default per-print pointer-follow cap: generous for real data (a
/// healthy print follows a handful of pointers), tiny next to the fuel a
/// runaway chase would otherwise burn.
pub const FOLLOW_CAP: u64 = 128;

impl EvalCtx {
    /// An empty context.
    pub fn new() -> EvalCtx {
        EvalCtx {
            mem: None,
            anchors: HashMap::new(),
            anchor_cache: HashMap::new(),
            target_nonce: 0,
            anchor_fetches: 0,
            ptr_seen: HashSet::new(),
            ptr_follows: 0,
            follow_cap: FOLLOW_CAP,
            print_cycle_hits: 0,
            follow_cap_trips: 0,
        }
    }

    /// Reset the per-print pointer guard. Every top-level print or
    /// expression evaluation starts here; the cumulative counters are
    /// untouched.
    pub fn begin_print(&mut self) {
        self.ptr_seen.clear();
        self.ptr_follows = 0;
    }
}

impl Default for EvalCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared handle to the evaluation context.
pub type CtxRef = Rc<RefCell<EvalCtx>>;

/// A host object wrapping an abstract memory for PostScript code
/// (`&machine` in the printer procedures).
pub struct MemHandle(pub MemRef);

impl std::fmt::Debug for MemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "-memory:{}-", self.0.name())
    }
}

impl HostObject for MemHandle {
    fn type_name(&self) -> &'static str {
        "memory"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn host_err(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::HostError, detail)
}

fn ctx_mem(ctx: &CtxRef) -> PsResult<MemRef> {
    ctx.borrow()
        .mem
        .clone()
        .ok_or_else(|| host_err("not connected to a stopped target"))
}

/// Fetch through a location: immediates yield their value.
fn loc_fetch(mem: &MemRef, loc: &Location, size: u8) -> PsResult<Object> {
    match loc {
        Location::Immediate(v) => Ok((**v).clone()),
        Location::Addr { space, offset } => {
            let raw = mem
                .fetch(*space, *offset, size)
                .map_err(|e| host_err(e.to_string()))?;
            Ok(Object::int(raw as i64))
        }
    }
}

fn loc_store(mem: &MemRef, loc: &Location, size: u8, value: u64) -> PsResult<()> {
    match loc {
        Location::Immediate(_) => Err(host_err("store to an immediate location")),
        Location::Addr { space, offset } => mem
            .store(*space, *offset, size, value)
            .map_err(|e| host_err(e.to_string())),
    }
}

/// Register a `FetchN`-family operator: `mem loc OP -> value`.
fn reg_fetch(i: &mut Interp, name: &str, size: u8, signed: bool, float: bool) {
    i.register(name, move |i| {
        let loc = i.pop()?.as_location()?;
        let memobj = i.pop()?;
        let handle = memobj.as_host::<MemHandle>()?;
        let mh: &MemHandle = downcast_host(&handle)?;
        let v = loc_fetch(&mh.0, &loc, size)?;
        push_typed(i, v, size, signed, float)
    });
}

fn push_typed(i: &mut Interp, v: Object, size: u8, signed: bool, float: bool) -> PsResult<()> {
    match v.val {
        Value::Int(raw) => {
            if float {
                let r = match size {
                    4 => f32::from_bits(raw as u32) as f64,
                    _ => f64::from_bits(raw as u64),
                };
                i.push(r);
            } else if signed {
                i.push(sign_extend(raw as u64, size));
            } else {
                i.push(raw & mask(size) as i64);
            }
            Ok(())
        }
        // Immediate locations may hold any object (e.g. the vfp integer).
        _ => {
            i.push(v);
            Ok(())
        }
    }
}

fn mask(size: u8) -> u64 {
    match size {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

/// Register a `StoreN`-family operator: `mem loc value OP ->`.
fn reg_store(i: &mut Interp, name: &str, size: u8, float: bool) {
    i.register(name, move |i| {
        let value = i.pop()?;
        let loc = i.pop()?.as_location()?;
        let memobj = i.pop()?;
        let handle = memobj.as_host::<MemHandle>()?;
        let mh: &MemHandle = downcast_host(&handle)?;
        let raw = object_to_raw(&value, size, float)?;
        loc_store(&mh.0, &loc, size, raw)
    });
}

fn object_to_raw(value: &Object, size: u8, float: bool) -> PsResult<u64> {
    if float {
        let r = value.as_real()?;
        Ok(match size {
            4 => (r as f32).to_bits() as u64,
            _ => r.to_bits(),
        })
    } else {
        Ok(value.as_int()? as u64 & mask(size))
    }
}

/// Build the debugging dictionary: every target-touching operator, the
/// shared printer procedures, and the `print` rebinding. The caller pushes
/// it on the dictionary stack (and pushes a per-architecture dictionary
/// above it when a target is selected).
/// Format a double the way the rest of the debugger prints them, always
/// with a decimal point (or exponent) so the text re-lexes as a double.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'i', 'N']) {
        s
    } else {
        format!("{s}.0")
    }
}

pub fn make_debug_dict(interp: &mut Interp, ctx: CtxRef) -> ldb_postscript::DictRef {
    let dict = Rc::new(RefCell::new(Dict::new(64)));

    // --- raw fetch/store for printers: mem loc FetchX ---
    reg_fetch(interp, "Fetch8", 1, true, false);
    reg_fetch(interp, "Fetch8u", 1, false, false);
    reg_fetch(interp, "Fetch16", 2, true, false);
    reg_fetch(interp, "Fetch16u", 2, false, false);
    reg_fetch(interp, "Fetch32", 4, true, false);
    reg_fetch(interp, "Fetch32u", 4, false, false);
    reg_fetch(interp, "FetchF32", 4, false, true);
    reg_fetch(interp, "FetchF64", 8, false, true);
    reg_store(interp, "Store8", 1, false);
    reg_store(interp, "Store16", 2, false);
    reg_store(interp, "Store32", 4, false);
    reg_store(interp, "StoreF32", 4, true);
    reg_store(interp, "StoreF64", 8, true);

    // --- conversions the printers need ---
    interp.register("CvChar", |i| {
        let c = i.pop()?.as_int()?;
        let ch = (c as u8) as char;
        let s = if ch.is_ascii_graphic() || ch == ' ' {
            ch.to_string()
        } else {
            format!("\\{:03o}", c as u8)
        };
        i.charge_alloc(s.len() as u64 + 16)?;
        i.push(Object::string(s));
        Ok(())
    });
    interp.register("CvHex", |i| {
        let v = i.pop()?.as_int()?;
        let s = format!("0x{:x}", v as u32);
        i.charge_alloc(s.len() as u64 + 16)?;
        i.push(Object::string(s));
        Ok(())
    });

    // --- the current frame's memory, for expression evaluation ---
    {
        let ctx = ctx.clone();
        interp.register("CurrentMem", move |i| {
            let mem = ctx_mem(&ctx)?;
            i.push(Object::host(Rc::new(MemHandle(mem))));
            Ok(())
        });
    }

    // --- the pointer-chase guard: addr PtrVisit -> 0|1|2 ---
    // 0 = fresh, follow it; 1 = already visited this print (a cycle);
    // 2 = the per-print follow cap tripped. Printers that chase pointers
    // (PPTR) consult this before recursing, so hostile pointer graphs
    // print `<cycle>`/`<...>` instead of burning fuel to a budget trip.
    {
        let ctx = ctx.clone();
        interp.register("PtrVisit", move |i| {
            let addr = i.pop()?.as_int()?;
            let mut c = ctx.borrow_mut();
            let verdict = if c.ptr_follows >= c.follow_cap {
                c.follow_cap_trips += 1;
                2
            } else if !c.ptr_seen.insert(addr) {
                c.print_cycle_hits += 1;
                1
            } else {
                c.ptr_follows += 1;
                0
            };
            drop(c);
            i.push(verdict);
            Ok(())
        });
    }

    // --- lazy anchor resolution ---
    for (name, as_location) in [("LazyData", true), ("LazyAddr", false)] {
        let ctx = ctx.clone();
        interp.register(name, move |i| {
            let k = i.pop()?.as_int()?;
            let anchor = i.pop()?.as_string()?;
            let addr = {
                let c = ctx.borrow();
                c.anchors
                    .get(anchor.as_ref())
                    .copied()
                    .ok_or_else(|| host_err(format!("unknown anchor {anchor}")))?
            };
            let key = (ctx.borrow().target_nonce, anchor.to_string(), k);
            let cached = ctx.borrow().anchor_cache.get(&key).copied();
            let word = match cached {
                Some(w) => w,
                None => {
                    let mem = ctx_mem(&ctx)?;
                    let w = mem
                        .fetch('d', addr as i64 + 4 * k, 4)
                        .map_err(|e| host_err(e.to_string()))?;
                    let mut c = ctx.borrow_mut();
                    c.anchor_cache.insert(key, w);
                    c.anchor_fetches += 1;
                    w
                }
            };
            if as_location {
                i.push(Object::location(Location::Addr { space: 'd', offset: word as i64 }));
            } else {
                i.push(word as i64);
            }
            Ok(())
        });
    }

    // --- SymLoc: symbol entry -> location, memoizing procedures ---
    interp.register("SymLoc", |i| {
        let entry = i.pop()?;
        let d = entry.as_dict()?;
        let where_ = d
            .borrow()
            .get_name("where")
            .cloned()
            .ok_or_else(|| host_err("symbol has no location"))?;
        if let Value::Location(_) = where_.val {
            i.push(where_);
            return Ok(());
        }
        // A procedure (or executable string): interpret it, then replace
        // it with its result — "procedures that are interpreted at most
        // once can be replaced with their results" (paper, Sec. 5).
        i.call(&where_)?;
        let loc = i.pop()?;
        loc.as_location()?;
        d.borrow_mut().put_name("where", loc.clone());
        i.push(loc);
        Ok(())
    });

    // --- typed fetch/store words for rewritten expressions ---
    let typed: [(&str, u8, bool, bool); 8] = [
        ("fetchC", 1, true, false),
        ("fetchUC", 1, false, false),
        ("fetchS", 2, true, false),
        ("fetchUS", 2, false, false),
        ("fetchI", 4, true, false),
        ("fetchU", 4, false, false),
        ("fetchF", 4, false, true),
        ("fetchD", 8, false, true),
    ];
    for (name, size, signed, float) in typed {
        let ctx = ctx.clone();
        interp.register(name, move |i| {
            let loc = i.pop()?.as_location()?;
            let mem = ctx_mem(&ctx)?;
            let v = loc_fetch(&mem, &loc, size)?;
            push_typed(i, v, size, signed, float)
        });
    }
    // Pointers are *locations* in the dialect: fetching one yields a
    // location in the data space, so pointer arithmetic (`Shifted`) and
    // dereference compose naturally in rewritten expressions.
    {
        let ctx = ctx.clone();
        interp.register("fetchP", move |i| {
            let loc = i.pop()?.as_location()?;
            let mem = ctx_mem(&ctx)?;
            // The deref path shares the per-evaluation follow cap: a
            // rewritten expression chasing a corrupted pointer chain
            // fails with a diagnostic instead of exhausting its budget.
            {
                let mut c = ctx.borrow_mut();
                if c.ptr_follows >= c.follow_cap {
                    c.follow_cap_trips += 1;
                    return Err(host_err(format!(
                        "pointer-follow cap ({}) exceeded — cyclic or corrupted pointer chain?",
                        c.follow_cap
                    )));
                }
                c.ptr_follows += 1;
            }
            match loc_fetch(&mem, &loc, 4)? {
                Object { val: Value::Int(addr), .. } => {
                    i.push(Object::location(Location::Addr { space: 'd', offset: addr }));
                    Ok(())
                }
                other => {
                    i.push(other);
                    Ok(())
                }
            }
        });
    }
    {
        let ctx = ctx.clone();
        interp.register("storeP", move |i| {
            let value = i.pop()?;
            let loc = i.pop()?.as_location()?;
            let mem = ctx_mem(&ctx)?;
            let raw = match &value.val {
                Value::Location(Location::Addr { offset, .. }) => *offset as u64,
                Value::Int(v) => *v as u64,
                other => return Err(host_err(format!("storeP: {other:?}"))),
            };
            loc_store(&mem, &loc, 4, raw & 0xffff_ffff)?;
            i.push(value);
            Ok(())
        });
    }
    let stores: [(&str, u8, bool); 8] = [
        ("storeC", 1, false),
        ("storeUC", 1, false),
        ("storeS", 2, false),
        ("storeUS", 2, false),
        ("storeI", 4, false),
        ("storeU", 4, false),
        ("storeF", 4, true),
        ("storeD", 8, true),
    ];
    for (name, size, float) in stores {
        let ctx = ctx.clone();
        interp.register(name, move |i| {
            let value = i.pop()?;
            let loc = i.pop()?.as_location()?;
            let mem = ctx_mem(&ctx)?;
            let raw = object_to_raw(&value, size, float)?;
            loc_store(&mem, &loc, size, raw)?;
            // Store words leave the stored value: it is the value of the
            // assignment expression.
            i.push(value);
            Ok(())
        });
    }

    // --- the value printer, rebinding `print` in the debugging dict ---
    // (mem loc typedict print -) — dictionary-stack rebinding in action:
    // below this dictionary, `print` is still the standard output
    // operator.
    let print_op = {
        ldb_postscript::Operator {
            name: Rc::from("print"),
            f: Rc::new(|i: &mut Interp| {
                let td = i.peek(0)?.as_dict()?;
                let printer = td
                    .borrow()
                    .get_name("printer")
                    .cloned()
                    .ok_or_else(|| host_err("type has no printer"))?;
                i.call(&printer)
            }),
        }
    };
    dict.borrow_mut().put_name("print", Object::ex(Value::Operator(print_op)));

    // Load the shared printer procedures into the debug dictionary.
    interp.push_dict(Rc::clone(&dict));
    interp
        .run_str(include_str!("ps/base.ps"))
        .expect("base.ps loads");
    // Load the expression-evaluation prelude (cvC, rshI, ...).
    interp
        .run_str(ldb_exprserver::REWRITE_PRELUDE)
        .expect("rewrite prelude loads");
    interp.pop_dict().expect("balanced");

    dict
}

/// The per-architecture PostScript (the paper's 13–18 machine-dependent
/// lines per target), loaded into a fresh dictionary.
pub fn make_arch_dict(interp: &mut Interp, arch: ldb_machine::Arch) -> ldb_postscript::DictRef {
    let dict = Rc::new(RefCell::new(Dict::new(16)));
    let src = match arch {
        ldb_machine::Arch::Mips => include_str!("ps/mips.ps"),
        ldb_machine::Arch::Sparc => include_str!("ps/sparc.ps"),
        ldb_machine::Arch::M68k => include_str!("ps/m68k.ps"),
        ldb_machine::Arch::Vax => include_str!("ps/vax.ps"),
    };
    interp.push_dict(Rc::clone(&dict));
    interp.run_str(src).expect("arch dictionary loads");
    interp.pop_dict().expect("balanced");
    dict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amemory::{AbstractMemory, FakeMemory};

    fn setup() -> (Interp, CtxRef, Rc<FakeMemory>) {
        let mut i = Interp::new();
        let ctx: CtxRef = Rc::new(RefCell::new(EvalCtx::new()));
        let dict = make_debug_dict(&mut i, ctx.clone());
        i.push_dict(dict);
        let fake = Rc::new(FakeMemory::default());
        ctx.borrow_mut().mem = Some(fake.clone());
        (i, ctx, fake)
    }

    #[test]
    fn fetch_and_store_through_locations() {
        let (mut i, ctx, fake) = setup();
        fake.store('d', 100, 4, 0xfffffff6).unwrap(); // -10 as u32
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str("/d 100 Absolute Fetch32").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), -10);
        // Unsigned view of the same cell.
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str("/d 100 Absolute Fetch32u").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 0xfffffff6);
    }

    #[test]
    fn typed_words_use_current_mem() {
        let (mut i, _ctx, fake) = setup();
        fake.store('d', 8, 4, 41).unwrap();
        i.run_str("/d 8 Absolute fetchI 1 add").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 42);
        i.run_str("/d 8 Absolute 7 storeI").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 7, "store leaves the value");
        assert_eq!(fake.fetch('d', 8, 4).unwrap(), 7);
    }

    #[test]
    fn float_words() {
        let (mut i, _ctx, fake) = setup();
        fake.store('d', 16, 8, 2.5f64.to_bits()).unwrap();
        i.run_str("/d 16 Absolute fetchD 2.0 mul").unwrap();
        assert_eq!(i.pop().unwrap().as_real().unwrap(), 5.0);
        i.run_str("/d 24 Absolute 1.5 storeD pop").unwrap();
        assert_eq!(f64::from_bits(fake.fetch('d', 24, 8).unwrap()), 1.5);
    }

    #[test]
    fn lazy_data_fetches_once_per_entry() {
        let (mut i, ctx, fake) = setup();
        ctx.borrow_mut().anchors.insert("_stanchor_test".into(), 0x4000);
        fake.store('d', 0x4000 + 8 * 4, 4, 0x2345).unwrap();
        i.run_str("(_stanchor_test) 8 LazyData").unwrap();
        let loc = i.pop().unwrap().as_location().unwrap();
        assert_eq!(loc, Location::Addr { space: 'd', offset: 0x2345 });
        assert_eq!(ctx.borrow().anchor_fetches, 1);
        // Again: served from the cache.
        i.run_str("(_stanchor_test) 8 LazyData pop").unwrap();
        assert_eq!(ctx.borrow().anchor_fetches, 1);
        i.run_str("(_stanchor_test) 8 LazyAddr").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 0x2345);
    }

    #[test]
    fn symloc_memoizes_procedures() {
        let (mut i, ctx, fake) = setup();
        ctx.borrow_mut().anchors.insert("_a".into(), 0x4000);
        fake.store('d', 0x4000, 4, 0x1111).unwrap();
        i.run_str("/E << /where {(_a) 0 LazyData} >> def").unwrap();
        i.run_str("E SymLoc").unwrap();
        let loc = i.pop().unwrap().as_location().unwrap();
        assert_eq!(loc, Location::Addr { space: 'd', offset: 0x1111 });
        // The /where entry has been replaced by the literal location.
        i.run_str("E /where get type").unwrap();
        assert_eq!(i.pop().unwrap().as_name().unwrap().as_ref(), "locationtype");
        // Literal locations pass straight through.
        i.run_str("E SymLoc pop").unwrap();
        assert_eq!(ctx.borrow().anchor_fetches, 1);
    }

    #[test]
    fn printers_print_via_pretty() {
        let (mut i, ctx, fake) = setup();
        let buf = {
            let buf = Rc::new(RefCell::new(String::new()));
            i.set_output(ldb_postscript::Out::Shared(Rc::clone(&buf)));
            buf
        };
        fake.store('d', 0, 4, 0xffff_ffff).unwrap(); // -1
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str("/d 0 Absolute << /printer {INT} >> print").unwrap();
        assert_eq!(buf.borrow().as_str(), "-1");
    }

    #[test]
    fn array_printer_matches_paper_output() {
        let (mut i, ctx, fake) = setup();
        let buf = Rc::new(RefCell::new(String::new()));
        i.set_output(ldb_postscript::Out::Shared(Rc::clone(&buf)));
        for k in 0..5 {
            fake.store('d', 0x100 + 4 * k, 4, (k as u64) * 11).unwrap();
        }
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str(
            "/d 16#100 Absolute << /printer {ARRAY} /&elemsize 4 /&arraysize 20 \
             /&elemtype << /printer {INT} >> >> print",
        )
        .unwrap();
        assert_eq!(buf.borrow().as_str(), "{0, 11, 22, 33, 44}");
    }

    #[test]
    fn array_printer_honours_limit() {
        let (mut i, ctx, fake) = setup();
        let buf = Rc::new(RefCell::new(String::new()));
        i.set_output(ldb_postscript::Out::Shared(Rc::clone(&buf)));
        for k in 0..30 {
            fake.store('d', 4 * k, 4, 1).unwrap();
        }
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str(
            "/&limit 3 def /d 0 Absolute << /printer {ARRAY} /&elemsize 4 /&arraysize 120 \
             /&elemtype << /printer {INT} >> >> print",
        )
        .unwrap();
        assert_eq!(buf.borrow().as_str(), "{1, 1, 1, ...}");
    }

    #[test]
    fn char_printer_quotes() {
        let (mut i, ctx, fake) = setup();
        let buf = Rc::new(RefCell::new(String::new()));
        i.set_output(ldb_postscript::Out::Shared(Rc::clone(&buf)));
        fake.store('d', 0, 1, b'A' as u64).unwrap();
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str("/d 0 Absolute << /printer {CHAR} >> print").unwrap();
        assert_eq!(buf.borrow().as_str(), "'A'");
    }

    #[test]
    fn pptr_cyclic_list_prints_cycle() {
        let (mut i, ctx, fake) = setup();
        let buf = Rc::new(RefCell::new(String::new()));
        i.set_output(ldb_postscript::Out::Shared(Rc::clone(&buf)));
        // Two pointer cells aimed at each other: a two-node cyclic list.
        fake.store('d', 0x100, 4, 0x200).unwrap();
        fake.store('d', 0x200, 4, 0x100).unwrap();
        ctx.borrow_mut().begin_print();
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        // A self-referential pointer type: its pointee is itself.
        i.run_str(
            "/nodeP << /printer {PPTR} >> def nodeP /&pointee nodeP put \
             /d 16#100 Absolute nodeP print",
        )
        .unwrap();
        assert_eq!(buf.borrow().as_str(), "0x200 -> 0x100 -> 0x200 -> <cycle>");
        assert_eq!(ctx.borrow().print_cycle_hits, 1);
    }

    #[test]
    fn pptr_runaway_chain_stops_at_follow_cap() {
        let (mut i, ctx, fake) = setup();
        let buf = Rc::new(RefCell::new(String::new()));
        i.set_output(ldb_postscript::Out::Shared(Rc::clone(&buf)));
        // An acyclic chain longer than the cap: cell k points to cell k+1.
        for k in 0..16i64 {
            fake.store('d', 0x100 + 4 * k, 4, (0x104 + 4 * k) as u64).unwrap();
        }
        ctx.borrow_mut().begin_print();
        ctx.borrow_mut().follow_cap = 4;
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str(
            "/chainP << /printer {PPTR} >> def chainP /&pointee chainP put \
             /d 16#100 Absolute chainP print",
        )
        .unwrap();
        assert_eq!(buf.borrow().as_str(), "0x104 -> 0x108 -> 0x10c -> 0x110 -> 0x114 -> <...>");
        assert_eq!(ctx.borrow().follow_cap_trips, 1);
        assert_eq!(ctx.borrow().print_cycle_hits, 0);
        // A fresh print starts a fresh budget.
        ctx.borrow_mut().begin_print();
        assert_eq!(ctx.borrow().ptr_follows, 0);
    }

    #[test]
    fn pptr_null_pointer_prints_bare_address() {
        let (mut i, ctx, _fake) = setup();
        let buf = Rc::new(RefCell::new(String::new()));
        i.set_output(ldb_postscript::Out::Shared(Rc::clone(&buf)));
        ctx.borrow_mut().begin_print();
        let mem = ctx.borrow().mem.clone().unwrap();
        i.push(Object::host(Rc::new(MemHandle(mem))));
        i.run_str(
            "/nullP << /printer {PPTR} >> def nullP /&pointee nullP put \
             /d 16#300 Absolute nullP print",
        )
        .unwrap();
        assert_eq!(buf.borrow().as_str(), "0x0");
    }

    #[test]
    fn arch_dicts_rebind_machine_dependent_names() {
        let mut i = Interp::new();
        let ctx: CtxRef = Rc::new(RefCell::new(EvalCtx::new()));
        let dbg = make_debug_dict(&mut i, ctx);
        i.push_dict(dbg);
        let mips = make_arch_dict(&mut i, ldb_machine::Arch::Mips);
        let vax = make_arch_dict(&mut i, ldb_machine::Arch::Vax);
        i.push_dict(mips);
        i.run_str("30 Regset0 Absolute LocSpace").unwrap();
        assert_eq!(i.pop().unwrap().as_name().unwrap().as_ref(), "r");
        i.run_str("&nregs").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 32);
        i.pop_dict().unwrap();
        i.push_dict(vax);
        i.run_str("&nregs").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 16);
        i.run_str("&regnames 13 get").unwrap();
        assert_eq!(i.pop().unwrap().as_string().unwrap().as_ref(), "fp");
    }
}
