//! The debugger: targets, stops, frames, printing, and expression
//! evaluation — the client interface tying every subsystem together.
//!
//! One embedded PostScript interpreter serves all of it ("one interpreter
//! supports code in symbol tables and expression evaluation"). Each target
//! carries its own loader table, per-architecture dictionary, nub
//! connection, and breakpoints; ldb "can debug on multiple architectures
//! simultaneously" and changes architectures by rebinding the dictionary
//! stack.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ldb_machine::{Arch, MachineData};
use ldb_nub::{NubClient, NubConfig, NubEvent, NubHandle, Sig, Wire};
use ldb_postscript::{Budget, DictRef, Interp, Location, Object, Out, PsError, PsFile, Value};
use ldb_trace::{Layer, Severity, Trace};

use crate::amemory::{CachedMemory, JoinedMemory, MemRef, WireMemory};
use crate::breakpoint::Breakpoints;
use crate::chaos::{ChaosConfig, ChaosMemory};
use crate::frame::{frame_walker, walk_stack, Frame, WalkCtx, WalkStop};
use crate::loader::{CompiledTable, Loader, ModuleTable};
use crate::psops::{make_arch_dict, make_debug_dict, CtxRef, EvalCtx, MemHandle};
use crate::symtab;
use crate::LdbError;

/// Why the target stopped, for the client.
#[derive(Debug, Clone, PartialEq)]
pub enum StopEvent {
    /// Stopped at the startup pause (before `main`).
    Paused,
    /// Stopped because the debugger attached.
    Attached,
    /// Hit a breakpoint.
    Breakpoint {
        /// Enclosing procedure (source name).
        func: String,
        /// Source line of the stopping point.
        line: u32,
        /// The stopping-point address.
        addr: u32,
    },
    /// Stopped after a single step.
    Stepped {
        /// Enclosing procedure.
        func: String,
        /// Nearest stopping-point line at or before the pc.
        line: u32,
        /// The new pc.
        addr: u32,
    },
    /// A watched variable changed value (software watchpoint driven by
    /// the nub's step extension, paper Sec. 7.1).
    Watchpoint {
        /// The watched name.
        name: String,
        /// Printed value before the change.
        old: String,
        /// Printed value after the change.
        new: String,
        /// Enclosing procedure at the stop.
        func: String,
        /// Nearest stopping-point line at or before the pc.
        line: u32,
        /// The pc after the changing instruction.
        addr: u32,
    },
    /// The target faulted.
    Fault {
        /// Signal name.
        sig: String,
        /// Auxiliary code (fault address or pc).
        code: u32,
    },
    /// The target exited.
    Exited(i32),
}

impl StopEvent {
    /// A short stable name for logs and trace journals.
    pub fn kind_name(&self) -> &'static str {
        match self {
            StopEvent::Paused => "paused",
            StopEvent::Attached => "attached",
            StopEvent::Breakpoint { .. } => "breakpoint",
            StopEvent::Stepped { .. } => "stepped",
            StopEvent::Watchpoint { .. } => "watchpoint",
            StopEvent::Fault { .. } => "fault",
            StopEvent::Exited(_) => "exited",
        }
    }
}

/// The current stop state of a target.
#[derive(Debug, Clone, Copy)]
pub struct Stop {
    /// Signal.
    pub sig: Sig,
    /// Auxiliary code.
    pub code: u32,
    /// Context-block address.
    pub context: u32,
}

/// A software watchpoint: a resolved symbol entry plus the value it had
/// when last inspected. Locals carry the frame (procedure + vfp) they were
/// armed in and are only compared while that invocation is innermost.
pub struct Watch {
    /// The watched name, as the user gave it.
    pub name: String,
    entry: Object,
    /// `Some((proc, vfp))` for frame-relative variables.
    scope: Option<(String, u32)>,
    last: String,
}

/// Split on commas that are not nested inside parentheses or quoted in
/// character literals.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut level = 0i32;
    let mut start = 0;
    let mut quote = false;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'\'' => quote = !quote,
            _ if quote => {}
            b'(' => level += 1,
            b')' => level -= 1,
            b',' if level == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// One argument to a debugger-initiated call.
#[derive(Debug, Clone, Copy)]
pub enum CallArg {
    /// An integer (any C integer type; truncated to 32 bits).
    Int(i64),
    /// A double (C `double`; `float` parameters are not supported).
    Double(f64),
}

/// What a debugger-initiated call left in the return registers. Which
/// field is meaningful depends on the callee's return type (the debugger
/// reads both; C callees set exactly one).
#[derive(Debug, Clone, Copy)]
pub struct CallReturn {
    /// The integer return register.
    pub int: i64,
    /// The float return register.
    pub float: f64,
}

/// How a target receives debugger-initiated calls.
enum CallConv {
    /// Arguments in registers, return address in a link register.
    Risc {
        /// Integer argument registers, in order.
        arg_regs: &'static [u8],
        /// The link register the callee returns through.
        ra: u8,
    },
    /// Arguments pushed right-to-left; the call pushes the return address.
    Cisc,
}

/// The calling convention of each simulated target (mirrors the
/// compiler back ends in `ldb-cc`).
fn call_conv(arch: Arch) -> CallConv {
    match arch {
        Arch::Mips => CallConv::Risc { arg_regs: &[4, 5, 6, 7], ra: 31 },
        Arch::Sparc => CallConv::Risc { arg_regs: &[8, 9, 10, 11, 12, 13], ra: 15 },
        Arch::M68k | Arch::Vax => CallConv::Cisc,
    }
}

struct ExprState {
    outcome: Option<Result<(), String>>,
}

/// One debugged target (the paper's *target object*: connection state and
/// everything that must not live in globals, because ldb connects to
/// multiple targets simultaneously).
pub struct Target {
    /// Architecture.
    pub arch: Arch,
    /// Machine-dependent data.
    pub data: &'static MachineData,
    /// Nub connection.
    pub client: Rc<RefCell<NubClient>>,
    /// Loader table.
    pub loader: Rc<Loader>,
    /// The per-architecture dictionary.
    pub arch_dict: DictRef,
    /// The unit dictionary holding this target's symbol-table entries
    /// (`S0`, `S1`, ... and the type dictionaries).
    pub unit_dict: DictRef,
    /// The wire memory (c/d spaces), possibly behind the block cache.
    pub wire: MemRef,
    /// The block cache in front of the wire, when enabled: `wire` is then
    /// this same object. Held separately so the debugger can invalidate
    /// at resume/stop/plant boundaries and the CLI can report stats.
    pub cache: Option<Rc<CachedMemory>>,
    /// The chaos layer corrupting this target's data fetches, when the
    /// session was started with `--chaos`: `wire` is then this object,
    /// wrapping the cache (or raw wire). Held separately for stats.
    pub chaos: Option<Rc<ChaosMemory>>,
    /// Planted breakpoints.
    pub breakpoints: Breakpoints,
    /// Current stop, if stopped.
    pub stop: Option<Stop>,
    /// The call stack at the current stop (0 = top).
    pub frames: Vec<Rc<Frame>>,
    /// Why the last stack walk stopped ([`WalkStop::StackBase`] for a
    /// complete walk; anything else means `frames` is truncated).
    pub walk_stop: WalkStop,
    /// The selected frame.
    pub cur_frame: usize,
    /// Keep the spawned nub alive (when we spawned it).
    pub nub: Option<NubHandle>,
    /// Armed software watchpoints.
    pub watches: Vec<Watch>,
    /// Breakpoint conditions: address -> C expression; resume paths skip
    /// the stop while the expression evaluates to zero.
    pub conds: HashMap<u32, String>,
    /// The wire to the nub was lost (debugger-side view). The nub itself
    /// preserves the target; cached queries still answer, mutating
    /// operations refuse until [`Ldb::reconnect`].
    pub disconnected: bool,
    /// Register snapshot from the last successful [`Ldb::registers`]
    /// call, answered while disconnected.
    reg_cache: Vec<(String, u32)>,
    /// The checkpoint ring reverse execution rewinds through.
    pub checkpoints: crate::checkpoint::CheckpointStore,
}

impl Target {
    /// Drop cached `d`-space lines. Data memory is cached per-stop: any
    /// boundary where the target may run, or where the debugger stores
    /// into data behind the cache's back, lands here.
    pub fn invalidate_data_cache(&self) {
        if let Some(c) = &self.cache {
            c.invalidate_space('d');
        }
    }

    /// Drop cached `c`-space lines. Code is read-only to the *target*, so
    /// it is cached for the whole session — but the debugger itself
    /// patches it when planting and unplanting breakpoints.
    pub fn invalidate_code_cache(&self) {
        if let Some(c) = &self.cache {
            c.invalidate_space('c');
        }
    }
}

impl std::fmt::Debug for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Target {{ arch: {}, stopped: {} }}", self.arch, self.stop.is_some())
    }
}

/// Per-call resource-budget profiles for untrusted PostScript: symbol
/// tables load under the generous `load` profile; interactive printing
/// and expression evaluation run under the tight `interactive` profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsBudgets {
    /// Budget for `Loader::load`/`Loader::load_plan` (per module).
    pub load: Budget,
    /// Budget for printing and expression evaluation.
    pub interactive: Budget,
}

impl Default for PsBudgets {
    fn default() -> Self {
        PsBudgets { load: Budget::LOAD, interactive: Budget::INTERACTIVE }
    }
}

/// One row of a [`Ldb::reload_modules`] report: the module name and its
/// outcome — `Ok(())` reloaded, `Err(reason)` still quarantined.
pub type ReloadRow = (String, Result<(), String>);

/// Where an attach gets its loader table from.
enum TableSource<'a> {
    /// One combined loader-table program (the classic path).
    Whole(&'a str),
    /// Trusted frame plus per-module tables, sandboxed individually.
    Plan {
        /// Linker frame: anchor map and proctable, `/symtab null`.
        frame: &'a str,
        /// Per-module symbol tables.
        modules: &'a [ModuleTable],
    },
    /// Trusted frame plus pre-compiled per-module tables; module bodies
    /// run lazily on first demand (breakpoint, walk, or print).
    Compiled {
        /// Linker frame, precompiled: anchor map and proctable.
        frame: &'a ldb_postscript::CompiledModule,
        /// Per-module compiled symbol tables.
        modules: &'a [CompiledTable],
    },
}

/// The debugger session.
pub struct Ldb {
    /// The embedded PostScript interpreter.
    pub interp: Interp,
    /// Captured debugger output (what `print` produced).
    pub out: Rc<RefCell<String>>,
    ctx: CtxRef,
    #[allow(dead_code)]
    debug_dict: DictRef,
    targets: Vec<Target>,
    cur: Option<usize>,
    dicts_pushed: u8,
    expr: Option<ExprSession>,
    expr_state: Rc<RefCell<ExprState>>,
    handles: u32,
    /// Put the block cache in front of the wire of targets attached from
    /// now on (on by default; `--no-wire-cache` turns it off).
    wire_cache: bool,
    /// Resource budgets for untrusted PostScript (the artifact sandbox).
    budgets: PsBudgets,
    /// Flight-recorder handle, propagated to the interpreter and to every
    /// nub client ([`Ldb::set_trace`]).
    trace: Trace,
    /// Chaos-injection policy for targets attached from now on (`--chaos
    /// SEED`): hostile-target testing, off by default.
    chaos: Option<ChaosConfig>,
    /// Session-wide robustness counters (`info health`).
    health: Health,
    /// Cross-thread cancellation token ([`Ldb::set_cancel`]): the daemon's
    /// per-session watchdog sets it to abort a wedged command. Propagated
    /// to the interpreter and to every nub client, like the trace handle.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// The dictionary stack as of session construction (systemdict …
    /// debug dict): the known-good base [`Ldb::recover_session`] restores
    /// after a quarantined command.
    base_dicts: Vec<DictRef>,
    /// Periodic-checkpoint interval for `cont` (`--checkpoint-every N`):
    /// when set, resumes run in `N`-step legs and a checkpoint is taken at
    /// each leg boundary. `None` (the default) leaves the run path alone.
    checkpoint_every: Option<u64>,
}

/// Session-wide robustness counters: how often the defensive layers
/// fired. `info health` renders this; the chaos soak asserts over it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Health {
    /// Stack walks that ended in anything but
    /// [`WalkStop::StackBase`](crate::frame::WalkStop::StackBase).
    pub walks_truncated: u64,
    /// Of those, walks stopped by cycle detection.
    pub walk_cycles: u64,
    /// `<cycle>` diagnostics emitted while printing pointer-linked data.
    pub print_cycles: u64,
    /// Prints truncated by the pointer-follow cap.
    pub print_follow_caps: u64,
    /// Commands quarantined by the crash-proof command loop.
    pub quarantined_commands: u64,
    /// Fetches the chaos layer corrupted (0 without `--chaos`).
    pub chaos_corruptions: u64,
    /// Wedged commands a session watchdog cancelled (0 outside a
    /// watchdog-supervised session — the daemon's per-tenant deadline).
    pub watchdog_timeouts: u64,
    /// Checkpoints captured (manual, at-resume, and periodic).
    pub checkpoints_taken: u64,
    /// Snapshot restores performed by reverse execution.
    pub restores: u64,
}

impl Health {
    /// The counters as one machine-readable JSON object (`info health
    /// --json`): what the daemon and fleet runner aggregate per tenant
    /// without screen-scraping the human format. Keys are the field
    /// names; all values are unsigned integers, so the encoding needs no
    /// escaping machinery.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"walks_truncated\":{},\"walk_cycles\":{},\"print_cycles\":{},\
             \"print_follow_caps\":{},\"quarantined_commands\":{},\
             \"chaos_corruptions\":{},\"watchdog_timeouts\":{},\
             \"checkpoints_taken\":{},\"restores\":{}}}",
            self.walks_truncated,
            self.walk_cycles,
            self.print_cycles,
            self.print_follow_caps,
            self.quarantined_commands,
            self.chaos_corruptions,
            self.watchdog_timeouts,
            self.checkpoints_taken,
            self.restores
        )
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "health: {} truncated walks ({} cycles), {} print cycles, \
             {} follow caps, {} quarantined commands, {} chaos corruptions, \
             {} watchdog timeouts, {} checkpoints, {} restores",
            self.walks_truncated,
            self.walk_cycles,
            self.print_cycles,
            self.print_follow_caps,
            self.quarantined_commands,
            self.chaos_corruptions,
            self.watchdog_timeouts,
            self.checkpoints_taken,
            self.restores
        )
    }
}

struct ExprSession {
    to_server: crossbeam::channel::Sender<ldb_exprserver::ToServer>,
    pipe: Rc<RefCell<PsFile>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Ldb {
    fn drop(&mut self) {
        if let Some(s) = self.expr.take() {
            let _ = s.to_server.send(ldb_exprserver::ToServer::Shutdown);
            if let Some(j) = s.join {
                let _ = j.join();
            }
        }
    }
}

impl Default for Ldb {
    fn default() -> Self {
        Self::new()
    }
}

impl Ldb {
    /// A fresh session: interpreter, debugging dictionary, captured output.
    pub fn new() -> Ldb {
        let mut interp = Interp::new();
        let out = Rc::new(RefCell::new(String::new()));
        interp.set_output(Out::Shared(Rc::clone(&out)));
        let ctx: CtxRef = Rc::new(RefCell::new(EvalCtx::new()));
        let debug_dict = make_debug_dict(&mut interp, ctx.clone());
        interp.push_dict(Rc::clone(&debug_dict));
        let base_dicts = interp.dict_stack_snapshot();
        let expr_state = Rc::new(RefCell::new(ExprState { outcome: None }));
        let mut ldb = Ldb {
            interp,
            out,
            ctx,
            debug_dict,
            targets: Vec::new(),
            cur: None,
            dicts_pushed: 0,
            expr: None,
            expr_state,
            handles: 0,
            wire_cache: true,
            budgets: PsBudgets::default(),
            trace: Trace::off(),
            chaos: None,
            health: Health::default(),
            cancel: None,
            base_dicts,
            checkpoint_every: None,
        };
        ldb.register_expr_ops();
        ldb
    }

    /// Attach the flight recorder to the whole session: the debugger
    /// command loop ([`Layer::Dbg`]), the embedded interpreter
    /// ([`Layer::Ps`]), and every nub client — targets already attached
    /// and targets attached from now on ([`Layer::Wire`]). Pass
    /// [`Trace::off`] to detach everywhere.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace.clone();
        self.interp.set_trace(trace.clone());
        for t in &self.targets {
            t.client.borrow_mut().set_trace(trace.clone());
        }
    }

    /// The session's flight-recorder handle (`info trace` reads its
    /// counters and ring).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Attach a cross-thread cancellation token to the whole session: the
    /// interpreter's dispatch loop and every nub client — targets already
    /// attached and targets attached from now on — poll it and abort with
    /// a timeout error once it is set. The daemon's per-session watchdog
    /// owns the other end; `None` detaches everywhere.
    pub fn set_cancel(
        &mut self,
        cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) {
        self.cancel = cancel.clone();
        self.interp.set_cancel(cancel.clone());
        for t in &self.targets {
            t.client.borrow_mut().set_cancel(cancel.clone());
        }
    }

    /// Record a wedged command the session watchdog had to cancel (the
    /// daemon's session worker calls this before `recover_session`).
    pub fn note_watchdog_timeout(&mut self) {
        self.health.watchdog_timeouts += 1;
    }

    /// Best-effort detach of every live target with a hard per-target
    /// deadline: the teardown path for watchdog kills, idle eviction, and
    /// daemon shutdown, where relying on drop order would leave the
    /// simulated target running with breakpoints planted. Detach failures
    /// are swallowed — the target may already be gone — but each attempt
    /// is bounded so teardown cannot wedge behind a dead wire.
    pub fn detach_all_with_deadline(&mut self, deadline: std::time::Duration) {
        for t in self.targets.drain(..) {
            if !t.disconnected {
                t.client.borrow_mut().detach_with_deadline(deadline);
            }
            drop(t.nub);
        }
        self.pop_target_dicts();
        self.cur = None;
    }

    /// Enable or disable the wire cache for *future* attaches (existing
    /// targets keep whatever they were attached with).
    pub fn set_wire_cache(&mut self, on: bool) {
        self.wire_cache = on;
    }

    /// Inject seeded target-memory corruption into targets attached from
    /// now on (`--chaos SEED`); `None` turns injection off. The chaos
    /// layer sits on the inspection path only — above the wire cache,
    /// below the frame walkers and printers — so run control stays
    /// reliable while everything the debugger *reads* is hostile.
    pub fn set_chaos(&mut self, chaos: Option<ChaosConfig>) {
        self.chaos = chaos;
    }

    /// Session robustness counters, merged from the walk, print, and
    /// chaos layers.
    pub fn health(&self) -> Health {
        let mut h = self.health.clone();
        {
            let c = self.ctx.borrow();
            h.print_cycles = c.print_cycle_hits;
            h.print_follow_caps = c.follow_cap_trips;
        }
        for t in &self.targets {
            if let Some(chaos) = &t.chaos {
                h.chaos_corruptions += chaos.stats().corruptions;
            }
        }
        h
    }

    /// Record a command quarantined by the crash-proof loop (the CLI and
    /// script runner call this from their `catch_unwind` handlers).
    pub fn note_quarantined(&mut self) {
        self.health.quarantined_commands += 1;
    }

    /// Put the session back into a coherent state after a panicking
    /// command was caught: clear the operand stack, drop any inner budget
    /// the unwound code left in force, restore the known-good base
    /// dictionary stack, re-select the current target (re-pushing its
    /// dictionaries and re-syncing the frame context), and retire the
    /// expression server — a panic may have left it mid-protocol, and it
    /// respawns cleanly on the next evaluation.
    pub fn recover_session(&mut self) {
        self.interp.clear_stack();
        self.interp.set_budget(Budget::default());
        self.interp.restore_dict_stack(self.base_dicts.clone());
        self.dicts_pushed = 0;
        if let Some(s) = self.expr.take() {
            // Ask it to exit, but do not join: the server may be blocked
            // on the pipe the unwound command abandoned.
            let _ = s.to_server.send(ldb_exprserver::ToServer::Shutdown);
        }
        self.expr_state.borrow_mut().outcome = None;
        if let Some(id) = self.cur {
            let _ = self.select_target(id);
        }
    }

    /// The budget profiles in force.
    pub fn ps_budgets(&self) -> PsBudgets {
        self.budgets
    }

    /// Replace the budget profiles (`--ps-fuel`/`--ps-mem` land here).
    pub fn set_ps_budgets(&mut self, budgets: PsBudgets) {
        self.budgets = budgets;
    }

    /// Override the sandbox limits from the command line: `fuel` and
    /// `mem` (bytes) apply to the load profile; the interactive profile
    /// gets a tenth of each (at least one) so a stuck printer still dies
    /// quickly.
    pub fn set_ps_limits(&mut self, fuel: Option<u64>, mem: Option<u64>) {
        if let Some(f) = fuel {
            self.budgets.load.max_fuel = f.max(1);
            self.budgets.interactive.max_fuel = (f / 10).max(1);
        }
        if let Some(m) = mem {
            self.budgets.load.max_alloc = m.max(1);
            self.budgets.interactive.max_alloc = (m / 10).max(1);
        }
    }

    // ----- targets -----

    /// Attach over a wire: waits for the nub's initial stop notification,
    /// then loads the loader-table PostScript.
    ///
    /// # Errors
    /// Nub and PostScript failures.
    pub fn attach(
        &mut self,
        wire: Box<dyn Wire>,
        loader_ps: &str,
        nub: Option<NubHandle>,
    ) -> Result<usize, LdbError> {
        self.attach_with_config(wire, loader_ps, nub, ldb_nub::ClientConfig::default())
    }

    /// As [`Ldb::attach`], with an explicit resilience policy for the nub
    /// client (lossy wires want shorter timeouts and bigger retry
    /// budgets than the defaults).
    ///
    /// # Errors
    /// As [`Ldb::attach`].
    pub fn attach_with_config(
        &mut self,
        wire: Box<dyn Wire>,
        loader_ps: &str,
        nub: Option<NubHandle>,
        cfg: ldb_nub::ClientConfig,
    ) -> Result<usize, LdbError> {
        self.attach_source(wire, TableSource::Whole(loader_ps), nub, cfg)
    }

    /// Attach from a *load plan*: the trusted loader frame plus one
    /// symbol table per module, each sandboxed under the load budget.
    /// Modules that fault, exhaust their budget, or fail validation are
    /// quarantined (see `Loader::load_plan`); the attach succeeds as long
    /// as at least one module survives.
    ///
    /// # Errors
    /// As [`Ldb::attach`], or every module quarantined.
    pub fn attach_plan(
        &mut self,
        wire: Box<dyn Wire>,
        frame_ps: &str,
        modules: &[ModuleTable],
        nub: Option<NubHandle>,
    ) -> Result<usize, LdbError> {
        self.attach_source(
            wire,
            TableSource::Plan { frame: frame_ps, modules },
            nub,
            ldb_nub::ClientConfig::default(),
        )
    }

    /// As [`Ldb::attach_plan`], with an explicit nub client policy.
    ///
    /// # Errors
    /// As [`Ldb::attach_plan`].
    pub fn attach_plan_with_config(
        &mut self,
        wire: Box<dyn Wire>,
        frame_ps: &str,
        modules: &[ModuleTable],
        nub: Option<NubHandle>,
        cfg: ldb_nub::ClientConfig,
    ) -> Result<usize, LdbError> {
        self.attach_source(wire, TableSource::Plan { frame: frame_ps, modules }, nub, cfg)
    }

    /// Attach from pre-compiled symbol tables (see
    /// [`ldb_postscript::compile_module`]): the trusted loader frame runs
    /// from bytecode eagerly, while module bodies are *deferred* — only
    /// their headers are checked at attach time, and each body runs
    /// (sandboxed, under the load budget) the first time a breakpoint,
    /// stack walk, or print needs that module's entries. Compiled tables
    /// are immutable and shareable, so N sessions attached to the same
    /// binary can reuse one [`ldb_postscript::ModuleCache`] entry per
    /// table (and one for the frame).
    ///
    /// # Errors
    /// As [`Ldb::attach_plan`], or every module quarantined at admission.
    pub fn attach_compiled_with_config(
        &mut self,
        wire: Box<dyn Wire>,
        frame: &ldb_postscript::CompiledModule,
        modules: &[CompiledTable],
        nub: Option<NubHandle>,
        cfg: ldb_nub::ClientConfig,
    ) -> Result<usize, LdbError> {
        self.attach_source(wire, TableSource::Compiled { frame, modules }, nub, cfg)
    }

    /// As [`Ldb::attach_compiled_with_config`] with the default nub
    /// client policy.
    ///
    /// # Errors
    /// As [`Ldb::attach_compiled_with_config`].
    pub fn attach_compiled(
        &mut self,
        wire: Box<dyn Wire>,
        frame: &ldb_postscript::CompiledModule,
        modules: &[CompiledTable],
        nub: Option<NubHandle>,
    ) -> Result<usize, LdbError> {
        self.attach_source(
            wire,
            TableSource::Compiled { frame, modules },
            nub,
            ldb_nub::ClientConfig::default(),
        )
    }

    fn attach_source(
        &mut self,
        wire: Box<dyn Wire>,
        source: TableSource<'_>,
        nub: Option<NubHandle>,
        cfg: ldb_nub::ClientConfig,
    ) -> Result<usize, LdbError> {
        let mut client = NubClient::with_config(wire, cfg);
        client.set_trace(self.trace.clone());
        client.set_cancel(self.cancel.clone());
        let ev = client.wait_event()?;
        let stop = match ev {
            NubEvent::Stopped { sig, code, context } => Stop { sig, code, context },
            NubEvent::Exited(c) => return Err(LdbError::msg(format!("target already exited ({c})"))),
        };
        // Each target's symbol-table entries live in their own dictionary,
        // pushed while that target is selected (deferred code in the
        // tables resolves S-names against it later).
        let unit_dict: DictRef =
            Rc::new(std::cell::RefCell::new(ldb_postscript::Dict::new(256)));
        self.pop_target_dicts();
        self.interp.push_dict(Rc::clone(&unit_dict));
        let loaded = match source {
            TableSource::Whole(ps) => {
                Loader::load_budgeted(&mut self.interp, ps, self.budgets.load)
            }
            TableSource::Plan { frame, modules } => {
                Loader::load_plan(&mut self.interp, frame, modules, self.budgets.load)
            }
            TableSource::Compiled { frame, modules } => {
                Loader::load_plan_compiled(&mut self.interp, frame, modules, self.budgets.load)
            }
        };
        let _ = self.interp.pop_dict();
        let loader = Rc::new(loaded?);
        let arch = loader.arch;
        let arch_dict = make_arch_dict(&mut self.interp, arch);
        let client = Rc::new(RefCell::new(client));
        let (wire, cache): (MemRef, Option<Rc<CachedMemory>>) = if self.wire_cache {
            let c = Rc::new(CachedMemory::new(Rc::clone(&client)));
            (Rc::clone(&c) as MemRef, Some(c))
        } else {
            (Rc::new(WireMemory::new(Rc::clone(&client))), None)
        };
        // The chaos layer wraps the cached view: everything the walkers
        // and printers read is corruptible, while the nub client (run
        // control, plants) bypasses it.
        let (wire, chaos): (MemRef, Option<Rc<ChaosMemory>>) = match &self.chaos {
            Some(cfg) => {
                let c = Rc::new(ChaosMemory::new(wire, cfg.clone(), self.trace.clone()));
                (Rc::clone(&c) as MemRef, Some(c))
            }
            None => (wire, None),
        };
        let mut target = Target {
            arch,
            data: arch.data(),
            client,
            loader,
            arch_dict,
            unit_dict,
            wire,
            cache,
            chaos,
            breakpoints: Breakpoints::new(arch.data()),
            stop: Some(stop),
            frames: Vec::new(),
            walk_stop: WalkStop::StackBase,
            cur_frame: 0,
            nub,
            watches: Vec::new(),
            conds: HashMap::new(),
            disconnected: false,
            reg_cache: Vec::new(),
            checkpoints: crate::checkpoint::CheckpointStore::default(),
        };
        // Recover any breakpoints a crashed predecessor left planted.
        let _ = target.breakpoints.recover(&target.client);
        self.targets.push(target);
        let id = self.targets.len() - 1;
        if self.trace.is_on() {
            let t = &self.targets[id];
            self.trace.emit(
                Layer::Dbg,
                Severity::Info,
                "attach",
                &[
                    ("target", id.into()),
                    ("arch", format!("{arch}").into()),
                    ("quarantined", t.loader.quarantined().len().into()),
                ],
            );
        }
        self.select_target(id)?;
        self.after_stop(id)?;
        Ok(id)
    }

    /// Spawn a program under a fresh nub and attach to it — the "target
    /// process forked as a child" connection mechanism.
    ///
    /// # Errors
    /// As [`Ldb::attach`].
    pub fn spawn_program(
        &mut self,
        image: &ldb_machine::Image,
        loader_ps: &str,
    ) -> Result<usize, LdbError> {
        let handle = ldb_nub::spawn(image, NubConfig { wait_at_pause: true, ..Default::default() });
        let wire = handle
            .connect_channel()
            .map_err(|e| LdbError::Nub(ldb_nub::NubError::Io(e)))?;
        self.attach(Box::new(wire), loader_ps, Some(handle))
    }

    /// Reattach target `id` over a fresh wire after the old connection
    /// died (or the previous debugger instance crashed): swaps the
    /// client's transport without losing debugger-side state, waits for
    /// the nub to (re-)announce the current stop, re-runs plant recovery
    /// so breakpoints planted before the loss are known again, and
    /// rebuilds the frame view.
    ///
    /// # Errors
    /// Unknown target id; nub failures on the fresh wire.
    pub fn reconnect(&mut self, id: usize, wire: Box<dyn Wire>) -> Result<StopEvent, LdbError> {
        if id >= self.targets.len() {
            return Err(LdbError::msg(format!("no target {id}")));
        }
        self.trace.emit(Layer::Dbg, Severity::Info, "reconnect", &[("target", id.into())]);
        self.targets[id].client.borrow_mut().reconnect(wire);
        let ev = self.targets[id].client.borrow_mut().wait_event()?;
        self.targets[id].disconnected = false;
        let t = &mut self.targets[id];
        let recovered = t.breakpoints.recover(&t.client)?;
        let _ = recovered;
        // Another debugger may have touched anything while we were away:
        // nothing cached before the loss can be trusted.
        if let Some(c) = &self.targets[id].cache {
            c.flush();
        }
        self.handle_event(id, ev)
    }

    /// Refuse a wire-touching mutation while the target is disconnected.
    fn ensure_connected(&self, id: usize) -> Result<(), LdbError> {
        if self.targets[id].disconnected {
            return Err(LdbError::msg(
                "target is disconnected (connection to the nub was lost); \
                 the nub preserves the target's state — reconnect to resume",
            ));
        }
        Ok(())
    }

    /// Whether any attached target has lost its wire (see
    /// [`Ldb::reconnect`] for the recovery). Batch-outcome classification
    /// ([`crate::script::BatchOutcome::classify`]) reads this to tell a
    /// wire-lost session from a merely erroring one.
    pub fn any_disconnected(&self) -> bool {
        self.targets.iter().any(|t| t.disconnected)
    }

    /// Pass a result through, switching the target to the disconnected
    /// state when it reports a lost or unresponsive wire.
    fn guard_wire<T>(&mut self, id: usize, r: Result<T, LdbError>) -> Result<T, LdbError> {
        if let Err(LdbError::Nub(
            ldb_nub::NubError::Io(_) | ldb_nub::NubError::Timeout(_),
        )) = &r
        {
            self.targets[id].disconnected = true;
        }
        r
    }

    /// Switch the session to target `id`: pops the old architecture
    /// dictionary and pushes the new one (machine-dependent names rebind;
    /// "ldb can change architectures dynamically").
    ///
    /// # Errors
    /// Unknown target id.
    pub fn select_target(&mut self, id: usize) -> Result<(), LdbError> {
        if id >= self.targets.len() {
            return Err(LdbError::msg(format!("no target {id}")));
        }
        self.pop_target_dicts();
        self.interp.push_dict(Rc::clone(&self.targets[id].arch_dict));
        self.interp.push_dict(Rc::clone(&self.targets[id].unit_dict));
        self.dicts_pushed = 2;
        self.cur = Some(id);
        self.sync_ctx(id);
        Ok(())
    }

    fn pop_target_dicts(&mut self) {
        for _ in 0..self.dicts_pushed {
            let _ = self.interp.pop_dict();
        }
        self.dicts_pushed = 0;
    }

    /// The current target id.
    pub fn current(&self) -> Option<usize> {
        self.cur
    }

    /// Access a target.
    pub fn target(&self, id: usize) -> &Target {
        &self.targets[id]
    }

    /// Number of attached targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    fn cur_id(&self) -> Result<usize, LdbError> {
        self.cur.ok_or_else(|| LdbError::msg("no target selected"))
    }

    fn sync_ctx(&mut self, id: usize) {
        let t = &self.targets[id];
        let mut c = self.ctx.borrow_mut();
        c.target_nonce = id;
        c.anchors = t.loader.anchors.iter().map(|(k, v)| (k.clone(), *v)).collect();
        c.mem = Some(match t.frames.get(t.cur_frame) {
            Some(f) => f.mem.clone(),
            None => Rc::new(JoinedMemory::new().fallback(t.wire.clone())),
        });
    }

    /// Run every pending lazily-loaded symbol-table module of target
    /// `id` (see [`Ldb::attach_compiled_with_config`]). Definitions land
    /// in the target's unit dictionary under the same sandbox discipline
    /// as at attach time; failures quarantine the module (visible in
    /// `info modules`, recoverable via `reload`).
    fn force_all_pending(&mut self, id: usize) {
        let loader = Rc::clone(&self.targets[id].loader);
        if !loader.has_pending() {
            return;
        }
        let unit_dict = Rc::clone(&self.targets[id].unit_dict);
        self.interp.push_dict(unit_dict);
        let _ = loader.force_pending(&mut self.interp, self.budgets.load);
        let _ = self.interp.pop_dict();
    }

    /// Run pending modules until one defines procedure `name` (or the
    /// queue drains). Keeps single-procedure operations (`b f`,
    /// `stop f.addr`) from paying for every module in the program.
    fn force_pending_for(&mut self, id: usize, name: &str) {
        let loader = Rc::clone(&self.targets[id].loader);
        if !loader.has_pending() {
            return;
        }
        let unit_dict = Rc::clone(&self.targets[id].unit_dict);
        self.interp.push_dict(unit_dict);
        let _ = loader.force_pending_for_name(&mut self.interp, self.budgets.load, name);
        let _ = self.interp.pop_dict();
    }

    /// Rebuild the frame list after a stop. The walk is guarded (depth
    /// cap, cycle detection, per-arch sanity checks): it always
    /// terminates, and the typed reason it stopped lands in
    /// [`Target::walk_stop`] for `bt` to render.
    fn after_stop(&mut self, id: usize) -> Result<(), LdbError> {
        // Any stop past the startup pause / attach announcement is about
        // to be walked and described, and both need symbol-table entries
        // (frame metadata, procedure names) — so pending lazily-loaded
        // modules must materialize before the walk. The initial pause
        // stays lazy: that is what makes connect headers-only.
        if let Some(stop) = self.targets[id].stop {
            if !matches!(stop.sig, Sig::Pause | Sig::Attach) {
                self.force_all_pending(id);
            }
        }
        let (frames, stop_reason) = {
            let t = &self.targets[id];
            let Some(stop) = t.stop else {
                return Ok(());
            };
            let walker = frame_walker(t.arch);
            let wctx = WalkCtx {
                wire: t.wire.clone(),
                context: stop.context,
                data: t.data,
                loader: &t.loader,
            };
            walk_stack(walker, &wctx)
        };
        if self.trace.is_on() && (!frames.is_empty() || !stop_reason.is_clean()) {
            let mut fields: Vec<(&'static str, ldb_trace::Value)> =
                vec![("target", id.into()), ("depth", frames.len().into())];
            if !stop_reason.is_clean() {
                fields.push(("stop", stop_reason.to_string().into()));
            }
            let sev = if stop_reason.is_clean() { Severity::Debug } else { Severity::Warn };
            self.trace.emit(Layer::Dbg, sev, "frames", &fields);
        }
        if !stop_reason.is_clean() {
            self.health.walks_truncated += 1;
            if matches!(stop_reason, WalkStop::Cycle { .. }) {
                self.health.walk_cycles += 1;
            }
        }
        let t = &mut self.targets[id];
        t.walk_stop = stop_reason;
        if !frames.is_empty() {
            t.frames = frames;
            t.cur_frame = 0;
        }
        // An empty walk means the wire died (or lied) before the top frame
        // could be read (a real stop always yields at least one frame):
        // keep the view of the last coherent stop so cached queries still
        // answer; `walk_stop` records why the fresh walk produced nothing.
        self.sync_ctx(id);
        Ok(())
    }

    // ----- breakpoints and execution -----

    /// Plant a breakpoint at stopping point `index` of procedure `func`.
    ///
    /// # Errors
    /// Unknown procedure, missing stopping point, nub failures.
    pub fn break_at(&mut self, func: &str, index: usize) -> Result<u32, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        self.force_pending_for(id, func);
        let entry = self.targets[id]
            .loader
            .proc_entry_by_name(func)
            .ok_or_else(|| match self.targets[id].loader.quarantine_note() {
                Some(note) => LdbError::msg(format!("no procedure `{func}` ({note})")),
                None => LdbError::msg(format!("no procedure `{func}`")),
            })?;
        let addr = symtab::stop_addr(&mut self.interp, &entry, index)?;
        let t = &mut self.targets[id];
        t.breakpoints.plant(&t.client, addr)?;
        t.invalidate_code_cache();
        self.trace.emit(
            Layer::Dbg,
            Severity::Info,
            "plant",
            &[("target", id.into()), ("addr", addr.into())],
        );
        Ok(addr)
    }

    /// Plant a breakpoint at the first stopping point on `line`.
    ///
    /// # Errors
    /// No stopping point on the line; nub failures.
    pub fn break_at_line(&mut self, line: u32) -> Result<u32, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        // Line lookups scan every procedure's sourcemap, so all pending
        // modules must be in.
        self.force_all_pending(id);
        let loader = Rc::clone(&self.targets[id].loader);
        let stops = symtab::stops_at_line(&mut self.interp, &loader, line)?;
        let Some((entry, index)) = stops.first().cloned() else {
            return Err(LdbError::msg(format!("no stopping point on line {line}")));
        };
        let addr = symtab::stop_addr(&mut self.interp, &entry, index)?;
        let t = &mut self.targets[id];
        t.breakpoints.plant(&t.client, addr)?;
        t.invalidate_code_cache();
        self.trace.emit(
            Layer::Dbg,
            Severity::Info,
            "plant",
            &[("target", id.into()), ("addr", addr.into())],
        );
        Ok(addr)
    }

    /// Plant a breakpoint at an arbitrary code address using the
    /// single-step scheme — works on code compiled *without* `-g` no-ops.
    ///
    /// # Errors
    /// Nub failures.
    pub fn break_at_pc(&mut self, addr: u32) -> Result<(), LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let t = &mut self.targets[id];
        t.breakpoints.plant_anywhere(&t.client, addr)?;
        t.invalidate_code_cache();
        self.trace.emit(
            Layer::Dbg,
            Severity::Info,
            "plant",
            &[("target", id.into()), ("addr", addr.into())],
        );
        Ok(())
    }

    /// Single-step one target instruction (requires the nub's step
    /// extension). Returns the resulting stop event.
    ///
    /// # Errors
    /// Nub failures.
    pub fn step_insn(&mut self) -> Result<StopEvent, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.step_insn_inner(id);
        self.guard_wire(id, r)
    }

    fn step_insn_inner(&mut self, id: usize) -> Result<StopEvent, LdbError> {
        self.prepare_resume(id)?;
        let ev = self.targets[id].client.borrow_mut().step_and_wait()?;
        self.handle_event(id, ev)
    }

    /// Plant a breakpoint at the first stopping point on `line` of
    /// `file`, resolved through the sourcemap (multi-unit programs have
    /// several files).
    ///
    /// # Errors
    /// No stopping point there; nub failures.
    pub fn break_at_file_line(&mut self, file: &str, line: u32) -> Result<u32, LdbError> {
        let id = self.cur_id()?;
        self.force_all_pending(id);
        let loader = Rc::clone(&self.targets[id].loader);
        let stops = symtab::stops_at_file_line(&mut self.interp, &loader, file, line)?;
        let Some((entry, index)) = stops.first().cloned() else {
            return Err(LdbError::msg(format!("no stopping point at {file}:{line}")));
        };
        let addr = symtab::stop_addr(&mut self.interp, &entry, index)?;
        let t = &mut self.targets[id];
        t.breakpoints.plant(&t.client, addr)?;
        t.invalidate_code_cache();
        self.trace.emit(
            Layer::Dbg,
            Severity::Info,
            "plant",
            &[("target", id.into()), ("addr", addr.into())],
        );
        Ok(addr)
    }

    /// Remove the breakpoint at `addr`.
    ///
    /// # Errors
    /// Nub failures.
    pub fn clear_breakpoint(&mut self, addr: u32) -> Result<(), LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let t = &mut self.targets[id];
        t.conds.remove(&addr);
        t.breakpoints.remove(&t.client, addr)?;
        t.invalidate_code_cache();
        self.trace.emit(
            Layer::Dbg,
            Severity::Info,
            "unplant",
            &[("target", id.into()), ("addr", addr.into())],
        );
        Ok(())
    }

    /// Continue the current target until the next stop.
    ///
    /// # Errors
    /// Nub failures.
    pub fn cont(&mut self) -> Result<StopEvent, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.cont_inner(id);
        self.guard_wire(id, r)
    }

    fn cont_inner(&mut self, id: usize) -> Result<StopEvent, LdbError> {
        let Some(every) = self.checkpoint_every else {
            self.prepare_resume(id)?;
            let ev = self.targets[id].client.borrow_mut().continue_and_wait()?;
            return self.handle_event(id, ev);
        };
        // Checkpointed continue: record the resume point (so reverse
        // execution can come back to this very stop), then run in
        // `every`-step legs, checkpointing at each quiet leg boundary.
        let every = every.max(1);
        self.take_checkpoint(id)?;
        loop {
            self.prepare_resume(id)?;
            let ev = self.targets[id].client.borrow_mut().step_n_and_wait(every)?;
            match ev {
                // `cont` never sends a single-step, so a `Step` stop here
                // is exactly the leg budget running out: checkpoint the
                // quiet state and keep running.
                NubEvent::Stopped { sig: Sig::Step, code, context } => {
                    self.targets[id].invalidate_data_cache();
                    self.targets[id].stop = Some(Stop { sig: Sig::Step, code, context });
                    self.take_checkpoint(id)?;
                }
                other => return self.handle_event(id, other),
            }
        }
    }

    // ----- time travel: checkpoints and reverse execution -----

    /// Set the periodic-checkpoint interval for `cont` (`--checkpoint-every
    /// N`): `Some(n)` makes every continue run in `n`-step legs with a
    /// checkpoint at each boundary; `None` (the default) restores the
    /// plain run path, which pays nothing.
    pub fn set_checkpoint_every(&mut self, every: Option<u64>) {
        self.checkpoint_every = every;
    }

    /// The configured periodic-checkpoint interval.
    #[must_use]
    pub fn checkpoint_every(&self) -> Option<u64> {
        self.checkpoint_every
    }

    /// Capture the current target's full state into its checkpoint ring
    /// (the `checkpoint` command). Returns the retired-instruction count
    /// the checkpoint is keyed by.
    ///
    /// # Errors
    /// No stopped target; nub failures.
    pub fn checkpoint_now(&mut self) -> Result<u64, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.take_checkpoint(id);
        self.guard_wire(id, r)
    }

    /// Per-entry checkpoint rows of the current target, oldest first:
    /// `(steps, raw bytes, compressed bytes)` (the `info checkpoints`
    /// command).
    ///
    /// # Errors
    /// No current target.
    pub fn checkpoint_rows(&self) -> Result<Vec<(u64, usize, usize)>, LdbError> {
        let id = self.cur_id()?;
        Ok(self.targets[id].checkpoints.rows())
    }

    /// Aggregate checkpoint statistics of the current target.
    ///
    /// # Errors
    /// No current target.
    pub fn checkpoint_stats(&self) -> Result<crate::checkpoint::CheckpointStats, LdbError> {
        let id = self.cur_id()?;
        Ok(self.targets[id].checkpoints.stats())
    }

    /// Retired-instruction count of the current target (its position on
    /// the time axis reverse execution rewinds along).
    ///
    /// # Errors
    /// No connected target; nub failures.
    pub fn steps_retired(&mut self) -> Result<u64, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.targets[id]
            .client
            .borrow_mut()
            .query_steps()
            .map_err(LdbError::from);
        self.guard_wire(id, r)
    }

    /// The current target's serialized machine state (registers plus
    /// dirty pages, planted traps lifted) — the canonical image the
    /// differential harness compares for bit-identity: two equal images
    /// mean equal CPU state, equal memory, and equal step counts.
    ///
    /// # Errors
    /// No connected target; nub failures.
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.targets[id]
            .client
            .borrow_mut()
            .take_snapshot()
            .map_err(LdbError::from);
        self.guard_wire(id, r)
    }

    /// Capture target `id`'s state into its checkpoint ring, keyed by the
    /// retired-step count and stamped with the stop signal and the
    /// breakpoint-set generation (both govern how replay resumes from it).
    fn take_checkpoint(&mut self, id: usize) -> Result<u64, LdbError> {
        let stop = self.targets[id]
            .stop
            .ok_or_else(|| LdbError::msg("target is not stopped (running or exited)"))?;
        let (image, steps) = {
            let mut c = self.targets[id].client.borrow_mut();
            let image = c.take_snapshot()?;
            let steps = c.query_steps()?;
            (image, steps)
        };
        let gen = self.targets[id].breakpoints.generation();
        self.targets[id].checkpoints.push(steps, stop.sig.number(), stop.code, gen, &image);
        self.health.checkpoints_taken += 1;
        if self.trace.is_on() {
            self.trace.emit(
                Layer::Dbg,
                Severity::Info,
                "checkpoint",
                &[("target", id.into()), ("steps", steps.into()), ("bytes", image.len().into())],
            );
        }
        Ok(steps)
    }

    /// Rewind one retired instruction: restore the nearest checkpoint and
    /// deterministically re-execute forward to the instruction before the
    /// current one (`reverse-step`).
    ///
    /// # Errors
    /// `reverse truncated: …` when no usable checkpoint reaches back far
    /// enough; nub failures.
    pub fn reverse_step_insn(&mut self) -> Result<StopEvent, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.reverse_step_inner(id);
        self.guard_wire(id, r)
    }

    fn reverse_step_inner(&mut self, id: usize) -> Result<StopEvent, LdbError> {
        let now = self.targets[id].client.borrow_mut().query_steps()?;
        if now == 0 {
            return Err(LdbError::msg(
                "reverse truncated: already at the start of execution",
            ));
        }
        self.rewind_to(id, now - 1)?;
        self.announce_rewound(id)
    }

    /// Rewind to the most recent breakpoint stop before the current one,
    /// or to the oldest reachable checkpoint when no breakpoint fired in
    /// recorded history (`reverse-continue`).
    ///
    /// # Errors
    /// As [`Ldb::reverse_step_insn`].
    pub fn reverse_cont(&mut self) -> Result<StopEvent, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.reverse_cont_inner(id);
        self.guard_wire(id, r)
    }

    fn reverse_cont_inner(&mut self, id: usize) -> Result<StopEvent, LdbError> {
        let now = self.targets[id].client.borrow_mut().query_steps()?;
        if now == 0 {
            return Err(LdbError::msg(
                "reverse truncated: already at the start of execution",
            ));
        }
        // Scan pass: replay to just before the current stop, remembering
        // the last breakpoint trap crossed on the way.
        let (ckpt, last_trap) = self.rewind_to(id, now - 1)?;
        let land = last_trap.unwrap_or(ckpt);
        if land != now - 1 {
            // Landing pass: fresh restore, replay exactly to the landing
            // point (the scan already proved the interval deterministic).
            self.rewind_to(id, land)?;
        }
        self.announce_rewound(id)
    }

    /// Rewind to the previous source line of the current procedure (or an
    /// enclosing one), skipping backwards over completed calls — the
    /// reverse of `next` (`reverse-next`).
    ///
    /// # Errors
    /// As [`Ldb::reverse_step_insn`].
    pub fn reverse_next(&mut self) -> Result<StopEvent, LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let r = self.reverse_next_inner(id);
        self.guard_wire(id, r)
    }

    fn reverse_next_inner(&mut self, id: usize) -> Result<StopEvent, LdbError> {
        let start_pc = self.read_saved_pc(id)?;
        let (start_func, start_line) = self.describe_pc(id, start_pc);
        let start_vfp = self.targets[id].frames.first().map(|f| f.vfp);
        // One source line is a handful of instructions; the cap only
        // guards against degenerate line maps.
        const CAP: u32 = 4096;
        for _ in 0..CAP {
            let ev = self.reverse_step_inner(id)?;
            match &ev {
                // Rewound onto a breakpoint hit, the start of recorded
                // history, or a terminal state: surface it as-is.
                StopEvent::Breakpoint { .. }
                | StopEvent::Paused
                | StopEvent::Attached
                | StopEvent::Exited(_)
                | StopEvent::Fault { .. } => return Ok(ev),
                StopEvent::Stepped { func, line, .. }
                | StopEvent::Watchpoint { func, line, .. } => {
                    if func == &start_func && *line == start_line {
                        continue;
                    }
                    // The stack grows down: a topmost frame *below* the
                    // starting vfp is inside a call the starting line
                    // made — keep rewinding until the call unwinds.
                    let vfp = self.targets[id].frames.first().map(|f| f.vfp);
                    if let (Some(start), Some(cur)) = (start_vfp, vfp) {
                        if cur < start {
                            continue;
                        }
                    }
                    return Ok(ev);
                }
            }
        }
        Err(LdbError::msg(format!(
            "reverse truncated: no line boundary within {CAP} reverse steps"
        )))
    }

    /// Restore the newest usable checkpoint at or before `target` and
    /// deterministically re-execute forward to exactly `target` retired
    /// instructions, resuming past intermediate trap stops with the same
    /// choreography the original run used. Returns the checkpoint's step
    /// count and the position of the last breakpoint trap observed at or
    /// before `target` (including a checkpoint captured at a fired trap).
    fn rewind_to(&mut self, id: usize, target: u64) -> Result<(u64, Option<u64>), LdbError> {
        let gen = self.targets[id].breakpoints.generation();
        let (at, sig, code, image) = self.targets[id]
            .checkpoints
            .best_at_or_before(target, gen)
            .map_err(|e| LdbError::msg(format!("reverse truncated: {e}")))?;
        let context = self.targets[id]
            .stop
            .map(|s| s.context)
            .ok_or_else(|| LdbError::msg("target is not stopped (running or exited)"))?;
        self.targets[id].client.borrow_mut().load_snapshot(&image)?;
        // The restore rewrote memory wholesale behind both caches.
        self.targets[id].invalidate_data_cache();
        self.targets[id].invalidate_code_cache();
        // Replay must resume from the restored state exactly as the
        // original resume did, so the stop takes the signal the
        // checkpoint was captured under.
        let sig = Sig::from_number(sig).unwrap_or(Sig::Step);
        self.targets[id].stop = Some(Stop { sig, code, context });
        self.health.restores += 1;
        if self.trace.is_on() {
            self.trace.emit(
                Layer::Dbg,
                Severity::Info,
                "restore",
                &[("target", id.into()), ("steps", at.into()), ("to", target.into())],
            );
        }
        let mut last_trap = if sig == Sig::Trap { Some(at) } else { None };
        loop {
            let pos = self.targets[id].client.borrow_mut().query_steps()?;
            if pos == target {
                return Ok((at, last_trap));
            }
            if pos > target {
                return Err(LdbError::msg(format!(
                    "reverse replay overshot: at step {pos}, wanted {target}"
                )));
            }
            self.prepare_resume(id)?;
            // The single-step choreography retires instructions itself;
            // re-measure before budgeting the next leg.
            let pos = self.targets[id].client.borrow_mut().query_steps()?;
            if pos == target {
                return Ok((at, last_trap));
            }
            if pos > target {
                return Err(LdbError::msg(format!(
                    "reverse replay overshot: at step {pos}, wanted {target}"
                )));
            }
            let ev = self.targets[id].client.borrow_mut().step_n_and_wait(target - pos)?;
            match ev {
                NubEvent::Exited(c) => {
                    return Err(LdbError::msg(format!(
                        "reverse replay diverged: target exited ({c})"
                    )));
                }
                NubEvent::Stopped { sig, code, context } => {
                    self.targets[id].invalidate_data_cache();
                    self.targets[id].stop = Some(Stop { sig, code, context });
                    match sig {
                        Sig::Trap => {
                            let p = self.targets[id].client.borrow_mut().query_steps()?;
                            last_trap = Some(p);
                        }
                        Sig::Step => {}
                        other => {
                            return Err(LdbError::msg(format!(
                                "reverse replay diverged: unexpected signal {} mid-replay",
                                other.number()
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Run the full stop pipeline (cache invalidation, stack walk, trace
    /// record, description) for the state reverse execution landed on.
    fn announce_rewound(&mut self, id: usize) -> Result<StopEvent, LdbError> {
        let stop = self.targets[id]
            .stop
            .ok_or_else(|| LdbError::msg("target is not stopped (running or exited)"))?;
        self.handle_event(
            id,
            NubEvent::Stopped { sig: stop.sig, code: stop.code, context: stop.context },
        )
    }

    /// Attach a condition to the breakpoint at `addr` (or clear it with
    /// `None`): `cont_watch`, `step_over`, and `finish` resume silently
    /// past the breakpoint while the expression evaluates to zero.
    /// Conditions are evaluated by the expression server in the scope of
    /// the stop, so they may reference locals.
    ///
    /// # Errors
    /// No breakpoint planted at `addr`.
    pub fn set_break_condition(
        &mut self,
        addr: u32,
        cond: Option<String>,
    ) -> Result<(), LdbError> {
        let id = self.cur_id()?;
        if !self.targets[id].breakpoints.is_planted(addr) {
            return Err(LdbError::msg(format!("no breakpoint at {addr:#x}")));
        }
        match cond {
            Some(c) => {
                self.targets[id].conds.insert(addr, c);
            }
            None => {
                self.targets[id].conds.remove(&addr);
            }
        }
        Ok(())
    }

    /// Whether the breakpoint stop at `addr` should be shown: true when
    /// it has no condition or its condition is numerically non-zero.
    fn breakpoint_should_stop(&mut self, id: usize, addr: u32) -> Result<bool, LdbError> {
        let Some(cond) = self.targets[id].conds.get(&addr).cloned() else {
            return Ok(true);
        };
        let v = self.eval(&cond)?;
        Ok(!v.parse::<f64>().is_ok_and(|x| x == 0.0))
    }

    /// Arm a software watchpoint on `name`: the target is then driven by
    /// single-stepping (the nub's step extension, paper Sec. 7.1) and
    /// stops when the printed value changes. Frame-relative variables are
    /// bound to the invocation they were armed in and are only compared
    /// while that frame is innermost. Returns the current printed value.
    ///
    /// # Errors
    /// Unknown name; no stopped target; nub failures.
    pub fn watch_var(&mut self, name: &str) -> Result<String, LdbError> {
        let entry = self.resolve(name)?;
        let last = self.print_entry(&entry)?;
        let id = self.cur_id()?;
        let loc = self.entry_location(&entry)?;
        let scope = match loc {
            Location::Addr { space: 'd', .. } | Location::Immediate(_) => None,
            _ => {
                let t = &self.targets[id];
                let f = t
                    .frames
                    .get(t.cur_frame)
                    .ok_or_else(|| LdbError::msg("target is not stopped"))?;
                let (func, _) = self.describe_pc(id, f.pc);
                let vfp = self.targets[id].frames[self.targets[id].cur_frame].vfp;
                Some((func, vfp))
            }
        };
        let t = &mut self.targets[id];
        t.watches.retain(|w| w.name != name);
        t.watches.push(Watch { name: name.to_string(), entry, scope, last: last.clone() });
        Ok(last)
    }

    /// Disarm the watchpoint on `name`.
    ///
    /// # Errors
    /// No such watchpoint; no current target.
    pub fn clear_watch(&mut self, name: &str) -> Result<(), LdbError> {
        let id = self.cur_id()?;
        let before = self.targets[id].watches.len();
        self.targets[id].watches.retain(|w| w.name != name);
        if self.targets[id].watches.len() == before {
            return Err(LdbError::msg(format!("no watchpoint on `{name}`")));
        }
        Ok(())
    }

    /// The current target's armed watchpoints as (name, last value).
    pub fn watchpoints(&self) -> Vec<(String, String)> {
        match self.cur_id() {
            Ok(id) => self.targets[id]
                .watches
                .iter()
                .map(|w| (w.name.clone(), w.last.clone()))
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Continue the current target, honoring watchpoints: with any armed,
    /// the target is single-stepped and each step compares the watched
    /// values; without, this is [`Ldb::cont`].
    ///
    /// # Errors
    /// Nub failures; the step budget (16M instructions) exhausted.
    pub fn cont_watch(&mut self) -> Result<StopEvent, LdbError> {
        let id = self.cur_id()?;
        if self.targets[id].watches.is_empty() {
            loop {
                let ev = self.cont()?;
                if let StopEvent::Breakpoint { addr, .. } = &ev {
                    if !self.breakpoint_should_stop(id, *addr)? {
                        continue;
                    }
                }
                return Ok(ev);
            }
        }
        const MAX_STEPS: usize = 16_000_000;
        for _ in 0..MAX_STEPS {
            let ev = self.step_insn()?;
            match ev {
                StopEvent::Stepped { func, line, addr } => {
                    // Stepping onto a planted breakpoint is a hit. The
                    // machine state is exactly a fired trap's — pc at the
                    // plant, original instruction pending — so record the
                    // stop as one; the next resume then runs the usual
                    // skip/step choreography instead of letting the trap
                    // fire a second report.
                    if self.targets[id].breakpoints.is_planted(addr)
                        && self.breakpoint_should_stop(id, addr)?
                    {
                        if let Some(stop) = self.targets[id].stop.as_mut() {
                            stop.sig = Sig::Trap;
                        }
                        return Ok(StopEvent::Breakpoint { func, line, addr });
                    }
                    if let Some((name, old, new)) = self.check_watches(id, &func)? {
                        return Ok(StopEvent::Watchpoint { name, old, new, func, line, addr });
                    }
                }
                other => return Ok(other),
            }
        }
        Err(LdbError::msg("watchpoint run exceeded the step budget"))
    }

    /// Compare every in-scope watch against its last value; on the first
    /// change, record the new value and report (name, old, new).
    fn check_watches(&mut self, id: usize, func: &str) -> Result<Option<(String, String, String)>, LdbError> {
        let top_vfp = self.targets[id].frames.first().map(|f| f.vfp);
        for i in 0..self.targets[id].watches.len() {
            let in_scope = match &self.targets[id].watches[i].scope {
                None => true,
                Some((p, vfp)) => func == p && top_vfp == Some(*vfp),
            };
            if !in_scope {
                continue;
            }
            let entry = self.targets[id].watches[i].entry.clone();
            // A transiently unreadable value (e.g. mid-prologue) is not a
            // change.
            let Ok(now) = self.print_entry(&entry) else { continue };
            let w = &mut self.targets[id].watches[i];
            if now != w.last {
                let old = std::mem::replace(&mut w.last, now.clone());
                return Ok(Some((w.name.clone(), old, now)));
            }
        }
        Ok(None)
    }

    /// The [`Location`] a symbol entry resolves to in the selected frame.
    fn entry_location(&mut self, entry: &Object) -> Result<Location, LdbError> {
        let id = self.cur_id()?;
        let t = &self.targets[id];
        let f = t
            .frames
            .get(t.cur_frame)
            .ok_or_else(|| LdbError::msg("target is not stopped"))?;
        let mem = f.mem.clone();
        self.interp.push(Object::host(Rc::new(MemHandle(mem))));
        self.interp.push(entry.clone());
        self.interp.run_str("SymLoc")?;
        Ok(self.interp.pop()?.as_location()?)
    }

    /// Run to the next stopping point in the *same invocation* of the
    /// current procedure, stepping over calls ("next"). Recursive
    /// re-entries of the procedure are skipped by comparing virtual frame
    /// pointers; a return to the caller also stops. User breakpoints hit
    /// along the way stop as usual.
    ///
    /// # Errors
    /// No stopped target; nub failures.
    pub fn step_over(&mut self) -> Result<StopEvent, LdbError> {
        let id = self.cur_id()?;
        self.targets[id].cur_frame = 0;
        let pc0 = self.read_saved_pc(id)?;
        let my_vfp = self.targets[id].frames.first().map(|f| f.vfp);
        let parent = self.targets[id].frames.get(1).map(|f| (f.pc, f.vfp));
        let (entry, _) = self.scope()?;
        // Temporary plants: every stopping point of the procedure. They
        // are no-ops, but the temps use the single-step scheme anyway —
        // stepping the no-op retires the same one step the pristine
        // program would, so a transient temp never perturbs the step
        // clock or orphans time-travel checkpoints.
        let n = symtab::loci_of(&mut self.interp, &entry)?.len();
        let mut temps = Vec::new();
        for i in 0..n {
            let a = symtab::stop_addr(&mut self.interp, &entry, i)?;
            if a != pc0 && !self.targets[id].breakpoints.is_planted(a) {
                let t = &mut self.targets[id];
                t.breakpoints.plant_anywhere(&t.client, a)?;
                temps.push(a);
            }
        }
        // ... plus the caller's resume site, which is a real instruction
        // and needs the single-step scheme.
        if let Some((ret_pc, _)) = parent {
            if !self.targets[id].breakpoints.is_planted(ret_pc) {
                let t = &mut self.targets[id];
                t.breakpoints.plant_anywhere(&t.client, ret_pc)?;
                temps.push(ret_pc);
            }
        }
        self.targets[id].invalidate_code_cache();
        let result = self.run_to_frame(id, &temps, my_vfp, parent);
        self.cleanup_temps(id, &temps, &result)?;
        result
    }

    /// Run until the selected frame's procedure returns to its caller
    /// ("finish"). Returns the stop event and the callee's integer return
    /// value.
    ///
    /// # Errors
    /// No caller frame (outermost); nub failures.
    pub fn finish(&mut self) -> Result<(StopEvent, Option<i64>), LdbError> {
        let id = self.cur_id()?;
        let sel = self.targets[id].cur_frame;
        let parent = self.targets[id]
            .frames
            .get(sel + 1)
            .map(|f| (f.pc, f.vfp))
            .ok_or_else(|| LdbError::msg("the selected frame has no caller"))?;
        let mut temps = Vec::new();
        if !self.targets[id].breakpoints.is_planted(parent.0) {
            let t = &mut self.targets[id];
            t.breakpoints.plant_anywhere(&t.client, parent.0)?;
            temps.push(parent.0);
        }
        self.targets[id].invalidate_code_cache();
        let result = self.run_to_frame(id, &temps, None, Some(parent));
        self.cleanup_temps(id, &temps, &result)?;
        let ev = result?;
        let rv = match &ev {
            StopEvent::Breakpoint { addr, .. } if *addr == parent.0 => {
                let t = &self.targets[id];
                let stop = t.stop.ok_or_else(|| LdbError::msg("target gone"))?;
                Some(t.client.borrow_mut().fetch(
                    'd',
                    stop.context + t.data.ctx.reg_offset + t.data.rv as u32 * 4,
                    4,
                )? as u32 as i32 as i64)
            }
            _ => None,
        };
        Ok((ev, rv))
    }

    /// Resume repeatedly until a stop that belongs to the right frame:
    /// a temp hit in the armed invocation (`my_vfp`), the caller's resume
    /// site in the caller's frame, any non-temp (user) breakpoint, or a
    /// terminal event.
    fn run_to_frame(
        &mut self,
        id: usize,
        temps: &[u32],
        my_vfp: Option<u32>,
        parent: Option<(u32, u32)>,
    ) -> Result<StopEvent, LdbError> {
        loop {
            let ev = self.cont()?;
            let StopEvent::Breakpoint { addr, .. } = &ev else { return Ok(ev) };
            if !temps.contains(addr) {
                // The user's own breakpoint: honor its condition.
                if self.breakpoint_should_stop(id, *addr)? {
                    return Ok(ev);
                }
                continue;
            }
            let top_vfp = self.targets[id].frames.first().map(|f| f.vfp);
            let wanted = match parent {
                Some((ret_pc, ret_vfp)) if *addr == ret_pc => top_vfp == Some(ret_vfp),
                _ => my_vfp.is_some() && top_vfp == my_vfp,
            };
            if wanted {
                return Ok(ev);
            }
        }
    }

    /// Unplant temporary breakpoints. Runs on the error path too, so a
    /// failed `next`/`finish` never leaks plants; when the target exited
    /// there is nothing to restore into and the records are just dropped.
    fn cleanup_temps(
        &mut self,
        id: usize,
        temps: &[u32],
        outcome: &Result<StopEvent, LdbError>,
    ) -> Result<(), LdbError> {
        let t = &mut self.targets[id];
        if matches!(outcome, Ok(StopEvent::Exited(_))) {
            for a in temps {
                t.breakpoints.forget(*a);
            }
            return Ok(());
        }
        for a in temps {
            if outcome.is_err() {
                // Best effort: don't mask the original error.
                if t.breakpoints.remove(&t.client, *a).is_err() {
                    t.breakpoints.forget(*a);
                }
            } else {
                t.breakpoints.remove(&t.client, *a)?;
            }
        }
        t.invalidate_code_cache();
        // A temp that landed on a stopping-point no-op advanced the
        // breakpoint generation, orphaning every earlier checkpoint —
        // correctly, since the finished interval skipped a no-op the
        // pristine program would execute. When the session is
        // checkpointing at all, re-seed reverse reach at this stop under
        // the current generation (best effort: a failed snapshot must
        // not fail the step).
        if !temps.is_empty()
            && outcome.is_ok()
            && (self.checkpoint_every.is_some() || !self.targets[id].checkpoints.is_empty())
        {
            let _ = self.take_checkpoint(id);
        }
        Ok(())
    }

    /// Call `func` in the target with integer arguments and return the
    /// integer result — the debugger sets up a call frame by the target's
    /// own convention (argument registers and a link register on the RISC
    /// targets; pushed arguments and a pushed return address on the CISC
    /// ones), points the return address at an unmapped sentinel, runs the
    /// target, and catches the fault the return takes. The pre-call
    /// context is saved first and restored afterwards, so the stopped
    /// program is undisturbed.
    ///
    /// # Errors
    /// Unknown procedure; a breakpoint or unrelated fault during the call
    /// (the context is restored before the error returns); nub failures.
    pub fn call_function(&mut self, func: &str, args: &[i64]) -> Result<i64, LdbError> {
        let args: Vec<CallArg> = args.iter().map(|&v| CallArg::Int(v)).collect();
        Ok(self.call_function_typed(func, &args)?.int)
    }

    /// Call `func` and format the meaningful return register, chosen by
    /// the return type recorded in the symbol table's `/decl` pattern
    /// (`double %s()` vs `int %s()`).
    ///
    /// # Errors
    /// As [`Ldb::call_function`].
    pub fn call_and_format(&mut self, func: &str, args: &[CallArg]) -> Result<String, LdbError> {
        let floaty = self.callee_returns_float(func);
        let r = self.call_function_typed(func, args)?;
        Ok(if floaty { crate::psops::fmt_f64(r.float) } else { r.int.to_string() })
    }

    /// Coerce arguments to the parameter types the symbol table records
    /// (`/&argtypes`), checking arity — ints promote to doubles and vice
    /// versa, as a prototyped C call would. Procedures without recorded
    /// parameter types (none in this compiler's output) pass through.
    fn coerce_call_args(
        &mut self,
        id: usize,
        func: &str,
        args: &[CallArg],
    ) -> Result<Vec<CallArg>, LdbError> {
        let Some(entry) = self.targets[id].loader.proc_entry_by_name(func) else {
            return Ok(args.to_vec());
        };
        let Ok(d) = entry.as_dict() else { return Ok(args.to_vec()) };
        let Some(at) = d.borrow().get_name("&argtypes").cloned() else {
            return Ok(args.to_vec());
        };
        let Ok(at) = at.as_array() else { return Ok(args.to_vec()) };
        let types = at.borrow().clone();
        if types.len() != args.len() {
            return Err(LdbError::msg(format!(
                "`{func}` takes {} argument(s), got {}",
                types.len(),
                args.len()
            )));
        }
        let mut out = Vec::with_capacity(args.len());
        for (a, t) in args.iter().zip(&types) {
            let decl = t
                .as_dict()
                .ok()
                .and_then(|d| d.borrow().get_name("decl").cloned())
                .and_then(|o| o.as_string().ok());
            // Single-precision parameters occupy 4 bytes on the stack —
            // a different staging the debugger does not implement.
            if decl.as_deref().is_some_and(|p| p.starts_with("float ")) {
                return Err(LdbError::msg(format!(
                    "`{func}` takes a `float` parameter, which debugger calls \
                     do not support (use a `double` wrapper)"
                )));
            }
            let wants_float = decl.is_some_and(|p| p.starts_with("double "));
            out.push(match (wants_float, a) {
                (true, CallArg::Int(v)) => CallArg::Double(*v as f64),
                (false, CallArg::Double(d)) => CallArg::Int(*d as i64),
                _ => *a,
            });
        }
        Ok(out)
    }

    /// Whether the symbol table says `func` returns a floating value.
    fn callee_returns_float(&mut self, func: &str) -> bool {
        let Ok(id) = self.cur_id() else { return false };
        self.force_pending_for(id, func);
        let Some(entry) = self.targets[id].loader.proc_entry_by_name(func) else {
            return false;
        };
        let Some(ty) = symtab::entry_type(&entry) else { return false };
        let Ok(d) = ty.as_dict() else { return false };
        let decl = d.borrow().get_name("decl").and_then(|o| o.as_string().ok());
        decl.is_some_and(|p| p.starts_with("double ") || p.starts_with("float "))
    }

    /// [`Ldb::call_function`] with mixed integer/double arguments and both
    /// return registers reported.
    ///
    /// # Errors
    /// As [`Ldb::call_function`].
    pub fn call_function_typed(
        &mut self,
        func: &str,
        args: &[CallArg],
    ) -> Result<CallReturn, LdbError> {
        /// Return address no code is ever loaded at: returning to it
        /// faults, which is how the debugger regains control.
        const SENTINEL: u32 = 0x0fff_fff0;
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        // Argument coercion and the return-type probe read the callee's
        // symbol-table entry; force its module in if still pending.
        self.force_pending_for(id, func);
        let entry_pc = {
            let t = &self.targets[id];
            // Externs carry a leading underscore in the loader table.
            t.loader
                .proc_addr(&format!("_{func}"))
                .or_else(|| t.loader.proc_addr(func))
                .ok_or_else(|| LdbError::msg(format!("no procedure `{func}`")))?
        };
        let args = self.coerce_call_args(id, func, args)?;
        let pre_stop = self.targets[id].stop;
        let (ctx_addr, saved) = self.save_context(id)?;
        let result = self.run_call(id, ctx_addr, entry_pc, &args, SENTINEL);
        // Restore the pre-call context whatever happened, then rebuild
        // the frame view from it. A target that exited during the call is
        // gone: nothing to restore, and run_call's error says why.
        let t = &self.targets[id];
        let Some(stop) = t.stop else { return result };
        for (i, word) in saved.iter().enumerate() {
            t.client.borrow_mut().store('d', stop.context + i as u32 * 4, 4, *word)?;
        }
        // The stop state is part of the pre-call context: the sentinel
        // fault must not linger as the announced signal, or the next
        // resume would treat a fired-trap stop as a plain one and let the
        // breakpoint re-fire.
        if let (Some(pre), Some(cur)) = (pre_stop, self.targets[id].stop.as_mut()) {
            cur.sig = pre.sig;
            cur.code = pre.code;
        }
        let t = &self.targets[id];
        // The restore stores went around the cache; drop stale data lines
        // before the frame view is rebuilt from the restored context.
        t.invalidate_data_cache();
        self.after_stop(id)?;
        result
    }

    /// Snapshot the whole context block (pc + registers) as 4-byte words.
    fn save_context(&mut self, id: usize) -> Result<(u32, Vec<u64>), LdbError> {
        let t = &self.targets[id];
        let stop = t.stop.ok_or_else(|| LdbError::msg("target is not stopped (running or exited)"))?;
        let n = t.data.ctx.size.div_ceil(4);
        let mut words = Vec::with_capacity(n as usize);
        for i in 0..n {
            words.push(t.client.borrow_mut().fetch('d', stop.context + i * 4, 4)?);
        }
        Ok((stop.context, words))
    }

    /// Stage the arguments, redirect the pc, and run until the sentinel
    /// return fault. Leaves the target stopped (at the sentinel on
    /// success).
    ///
    /// Argument staging mirrors the compiler back ends exactly: on the
    /// RISC targets integers go to the argument registers while doubles
    /// land in the caller's outgoing area at `sp + slot` (the shared slot
    /// walk of `emit_call`); on the CISC targets everything is pushed
    /// right-to-left and the sentinel plays the return address the call
    /// instruction would have pushed.
    fn run_call(
        &mut self,
        id: usize,
        ctx: u32,
        entry_pc: u32,
        args: &[CallArg],
        sentinel: u32,
    ) -> Result<CallReturn, LdbError> {
        let t = &self.targets[id];
        let data = t.data;
        let regs = data.ctx.reg_offset;
        let reg_addr = |r: u8| ctx + regs + r as u32 * 4;
        let align8 = |v: u32| (v + 7) & !7;
        let mut client = t.client.borrow_mut();
        match call_conv(self.targets[id].arch) {
            CallConv::Risc { arg_regs, ra } => {
                let ints = args.iter().filter(|a| matches!(a, CallArg::Int(_))).count();
                if ints > arg_regs.len() {
                    return Err(LdbError::msg(format!(
                        "at most {} integer arguments on {}",
                        arg_regs.len(),
                        self.targets[id].arch
                    )));
                }
                let sp = client.fetch('d', reg_addr(data.sp), 4)? as u32;
                let mut slot = 0u32;
                let mut int_args = 0usize;
                for a in args {
                    match a {
                        CallArg::Int(v) => {
                            client.store('d', reg_addr(arg_regs[int_args]), 4, *v as u32 as u64)?;
                            int_args += 1;
                            slot += 4;
                        }
                        CallArg::Double(d) => {
                            slot = align8(slot);
                            client.store('d', sp + slot, 8, d.to_bits())?;
                            slot += 8;
                        }
                    }
                }
                client.store('d', reg_addr(ra), 4, sentinel as u64)?;
            }
            CallConv::Cisc => {
                let mut sp = client.fetch('d', reg_addr(data.sp), 4)? as u32;
                for a in args.iter().rev() {
                    match a {
                        CallArg::Int(v) => {
                            sp = sp.wrapping_sub(4);
                            client.store('d', sp, 4, *v as u32 as u64)?;
                        }
                        CallArg::Double(d) => {
                            sp = sp.wrapping_sub(8);
                            client.store('d', sp, 8, d.to_bits())?;
                        }
                    }
                }
                // What the call instruction would have pushed.
                sp = sp.wrapping_sub(4);
                client.store('d', sp, 4, sentinel as u64)?;
                client.store('d', reg_addr(data.sp), 4, sp as u64)?;
            }
        }
        client.store('d', ctx + data.ctx.pc_offset, 4, entry_pc as u64)?;
        drop(client);
        match self.cont()? {
            StopEvent::Fault { code, .. } if code == sentinel => {
                let t = &self.targets[id];
                let stop = t.stop.ok_or_else(|| LdbError::msg("target gone"))?;
                let rv = t.client.borrow_mut().fetch(
                    'd',
                    stop.context + t.data.ctx.reg_offset + t.data.rv as u32 * 4,
                    4,
                )?;
                let fbits = t.client.borrow_mut().fetch(
                    'd',
                    stop.context + t.data.ctx.freg_offset,
                    8,
                )?;
                Ok(CallReturn {
                    int: rv as u32 as i32 as i64,
                    float: f64::from_bits(fbits),
                })
            }
            StopEvent::Exited(c) => {
                Err(LdbError::msg(format!("target exited ({c}) during the call")))
            }
            other => Err(LdbError::msg(format!(
                "call interrupted before returning: {other:?}"
            ))),
        }
    }

    /// Get past a planted breakpoint at the current pc, if any: no-op
    /// breakpoints are skipped by advancing the saved pc; single-step
    /// breakpoints restore the original instruction, step it with the
    /// nub's step extension, and re-plant the trap.
    fn prepare_resume(&mut self, id: usize) -> Result<(), LdbError> {
        let Some(stop) = self.targets[id].stop else { return Ok(()) };
        let pc = self.read_saved_pc(id)?;
        // The skip/single-step choreography is for a trap that *fired* (it
        // already consumed its fetch): only a `Sig::Trap` stop means that.
        // A single-step or checkpoint-leg pause can land *on* a planted
        // address with the trap not yet executed — resuming plainly lets
        // it fire, which both reports the breakpoint and keeps replay
        // step-for-step identical to the original run.
        let kind = if stop.sig == Sig::Trap {
            self.targets[id].breakpoints.resume_kind(pc)
        } else {
            None
        };
        let t = &self.targets[id];
        match kind {
            None => {}
            Some(crate::breakpoint::ResumeKind::SkipNop { next_pc }) => {
                t.client.borrow_mut().store(
                    'd',
                    stop.context + t.data.ctx.pc_offset,
                    4,
                    next_pc as u64,
                )?;
            }
            Some(crate::breakpoint::ResumeKind::SingleStep { original }) => {
                // Restore, step one instruction, re-plant.
                let unit = t.data.insn_unit;
                t.client.borrow_mut().store('c', pc, unit, original)?;
                let ev = t.client.borrow_mut().step_and_wait()?;
                match ev {
                    NubEvent::Stopped { .. } => {
                        t.client
                            .borrow_mut()
                            .plant(pc, unit, t.data.break_pattern as u64)?;
                    }
                    NubEvent::Exited(_) => {}
                }
                // The restore/replant patched code behind the cache's back.
                t.invalidate_code_cache();
            }
        }
        // Resume paths store the saved pc (and may have stepped the
        // target) through the bare client: nothing cached from data
        // memory survives the boundary.
        self.targets[id].invalidate_data_cache();
        Ok(())
    }

    fn handle_event(&mut self, id: usize, ev: NubEvent) -> Result<StopEvent, LdbError> {
        let out = self.handle_event_inner(id, ev);
        if self.trace.is_on() {
            if let Ok(ev) = &out {
                let mut fields: Vec<(&'static str, ldb_trace::Value)> =
                    vec![("target", id.into()), ("kind", ev.kind_name().into())];
                match ev {
                    StopEvent::Breakpoint { func, line, addr }
                    | StopEvent::Stepped { func, line, addr } => {
                        fields.push(("func", func.clone().into()));
                        fields.push(("line", (*line).into()));
                        fields.push(("addr", (*addr).into()));
                    }
                    StopEvent::Watchpoint { name, func, line, addr, .. } => {
                        fields.push(("name", name.clone().into()));
                        fields.push(("func", func.clone().into()));
                        fields.push(("line", (*line).into()));
                        fields.push(("addr", (*addr).into()));
                    }
                    StopEvent::Fault { sig, code } => {
                        fields.push(("sig", sig.clone().into()));
                        fields.push(("code", (*code).into()));
                    }
                    StopEvent::Exited(status) => fields.push(("status", (*status).into())),
                    StopEvent::Paused | StopEvent::Attached => {}
                }
                self.trace.emit(Layer::Dbg, Severity::Info, "stop", &fields);
            }
        }
        out
    }

    fn handle_event_inner(&mut self, id: usize, ev: NubEvent) -> Result<StopEvent, LdbError> {
        match ev {
            NubEvent::Exited(c) => {
                self.targets[id].stop = None;
                self.targets[id].frames.clear();
                Ok(StopEvent::Exited(c))
            }
            NubEvent::Stopped { sig, code, context } => {
                // The target ran: every cached data line is stale. Code
                // lines survive — the target cannot write its own text,
                // and the debugger's own patches invalidate at the plant
                // sites.
                self.targets[id].invalidate_data_cache();
                self.targets[id].stop = Some(Stop { sig, code, context });
                self.after_stop(id)?;
                Ok(match sig {
                    Sig::Pause => StopEvent::Paused,
                    Sig::Attach => StopEvent::Attached,
                    Sig::Trap => {
                        let pc = self.read_saved_pc(id)?;
                        let (func, line) = self.describe_pc(id, pc);
                        StopEvent::Breakpoint { func, line, addr: pc }
                    }
                    Sig::Step => {
                        let pc = self.read_saved_pc(id)?;
                        let (func, line) = self.describe_pc(id, pc);
                        StopEvent::Stepped { func, line, addr: pc }
                    }
                    Sig::Segv => StopEvent::Fault { sig: "SIGSEGV".into(), code },
                    Sig::Fpe => StopEvent::Fault { sig: "SIGFPE".into(), code },
                    Sig::Ill => StopEvent::Fault { sig: "SIGILL".into(), code },
                })
            }
        }
    }

    /// Overwrite the stopped target's saved pc (it takes effect on
    /// continue). With the paper's interim breakpoint scheme this is also
    /// how execution resumes at a chosen stopping point.
    ///
    /// # Errors
    /// Target not stopped; nub failures.
    pub fn set_pc(&mut self, pc: u32) -> Result<(), LdbError> {
        let id = self.cur_id()?;
        self.ensure_connected(id)?;
        let t = &self.targets[id];
        let stop = t.stop.ok_or_else(|| LdbError::msg("target is not stopped (running or exited)"))?;
        t.client
            .borrow_mut()
            .store('d', stop.context + t.data.ctx.pc_offset, 4, pc as u64)?;
        t.invalidate_data_cache();
        Ok(())
    }

    /// The address of stopping point `index` of `func` (without planting).
    ///
    /// # Errors
    /// Unknown procedure or stopping point.
    pub fn stop_address(&mut self, func: &str, index: usize) -> Result<u32, LdbError> {
        let id = self.cur_id()?;
        self.force_pending_for(id, func);
        let entry = self.targets[id]
            .loader
            .proc_entry_by_name(func)
            .ok_or_else(|| match self.targets[id].loader.quarantine_note() {
                Some(note) => LdbError::msg(format!("no procedure `{func}` ({note})")),
                None => LdbError::msg(format!("no procedure `{func}`")),
            })?;
        Ok(symtab::stop_addr(&mut self.interp, &entry, index)?)
    }

    fn read_saved_pc(&self, id: usize) -> Result<u32, LdbError> {
        let t = &self.targets[id];
        let stop = t.stop.ok_or_else(|| LdbError::msg("target is not stopped (running or exited)"))?;
        Ok(t.client
            .borrow_mut()
            .fetch('d', stop.context + t.data.ctx.pc_offset, 4)? as u32)
    }

    fn describe_pc(&mut self, id: usize, pc: u32) -> (String, u32) {
        let loader = Rc::clone(&self.targets[id].loader);
        let func = loader
            .proc_containing(pc)
            .map(|(_, n)| n.trim_start_matches('_').to_string())
            .unwrap_or_else(|| "?".to_string());
        // Exact stopping point, else the nearest one at or before the pc
        // (single-stepping lands between stopping points).
        let line = (|| -> Option<u32> {
            let entry = loader
                .proc_containing(pc)
                .and_then(|(_, n)| loader.proc_entry_by_link_name(n))?;
            let loci = symtab::loci_of(&mut self.interp, &entry).ok()?;
            let mut best: Option<(u32, u32)> = None;
            for l in &loci {
                let a = symtab::stop_addr(&mut self.interp, &entry, l.index).ok()?;
                if a <= pc && best.map(|(ba, _)| a >= ba).unwrap_or(true) {
                    best = Some((a, l.line));
                }
            }
            best.map(|(_, line)| line)
        })()
        .unwrap_or(0);
        (func, line)
    }

    // ----- frames -----

    /// The current backtrace, top first: (level, func, pc, vfp), plus why
    /// the walk stopped — anything but [`WalkStop::StackBase`] means the
    /// rows are a truncated view of a stack the debugger could not fully
    /// trust, and the caller should say so.
    pub fn backtrace(&self) -> (Vec<(u32, String, u32, u32)>, WalkStop) {
        let Some(id) = self.cur else { return (Vec::new(), WalkStop::StackBase) };
        let t = &self.targets[id];
        let rows = t
            .frames
            .iter()
            .map(|f| {
                let name = t
                    .loader
                    .proc_containing(f.pc)
                    .map(|(_, n)| n.trim_start_matches('_').to_string())
                    .unwrap_or_else(|| format!("{:#x}", f.pc));
                (f.level, name, f.pc, f.vfp)
            })
            .collect();
        (rows, t.walk_stop.clone())
    }

    /// Select frame `level` (0 = top); name resolution and printing then
    /// use that frame's scope and memory.
    ///
    /// # Errors
    /// No such frame.
    pub fn select_frame(&mut self, level: usize) -> Result<(), LdbError> {
        let id = self.cur_id()?;
        if level >= self.targets[id].frames.len() {
            return Err(LdbError::msg(format!("no frame {level}")));
        }
        self.targets[id].cur_frame = level;
        self.sync_ctx(id);
        Ok(())
    }

    /// The scope (procedure entry, stopping-point index) at the selected
    /// frame's pc.
    fn scope(&mut self) -> Result<(Object, usize), LdbError> {
        let id = self.cur_id()?;
        // A scope query is a demand for symbol-table entries: materialize
        // any pending lazily-loaded modules (no-op after the first real
        // stop, which already forced them).
        self.force_all_pending(id);
        let t = &self.targets[id];
        let f = t
            .frames
            .get(t.cur_frame)
            .ok_or_else(|| LdbError::msg("no frame"))?;
        let pc = f.pc;
        let loader = Rc::clone(&t.loader);
        let (_, name) = loader
            .proc_containing(pc)
            .ok_or_else(|| LdbError::msg(format!("pc {pc:#x} is in no known procedure")))?;
        let name = name.to_string();
        let entry = loader.proc_entry_by_link_name(&name).ok_or_else(|| {
            let note = match loader.quarantine_note() {
                Some(note) => format!("; {note}"),
                None => String::new(),
            };
            LdbError::msg(format!(
                "stopped in `{name}`, which has no symbol-table entry \
                 (startup code or a procedure compiled without -g{note})"
            ))
        })?;
        // The innermost stopping point at or before pc.
        let n = symtab::loci_of(&mut self.interp, &entry)?.len();
        let mut best = 0usize;
        let mut best_addr = 0u32;
        for i in 0..n {
            let a = symtab::stop_addr(&mut self.interp, &entry, i)?;
            if a <= pc && a >= best_addr {
                best_addr = a;
                best = i;
            }
        }
        Ok((entry, best))
    }

    /// Resolve `name` in the current scope to its symbol entry.
    ///
    /// # Errors
    /// Unknown name; no stopped target.
    pub fn resolve(&mut self, name: &str) -> Result<Object, LdbError> {
        let (entry, stop) = self.scope()?;
        let id = self.cur_id()?;
        let loader = Rc::clone(&self.targets[id].loader);
        symtab::resolve_name(&mut self.interp, &loader, &entry, stop, name)?.ok_or_else(|| {
            // The name may live in a module whose table was quarantined;
            // say so, instead of a bare "not visible".
            match loader.quarantine_note() {
                Some(note) => {
                    LdbError::msg(format!("`{name}` is not visible here ({note})"))
                }
                None => LdbError::msg(format!("`{name}` is not visible here")),
            }
        })
    }

    /// Retry the current target's quarantined modules under the load
    /// budget. Returns one `(module, outcome)` row per retried module.
    ///
    /// # Errors
    /// No current target.
    pub fn reload_modules(&mut self) -> Result<Vec<ReloadRow>, LdbError> {
        let id = self.cur_id()?;
        let loader = Rc::clone(&self.targets[id].loader);
        let unit_dict = Rc::clone(&self.targets[id].unit_dict);
        // Definitions a retried table makes must land in the target's
        // unit dictionary, exactly as they would have at attach time.
        self.interp.push_dict(unit_dict);
        let rows = loader.reload_quarantined(&mut self.interp, self.budgets.load);
        let _ = self.interp.pop_dict();
        Ok(rows)
    }

    /// The current target's quarantined modules (empty when none, or no
    /// target is selected).
    pub fn quarantined_modules(&self) -> Vec<(String, String)> {
        match self.cur {
            Some(id) => self.targets[id].loader.quarantined(),
            None => Vec::new(),
        }
    }

    /// Print the value of `name` (the paper's worked example: the fetch
    /// travels joined → register → alias → wire → nub). Returns the
    /// printed text.
    ///
    /// # Errors
    /// Unknown names, nub failures, printer failures.
    pub fn print_var(&mut self, name: &str) -> Result<String, LdbError> {
        let entry = self.resolve(name)?;
        self.print_entry(&entry)
    }

    /// Print a resolved symbol entry.
    ///
    /// # Errors
    /// As [`Ldb::print_var`].
    pub fn print_entry(&mut self, entry: &Object) -> Result<String, LdbError> {
        let id = self.cur_id()?;
        let t = &self.targets[id];
        let f = t
            .frames
            .get(t.cur_frame)
            .ok_or_else(|| LdbError::msg("target is not stopped"))?;
        let mem = f.mem.clone();
        let typedict = symtab::entry_type(entry)
            .ok_or_else(|| LdbError::msg("symbol has no type"))?;
        // Fresh pointer-chase guard for this print (cycle-safe printing).
        self.ctx.borrow_mut().begin_print();
        let before = self.out.borrow().len();
        self.interp.push(Object::host(Rc::new(MemHandle(mem))));
        self.interp.push(entry.clone());
        // Printers come from the symbol table (untrusted): run them under
        // the tight interactive budget so a looping or allocating printer
        // dies with `timeout`/`vmerror` instead of wedging the session.
        let budget = self.budgets.interactive;
        self.interp.with_budget(budget, |i| {
            i.run_str("SymLoc")?;
            i.push(typedict);
            i.run_str("print")
        })?;
        self.interp.pretty.newline();
        let all = self.out.borrow();
        let mut s = all[before..].to_string();
        if s.ends_with('\n') {
            s.pop();
        }
        Ok(s)
    }

    // ----- expression evaluation -----

    fn register_expr_ops(&mut self) {
        let state = Rc::clone(&self.expr_state);
        self.interp.register("ExpressionServer.result", move |_| {
            state.borrow_mut().outcome = Some(Ok(()));
            Err(PsError::Stop)
        });
        let state = Rc::clone(&self.expr_state);
        self.interp.register("ExpressionServer.error", move |i| {
            let msg = i.pop()?.as_string()?;
            state.borrow_mut().outcome = Some(Err(msg.to_string()));
            Err(PsError::Stop)
        });
    }

    fn ensure_server(&mut self) {
        if self.expr.is_none() {
            let h = ldb_exprserver::spawn();
            let pipe = PsFile::from_reader("exprserver", Box::new(h.reply_pipe));
            self.expr = Some(ExprSession {
                to_server: h.to_server,
                pipe: Rc::new(RefCell::new(pipe)),
                join: Some(h.join),
            });
        }
    }

    /// Evaluate a C expression in the current scope via the expression
    /// server; returns the result rendered as text. Assignments store
    /// through the abstract memories into the target.
    ///
    /// # Errors
    /// Parse/type errors from the server, unknown identifiers, nub
    /// failures.
    pub fn eval(&mut self, expr: &str) -> Result<String, LdbError> {
        // Fresh pointer-chase guard for this evaluation (the fetchP deref
        // path charges against it).
        self.ctx.borrow_mut().begin_print();
        let expanded = self.expand_calls(expr, 0)?;
        self.eval_expr(&expanded)
    }

    /// Replace `proc(args)` subexpressions with the value the call
    /// returns, innermost first — this is how function calls compose with
    /// the expression server, which itself only rewrites data accesses.
    /// Only names the loader knows as procedures are treated as calls, so
    /// array indexing and parenthesized arithmetic pass through.
    fn expand_calls(&mut self, expr: &str, depth: u8) -> Result<String, LdbError> {
        if depth > 8 {
            return Err(LdbError::msg("call expressions nested too deeply"));
        }
        let id = self.cur_id()?;
        let bytes = expr.as_bytes();
        let mut out = String::new();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let ident = &expr[start..i];
                // Skip whitespace to see whether a call follows.
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                let is_proc = {
                    let t = &self.targets[id];
                    t.loader.proc_addr(&format!("_{ident}")).is_some()
                        || t.loader.proc_addr(ident).is_some()
                };
                if j < bytes.len() && bytes[j] == b'(' && is_proc {
                    // Find the matching close paren.
                    let open = j;
                    let mut level = 0i32;
                    let mut close = None;
                    let mut quote = false;
                    for (k, &b) in bytes.iter().enumerate().skip(open) {
                        match b {
                            b'\'' => quote = !quote,
                            _ if quote => {}
                            b'(' => level += 1,
                            b')' => {
                                level -= 1;
                                if level == 0 {
                                    close = Some(k);
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    let close =
                        close.ok_or_else(|| LdbError::msg("unbalanced parentheses in call"))?;
                    let inner = &expr[open + 1..close];
                    let mut args = Vec::new();
                    if !inner.trim().is_empty() {
                        for part in split_top_level(inner) {
                            let v = self.expand_calls(part.trim(), depth + 1)?;
                            let v = self.eval_expr(&v)?;
                            let arg = match v.parse::<i64>() {
                                Ok(n) => CallArg::Int(n),
                                Err(_) => CallArg::Double(v.parse::<f64>().map_err(|_| {
                                    LdbError::msg(format!(
                                        "call argument `{}` is not a number (got {v})",
                                        part.trim()
                                    ))
                                })?),
                            };
                            args.push(arg);
                        }
                    }
                    let name = ident.to_string();
                    let rv = self.call_and_format(&name, &args)?;
                    out.push_str(&rv);
                    i = close + 1;
                } else {
                    out.push_str(ident);
                }
            } else {
                out.push(c);
                i += 1;
            }
        }
        Ok(out)
    }

    /// Run one expression through the server (no call expansion).
    fn eval_expr(&mut self, expr: &str) -> Result<String, LdbError> {
        self.ensure_server();
        // Register the lookup operator against the *current* scope.
        self.install_lookup()?;
        let session = self
            .expr
            .as_ref()
            .ok_or_else(|| LdbError::msg("expression server is not running"))?;
        let pipe = Rc::clone(&session.pipe);
        if session.to_server.send(ldb_exprserver::ToServer::Expr(expr.to_string())).is_err() {
            // The server thread died: drop the session so the next
            // evaluation respawns it instead of failing forever.
            self.expr = None;
            return Err(LdbError::msg("expression server is gone (will respawn on next use)"));
        }
        self.expr_state.borrow_mut().outcome = None;
        // "The operation of interpreting until told to stop is implemented
        // by applying cvx stopped to the open pipe from the server."
        // The rewritten expression executes symbol-table code (SymLoc,
        // printers), so it runs under the interactive budget.
        let budget = self.budgets.interactive;
        match self.interp.with_budget(budget, |i| i.run_file(&pipe)) {
            Ok(()) => return Err(LdbError::msg("expression server closed the pipe")),
            Err(PsError::Stop) => {}
            Err(e) => return Err(e.into()),
        }
        let outcome = self
            .expr_state
            .borrow_mut()
            .outcome
            .take()
            .ok_or_else(|| LdbError::msg("server stopped without a result"))?;
        match outcome {
            Err(msg) => Err(LdbError::msg(format!("expression error: {msg}"))),
            Ok(()) => {
                // Stack: procedure, result-type decl string.
                let decl = self.interp.pop()?.as_string()?;
                let proc = self.interp.pop()?;
                self.interp.with_budget(budget, |i| i.call(&proc))?;
                let value = self.interp.pop()?;
                Ok(render_value(&value, &decl))
            }
        }
    }

    /// Install `ExpressionServer.lookup` bound to the current scope.
    fn install_lookup(&mut self) -> Result<(), LdbError> {
        let scope = self.scope().ok();
        let id = self.cur_id()?;
        let loader = Rc::clone(&self.targets[id].loader);
        let session = {
            self.ensure_server();
            self.expr
                .as_ref()
                .ok_or_else(|| LdbError::msg("expression server is not running"))?
                .to_server
                .clone()
        };
        let handles = Rc::new(RefCell::new(self.handles));
        let outer = Rc::new(RefCell::new(HashMap::<String, String>::new()));
        self.interp.register("ExpressionServer.lookup", move |i| {
            let name = i.pop()?.as_name()?;
            let found = match &scope {
                Some((entry, stop)) => {
                    symtab::resolve_name(i, &loader, entry, *stop, &name).ok().flatten()
                }
                None => loader.proc_entry_by_name(&name),
            };
            let reply = match found {
                None => "notfound".to_string(),
                Some(entry) => {
                    let mut cache = outer.borrow_mut();
                    let handle = match cache.get(name.as_ref()) {
                        Some(h) => h.clone(),
                        None => {
                            let mut n = handles.borrow_mut();
                            *n += 1;
                            let h = format!("E{}", *n);
                            // Define the handle so rewritten code can say
                            // `E1 SymLoc`.
                            i.def(&h, entry.clone());
                            cache.insert(name.to_string(), h.clone());
                            h
                        }
                    };
                    let d = entry.as_dict()?;
                    let tdict = d.borrow().get_name("type").cloned();
                    let decl = tdict
                        .as_ref()
                        .and_then(|t| t.as_dict().ok())
                        .and_then(|t| t.borrow().get_name("decl").cloned())
                        .and_then(|d| d.as_string().ok())
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "int %s".to_string());
                    // Struct types: prepend the definitions the server
                    // needs to reconstruct the compiler's type info.
                    let decl = match &tdict {
                        Some(t) => format!("{}{}", struct_defs_for(t), decl),
                        None => decl,
                    };
                    let kind = d
                        .borrow()
                        .get_name("kind")
                        .and_then(|k| k.as_string().ok())
                        .map(|s| s.to_string())
                        .unwrap_or_default();
                    if kind == "procedure" {
                        format!("func {handle} int %s")
                    } else {
                        format!("var {handle} {decl}")
                    }
                }
            };
            session
                .send(ldb_exprserver::ToServer::Symbol(reply))
                .map_err(|_| PsError::runtime(ldb_postscript::ErrorKind::IoError, "server gone"))?;
            Ok(())
        });
        Ok(())
    }

    /// Enumerate the current target's registers using the
    /// machine-dependent `&regnames` PostScript data.
    ///
    /// # Errors
    /// No stopped frame.
    pub fn registers(&mut self) -> Result<Vec<(String, u32)>, LdbError> {
        let id = self.cur_id()?;
        if self.targets[id].disconnected {
            // Answer from the last snapshot: the wire is gone, but what
            // the target looked like at the last stop is still known.
            if !self.targets[id].reg_cache.is_empty() {
                return Ok(self.targets[id].reg_cache.clone());
            }
            return Err(LdbError::msg(
                "target is disconnected and no register snapshot is cached",
            ));
        }
        let t = &self.targets[id];
        let f = t
            .frames
            .get(t.cur_frame)
            .ok_or_else(|| LdbError::msg("target is not stopped"))?;
        let mem = f.mem.clone();
        let names = self.interp.lookup("&regnames")?.as_array()?;
        let names = names.borrow().clone();
        let mut out = Vec::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            let v = mem.fetch('r', i as i64, 4).unwrap_or(0);
            out.push((n.as_string()?.to_string(), v as u32));
        }
        self.targets[id].reg_cache = out.clone();
        Ok(out)
    }

    /// Take ownership of the nub handle of target `id` (to join the nub
    /// thread after exit and inspect the final machine).
    pub fn take_nub_handle(&mut self, id: usize) -> Option<NubHandle> {
        self.targets.get_mut(id).and_then(|t| t.nub.take())
    }

    /// Detach from the current target, leaving its state preserved in the
    /// nub for a later debugger (even a different ldb process).
    ///
    /// # Errors
    /// Nothing selected.
    pub fn detach_current(&mut self) -> Result<Option<NubHandle>, LdbError> {
        let id = self.cur_id()?;
        self.targets[id].client.borrow_mut().detach_in_place()?;
        let t = self.targets.remove(id);
        self.pop_target_dicts();
        self.cur = None;
        Ok(t.nub)
    }
}

/// Collect C `struct` definitions reachable from a type dictionary, so
/// the expression server can reconstruct aggregate types ("it must be
/// enough to enable the expression server to reconstruct the compiler's
/// symbol-table and type information at debug time", paper Sec. 7).
fn struct_defs_for(tdict: &Object) -> String {
    let mut out = String::new();
    let mut seen = std::collections::HashSet::new();
    collect_structs(tdict, &mut out, &mut seen);
    out
}

fn collect_structs(
    tdict: &Object,
    out: &mut String,
    seen: &mut std::collections::HashSet<String>,
) {
    let Ok(d) = tdict.as_dict() else { return };
    let get = |k: &str| d.borrow().get_name(k).cloned();
    // Chase pointees and array elements first.
    for link in ["&pointee", "&elemtype"] {
        if let Some(inner) = get(link) {
            collect_structs(&inner, out, seen);
        }
    }
    let Some(fields) = get("&fields") else { return };
    let Some(decl) = get("decl").and_then(|o| o.as_string().ok()) else { return };
    // decl looks like "struct acc %s".
    let name = decl
        .trim_start_matches("struct ")
        .split_whitespace()
        .next()
        .unwrap_or("anon")
        .to_string();
    if !seen.insert(name.clone()) {
        return;
    }
    let Ok(fields) = fields.as_array() else { return };
    let fields = fields.borrow().clone();
    let mut body = String::new();
    let mut i = 0;
    while i + 2 < fields.len() + 1 && i + 2 <= fields.len() {
        let fname = fields[i].as_string().ok();
        let ftype = &fields[i + 2];
        collect_structs(ftype, out, seen);
        if let (Some(fname), Ok(fd)) = (fname, ftype.as_dict()) {
            if let Some(fdecl) = fd.borrow().get_name("decl").and_then(|o| o.as_string().ok()) {
                body.push_str(&format!(" {};", fdecl.replace("%s", &fname)));
            }
        }
        i += 3;
    }
    out.push_str(&format!("struct {name} {{{body} }}; "));
}

/// Render an evaluated value using its declared type.
fn render_value(v: &Object, decl: &str) -> String {
    match &v.val {
        Value::Location(ldb_postscript::Location::Addr { offset, .. }) => {
            format!("({}) 0x{:x}", decl.replace("%s", "").trim(), *offset as u32)
        }
        _ => v.to_text(),
    }
}
