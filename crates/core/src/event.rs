//! An event-driven client interface (paper, Sec. 7.1).
//!
//! "One solution is to make the debugger internals event-driven...
//! Exporting the mechanisms used to make the debugger event-driven would
//! simplify the implementation of event-driven clients. Event-driven
//! debugging subsumes conditional breakpoints as a special case."
//!
//! [`Events`] wraps a session: clients register actions on breakpoint
//! addresses (or on faults); [`Events::run`] drives the target, invoking
//! actions at each stop, until an action asks to hold the stop or the
//! target exits. Conditional breakpoints are an action that evaluates an
//! expression and resumes when it is false.

use std::collections::HashMap;

use crate::debugger::{Ldb, StopEvent};
use crate::LdbError;

/// What an action wants done after it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Resume the target.
    Resume,
    /// Hold the stop and return control to the client.
    Hold,
}

/// An action invoked at a stop. It may inspect and mutate the target
/// through the debugger.
pub type Action = Box<dyn FnMut(&mut Ldb, &StopEvent) -> Result<Outcome, LdbError>>;

/// The event-driven driver.
pub struct Events {
    /// The underlying session (accessible between runs).
    pub ldb: Ldb,
    on_addr: HashMap<u32, Action>,
    on_fault: Option<Action>,
    /// Count of events dispatched (observable by clients and tests).
    pub dispatched: u64,
}

impl Events {
    /// Wrap a session.
    pub fn new(ldb: Ldb) -> Events {
        Events { ldb, on_addr: HashMap::new(), on_fault: None, dispatched: 0 }
    }

    /// Plant a breakpoint at stopping point `index` of `func` and register
    /// an action for it.
    ///
    /// # Errors
    /// As [`Ldb::break_at`].
    pub fn on_break(
        &mut self,
        func: &str,
        index: usize,
        action: Action,
    ) -> Result<u32, LdbError> {
        let addr = self.ldb.break_at(func, index)?;
        self.on_addr.insert(addr, action);
        Ok(addr)
    }

    /// A conditional breakpoint: hold only when `cond` (a C expression
    /// evaluated in the stop's scope) is nonzero.
    ///
    /// # Errors
    /// As [`Ldb::break_at`].
    pub fn on_break_when(
        &mut self,
        func: &str,
        index: usize,
        cond: &str,
    ) -> Result<u32, LdbError> {
        let cond = cond.to_string();
        self.on_break(
            func,
            index,
            Box::new(move |ldb, _ev| {
                let v = ldb.eval(&cond)?;
                Ok(if v != "0" { Outcome::Hold } else { Outcome::Resume })
            }),
        )
    }

    /// Register an action for faults.
    pub fn on_fault(&mut self, action: Action) {
        self.on_fault = Some(action);
    }

    /// Drive the target until an action holds a stop, an unhandled stop
    /// arrives, or the target exits.
    ///
    /// # Errors
    /// Nub and evaluation failures.
    pub fn run(&mut self) -> Result<StopEvent, LdbError> {
        loop {
            let ev = self.ldb.cont()?;
            self.dispatched += 1;
            match &ev {
                StopEvent::Exited(_) => return Ok(ev),
                StopEvent::Breakpoint { addr, .. } => {
                    let addr = *addr;
                    match self.on_addr.remove(&addr) {
                        None => return Ok(ev), // not ours: surface it
                        Some(mut action) => {
                            let out = action(&mut self.ldb, &ev);
                            self.on_addr.insert(addr, action);
                            match out? {
                                Outcome::Hold => return Ok(ev),
                                Outcome::Resume => continue,
                            }
                        }
                    }
                }
                StopEvent::Fault { .. } => {
                    match self.on_fault.take() {
                        None => return Ok(ev),
                        Some(mut action) => {
                            let out = action(&mut self.ldb, &ev);
                            self.on_fault = Some(action);
                            match out? {
                                Outcome::Hold => return Ok(ev),
                                Outcome::Resume => return Ok(ev), // faults do not resume blindly
                            }
                        }
                    }
                }
                _ => return Ok(ev),
            }
        }
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Events {{ actions: {}, dispatched: {} }}", self.on_addr.len(), self.dispatched)
    }
}
