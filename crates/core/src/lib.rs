//! ldb: a retargetable debugger — the Rust reproduction of Ramsey &
//! Hanson, *A Retargetable Debugger* (PLDI 1992).
//!
//! ldb owes its retargetability to three techniques: help from the
//! compiler ([`ldb_cc`] emits PostScript symbol tables, stopping-point
//! no-ops, and anchor symbols), a machine-independent embedded interpreter
//! ([`ldb_postscript`]), and abstractions that minimize and isolate
//! machine-dependent code — [`amemory`] (the abstract-memory DAG),
//! [`frame`] (per-target walkers supplying just two methods each), the
//! [`breakpoint`] scheme driven by four items of machine-dependent data,
//! and the [`ldb_nub`] protocol that never mentions breakpoints at all.
//!
//! # Examples
//! ```no_run
//! use ldb_cc::driver::{compile, CompileOpts};
//! use ldb_cc::{nm, pssym};
//! use ldb_core::Ldb;
//! use ldb_machine::Arch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "int main(void) { return 0; }";
//! let c = compile("t.c", src, Arch::Mips, CompileOpts::default())?;
//! let symtab = pssym::emit(&c.unit, &c.funcs, c.arch, pssym::PsMode::Deferred);
//! let loader = nm::loader_table_for(&c.linked.image, &symtab);
//! let mut ldb = Ldb::new();
//! let _target = ldb.spawn_program(&c.linked.image, &loader)?;
//! ldb.break_at("main", 0)?;
//! ldb.cont()?;
//! println!("{:?}", ldb.backtrace());
//! # Ok(())
//! # }
//! ```

pub mod amemory;
pub mod breakpoint;
pub mod chaos;
pub mod checkpoint;
pub mod debugger;
pub mod event;
pub mod frame;
pub mod loader;
pub mod psops;
pub mod script;
pub mod session;
pub mod symtab;

pub use amemory::{AbstractMemory, AliasMemory, CachedMemory, CacheStats, JoinedMemory, MemError, MemRef, RegisterMemory, WireMemory};
pub use breakpoint::Breakpoints;
pub use chaos::{ChaosConfig, ChaosMemory, ChaosStats};
pub use checkpoint::{CheckpointStats, CheckpointStore};
pub use debugger::{CallArg, CallReturn, Health, Ldb, PsBudgets, ReloadRow, StopEvent, Target};
pub use event::{Events, Outcome};
pub use frame::{walk_stack, Frame, FrameWalker, WalkCtx, WalkError, WalkGuard, WalkStop, WALK_DEPTH_CAP};
pub use loader::{CompiledTable, FrameMeta, Loader, ModuleTable, Quarantined};
// The compiled-module machinery sessions share across tenants; the stats
// struct is renamed to dodge the amemory::CacheStats export above.
pub use ldb_postscript::{compile_module, CompiledModule, ModuleCache};
pub use ldb_postscript::CacheStats as ModuleCacheStats;
pub use psops::{CtxRef, EvalCtx, MemHandle};
pub use script::{
    command_count, panic_text, run_command_guarded, run_script, trace_report, BatchOutcome,
};
pub use session::{
    CloseReason, Session, SessionBuilder, SessionConfig, SessionError, SessionRegistry,
};

/// Errors from debugger operations.
#[derive(Debug)]
pub enum LdbError {
    /// Abstract-memory failure.
    Mem(amemory::MemError),
    /// Nub connection failure.
    Nub(ldb_nub::NubError),
    /// Embedded-interpreter failure.
    Ps(ldb_postscript::PsError),
    /// Anything else.
    Msg(String),
}

impl LdbError {
    /// A plain-message error.
    pub fn msg(m: impl Into<String>) -> LdbError {
        LdbError::Msg(m.into())
    }
}

impl std::fmt::Display for LdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LdbError::Mem(e) => write!(f, "{e}"),
            LdbError::Nub(e) => write!(f, "{e}"),
            LdbError::Ps(e) => write!(f, "{e}"),
            LdbError::Msg(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for LdbError {}

impl From<amemory::MemError> for LdbError {
    fn from(e: amemory::MemError) -> Self {
        LdbError::Mem(e)
    }
}

impl From<ldb_nub::NubError> for LdbError {
    fn from(e: ldb_nub::NubError) -> Self {
        LdbError::Nub(e)
    }
}

impl From<ldb_postscript::PsError> for LdbError {
    fn from(e: ldb_postscript::PsError) -> Self {
        LdbError::Ps(e)
    }
}
