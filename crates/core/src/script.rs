//! A deterministic command-script runner over [`Ldb`] — the replay half
//! of the flight recorder.
//!
//! A recorded session is a command script plus the seeds that make the
//! simulated machines, the compiler, and any injected faults
//! deterministic. Replaying is therefore just running the script again:
//! [`run_script`] executes a newline-separated command list against a
//! live session and returns the transcript it produced, journaling every
//! command as a [`Layer::Dbg`] `cmd` record on the way. With the
//! recorder in logical-clock mode, running the same script twice against
//! identically-seeded targets yields byte-identical transcripts *and*
//! byte-identical journals — which is exactly what the
//! `tests/replay_golden.rs` harness checks on all four architectures.
//!
//! The command set mirrors the interactive CLI's core (`b`/`bl`/`c`/`s`/
//! `n`/`fin`/`p`/`e`/`bt`/`f`/`regs`/`checkpoint`/`reverse-step`/
//! `reverse-next`/`reverse-continue`/`info wire`/`info trace`), with
//! output formats chosen to be stable and machine-diffable rather than
//! chatty.

use ldb_trace::{Layer, Severity, Trace};

use crate::debugger::{Ldb, StopEvent};
use crate::LdbError;

/// Render a stop event as one transcript line (the script runner's
/// analog of the CLI's stop report).
pub fn report_stop(ev: &StopEvent) -> String {
    match ev {
        StopEvent::Paused => "paused before main".to_string(),
        StopEvent::Attached => "attached".to_string(),
        StopEvent::Breakpoint { func, line, addr } => {
            format!("breakpoint in {func} at line {line} ({addr:#x})")
        }
        StopEvent::Stepped { func, line, addr } => {
            format!("stepped: {func} line {line} ({addr:#x})")
        }
        StopEvent::Watchpoint { name, old, new, func, line, addr } => {
            format!("watchpoint: {name} changed {old} -> {new} in {func} at line {line} ({addr:#x})")
        }
        StopEvent::Fault { sig, code } => format!("fault: {sig} (code {code:#x})"),
        StopEvent::Exited(status) => format!("target exited with status {status}"),
    }
}

/// Summed wire metrics over every attached target.
fn total_metrics(ldb: &Ldb) -> ldb_nub::WireMetrics {
    let mut m = ldb_nub::WireMetrics::default();
    for id in 0..ldb.target_count() {
        let t = ldb.target(id).client.borrow().metrics();
        m.transactions += t.transactions;
        m.retransmits += t.retransmits;
        m.bytes_sent += t.bytes_sent;
        m.bytes_received += t.bytes_received;
    }
    m
}

/// The `info trace` report: per-layer record counts, per-kind counts,
/// and the journal-vs-[`WireMetrics`](ldb_nub::WireMetrics) consistency
/// check. Every frame the client puts on the wire appears in the journal
/// as a `send` (or `send_err`) record and every retransmission as a
/// `retx`, so `transactions = send + send_err - retx` must hold exactly.
pub fn trace_report(ldb: &Ldb) -> String {
    let trace = ldb.trace();
    if !trace.is_on() {
        return "trace: off (start with --trace FILE, or Ldb::set_trace)".to_string();
    }
    let c = trace.counts();
    // The fleet layer only speaks in fleet-runner journals; solo sessions
    // keep the four-layer line (and their pinned golden transcripts).
    let fleet = if c.fleet > 0 { format!(", fleet {}", c.fleet) } else { String::new() };
    let mut out = format!(
        "trace: {} records (wire {}, ps {}, dbg {}, net {}{fleet})\n",
        c.total(),
        c.wire,
        c.ps,
        c.dbg,
        c.net
    );
    for (layer, kind, n) in trace.kind_counts() {
        out.push_str(&format!("  {}/{kind} {n}\n", layer.name()));
    }
    // The cross-check counts `send`/`retx` records, which the client
    // emits at Debug; with the wire layer's minimum severity above that
    // they are filtered out of the journal, so the comparison against
    // WireMetrics would report a spurious mismatch.
    if trace.min_sev(Layer::Wire).is_some_and(|s| s > Severity::Debug) {
        out.push_str("wire cross-check: n/a (wire debug records filtered by min severity)");
        return out;
    }
    let m = total_metrics(ldb);
    let sends = trace.kind_count(Layer::Wire, "send");
    let send_errs = trace.kind_count(Layer::Wire, "send_err");
    let retx = trace.kind_count(Layer::Wire, "retx");
    let txns = (sends + send_errs).saturating_sub(retx);
    let ok = txns == m.transactions && retx == m.retransmits;
    out.push_str(&format!(
        "wire cross-check: journal {txns} txns / {retx} retx, metrics {} txns / {} retx ({})",
        m.transactions,
        m.retransmits,
        if ok { "consistent" } else { "MISMATCH" }
    ));
    out
}

/// The `info wire` report over every attached target.
fn wire_report(ldb: &Ldb) -> String {
    let m = total_metrics(ldb);
    format!(
        "wire: {} transactions, {} retransmits, {} bytes out, {} bytes in",
        m.transactions, m.retransmits, m.bytes_sent, m.bytes_received
    )
}

fn run_command(ldb: &mut Ldb, cmd: &str, rest: &str) -> Result<String, LdbError> {
    Ok(match cmd {
        "b" => {
            let mut it = rest.split_whitespace();
            let func = it.next().ok_or_else(|| LdbError::msg("usage: b <func> [stop]"))?;
            let index: usize = it
                .next()
                .unwrap_or("0")
                .parse()
                .map_err(|_| LdbError::msg("bad stopping-point index"))?;
            let addr = ldb.break_at(func, index)?;
            format!("breakpoint at {addr:#x}")
        }
        "bl" => {
            let line: u32 =
                rest.trim().parse().map_err(|_| LdbError::msg("usage: bl <line>"))?;
            let addr = ldb.break_at_line(line)?;
            format!("breakpoint at {addr:#x}")
        }
        "c" => report_stop(&ldb.cont_watch()?),
        "s" => report_stop(&ldb.step_insn()?),
        "n" => report_stop(&ldb.step_over()?),
        "checkpoint" => {
            let steps = ldb.checkpoint_now()?;
            format!("checkpoint at step {steps}")
        }
        "reverse-step" | "rs" => report_stop(&ldb.reverse_step_insn()?),
        "reverse-next" | "rn" => report_stop(&ldb.reverse_next()?),
        "reverse-continue" | "rc" => report_stop(&ldb.reverse_cont()?),
        "fin" => {
            let (ev, ret) = ldb.finish()?;
            match ret {
                Some(v) => format!("{}\nreturn value: {v}", report_stop(&ev)),
                None => report_stop(&ev),
            }
        }
        "p" => {
            let name = rest.trim();
            format!("{name} = {}", ldb.print_var(name)?)
        }
        "e" => ldb.eval(rest.trim())?,
        "bt" => {
            let (rows, stop) = ldb.backtrace();
            let mut lines: Vec<String> = rows
                .iter()
                .map(|(level, name, pc, _vfp)| format!("#{level} {name} at {pc:#x}"))
                .collect();
            if lines.is_empty() {
                lines.push("no stack".to_string());
            }
            if !stop.is_clean() {
                lines.push(format!("walk truncated: {stop}"));
            }
            lines.join("\n")
        }
        "f" => {
            let level: usize =
                rest.trim().parse().map_err(|_| LdbError::msg("usage: f <frame>"))?;
            ldb.select_frame(level)?;
            format!("frame {level}")
        }
        "regs" => {
            let regs = ldb.registers()?;
            regs.iter()
                .map(|(name, v)| format!("{name}={v:#010x}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
        // The supervision drill: a deliberate panic inside command
        // dispatch, the scripted analog of the daemon's `spin` builtin.
        // `run_command_guarded` must quarantine it (error line, health
        // counter, recovered session) and the script must keep going —
        // which is exactly what tests/script_recovery.rs and the fleet's
        // panic corpus assert.
        "__panic" => {
            let msg = if rest.trim().is_empty() { "scripted panic drill" } else { rest.trim() };
            panic!("{msg}");
        }
        "info" => match rest.trim() {
            "wire" => wire_report(ldb),
            "trace" => trace_report(ldb),
            "health" => ldb.health().to_string(),
            "health --json" => ldb.health().to_json(),
            "checkpoints" => {
                let rows = ldb.checkpoint_rows()?;
                let s = ldb.checkpoint_stats()?;
                let mut lines: Vec<String> = rows
                    .iter()
                    .map(|(steps, raw, packed)| {
                        format!("  step {steps}: {raw} bytes ({packed} compressed)")
                    })
                    .collect();
                lines.insert(
                    0,
                    format!(
                        "checkpoints: {}/{} held, {} raw bytes ({} compressed)",
                        s.len, s.cap, s.raw, s.compressed
                    ),
                );
                lines.join("\n")
            }
            other => return Err(LdbError::msg(format!("no `info {other}` in scripts"))),
        },
        other => return Err(LdbError::msg(format!("unknown script command `{other}`"))),
    })
}

/// A short rendering of a caught panic payload.
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Run one command under `catch_unwind`: a residual panic anywhere in the
/// command's implementation quarantines that one command — journaled,
/// counted in `info health`, the session state re-validated — instead of
/// killing the loop. The CLI wraps its dispatcher the same way.
pub fn run_command_guarded(ldb: &mut Ldb, cmd: &str, rest: &str) -> Result<String, LdbError> {
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_command(ldb, cmd, rest)));
    match r {
        Ok(r) => r,
        Err(payload) => {
            let msg = panic_text(payload.as_ref());
            ldb.trace().emit(
                Layer::Dbg,
                Severity::Warn,
                "panic",
                &[("cmd", cmd.to_string().into()), ("msg", msg.clone().into())],
            );
            ldb.note_quarantined();
            ldb.recover_session();
            Err(LdbError::msg(format!("command quarantined (internal panic: {msg})")))
        }
    }
}

/// Run a newline-separated command script against `ldb`, returning the
/// transcript: each command echoed as `(ldb) <cmd>` followed by its
/// output. Blank lines and `#` comments are skipped. Errors become
/// `error: …` transcript lines rather than aborting the script — a
/// replayed session must reproduce its failures too.
pub fn run_script(ldb: &mut Ldb, script: &str) -> String {
    let trace: Trace = ldb.trace().clone();
    // One probe for the whole script: the per-command `cmd` record costs
    // an allocation (the command text), which a headless batch run with
    // tracing off — or filtered above Info — must not pay 10k times over.
    let journal_cmds = trace.enabled(Layer::Dbg, Severity::Info);
    let mut out = String::new();
    for line in script.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if journal_cmds {
            trace.emit(Layer::Dbg, Severity::Info, "cmd", &[("text", line.to_string().into())]);
        }
        out.push_str("(ldb) ");
        out.push_str(line);
        out.push('\n');
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r),
            None => (line, ""),
        };
        match run_command_guarded(ldb, cmd, rest) {
            Ok(text) => {
                if !text.is_empty() {
                    out.push_str(&text);
                    out.push('\n');
                }
            }
            Err(e) => {
                out.push_str(&format!("error: {e}\n"));
            }
        }
    }
    out
}

/// How many commands a script will execute: the non-blank, non-comment
/// lines — exactly the lines [`run_script`] dispatches (and journals as
/// `cmd` records when the recorder keeps Info). The fleet runner
/// cross-checks this count against each session's journal.
pub fn command_count(script: &str) -> u64 {
    script
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count() as u64
}

/// The typed outcome of a batch script run, as seen from *inside* the
/// session: what `ldb --script` turns into a process exit code and what
/// the fleet supervisor records per session (layering its own
/// supervisor-level outcomes — wedged, shed — on top).
///
/// Classification precedence is severity-ordered: a lost wire trumps a
/// quarantined panic trumps an ordinary script error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BatchOutcome {
    /// Every command ran and none reported an error.
    Clean,
    /// At least one command produced an `error:` transcript line (bad
    /// usage, failed lookup, watchdog cancellation, …).
    ScriptError,
    /// At least one command panicked and was quarantined by the
    /// crash-proof loop ([`run_command_guarded`]).
    PanicQuarantined,
    /// A target's wire was lost mid-script (the nub died or the fault
    /// injector severed the connection).
    WireLost,
}

impl BatchOutcome {
    /// The stable token used in fleet reports and journals.
    pub fn token(self) -> &'static str {
        match self {
            BatchOutcome::Clean => "clean",
            BatchOutcome::ScriptError => "script-error",
            BatchOutcome::PanicQuarantined => "panic-quarantined",
            BatchOutcome::WireLost => "wire-lost",
        }
    }

    /// The `ldb --script` process exit code: `0` clean, `3` script
    /// error, `4` panic quarantine, `5` wire loss. (`1` stays the CLI's
    /// internal-error exit and `2` its usage exit, so shells can tell a
    /// failed *session* from a failed *invocation*.)
    pub fn exit_code(self) -> i32 {
        match self {
            BatchOutcome::Clean => 0,
            BatchOutcome::ScriptError => 3,
            BatchOutcome::PanicQuarantined => 4,
            BatchOutcome::WireLost => 5,
        }
    }

    /// Classify a finished script run from the session state and the
    /// transcript it produced. Wire loss is read from the targets'
    /// disconnected flags, panics from the health quarantine counter, and
    /// plain errors from the transcript's `error:` lines.
    pub fn classify(ldb: &Ldb, transcript: &str) -> BatchOutcome {
        if ldb.any_disconnected() {
            return BatchOutcome::WireLost;
        }
        if ldb.health().quarantined_commands > 0 {
            return BatchOutcome::PanicQuarantined;
        }
        if transcript.lines().any(|l| l.starts_with("error: ")) {
            return BatchOutcome::ScriptError;
        }
        BatchOutcome::Clean
    }
}

impl std::fmt::Display for BatchOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}
