//! Checkpoints for time-travel debugging.
//!
//! A checkpoint is a full machine snapshot (registers plus dirty memory
//! pages, serialized by `ldb-machine` and compressed with `ldb-compress`)
//! keyed by the target's retired-instruction count. The store is a bounded
//! ring: pushing past capacity evicts the oldest entry, so reverse reach
//! is finite and memory use is predictable.
//!
//! Replay exactness requires the plant set at replay time to match the
//! plant set the checkpointed interval executed under (a trap consumes
//! steps the pristine instruction would not). Each entry therefore records
//! the breakpoint-set *generation* it was taken under; lookups filter on
//! the current generation and report everything older as unreachable.

use std::collections::VecDeque;

/// One stored checkpoint.
struct Checkpoint {
    /// Retired-instruction count at capture time.
    steps: u64,
    /// Stop signal number announced at capture time (replay must resume
    /// from the restored state exactly as the original resume did — a
    /// fired trap needs the skip/single-step choreography, a plain pause
    /// does not).
    sig: u8,
    /// Stop code announced at capture time.
    code: u32,
    /// Breakpoint-set generation at capture time.
    gen: u64,
    /// The compressed snapshot image.
    blob: Vec<u8>,
    /// Uncompressed image size (for `info checkpoints`).
    raw_len: usize,
}

/// A bounded ring of compressed machine snapshots, newest at the back.
pub struct CheckpointStore {
    cap: usize,
    ring: VecDeque<Checkpoint>,
}

/// Aggregate statistics for `info checkpoints`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Entries currently held.
    pub len: usize,
    /// Ring capacity.
    pub cap: usize,
    /// Oldest reachable step count, if any entry exists.
    pub oldest: Option<u64>,
    /// Newest step count, if any entry exists.
    pub newest: Option<u64>,
    /// Total compressed bytes held.
    pub compressed: usize,
    /// Total uncompressed bytes the entries decode to.
    pub raw: usize,
}

/// Default ring capacity: enough to cross several `--checkpoint-every`
/// intervals without evicting the stop the user will rewind toward.
pub const DEFAULT_CAP: usize = 32;

impl Default for CheckpointStore {
    fn default() -> Self {
        Self::new(DEFAULT_CAP)
    }
}

impl CheckpointStore {
    /// An empty store holding at most `cap` checkpoints (minimum 1).
    #[must_use]
    pub fn new(cap: usize) -> CheckpointStore {
        CheckpointStore { cap: cap.max(1), ring: VecDeque::new() }
    }

    /// Record a snapshot taken at `steps` under plant generation `gen`,
    /// announced with stop signal `sig`/`code`. A re-capture at the step
    /// count of the newest entry replaces it (the plant set may have
    /// changed while stopped); an older step count than the newest is
    /// ignored — history is append-only, rewinding re-executes instead of
    /// re-recording.
    pub fn push(&mut self, steps: u64, sig: u8, code: u32, gen: u64, image: &[u8]) {
        if let Some(last) = self.ring.back() {
            match last.steps.cmp(&steps) {
                std::cmp::Ordering::Greater => return,
                std::cmp::Ordering::Equal => {
                    self.ring.pop_back();
                }
                std::cmp::Ordering::Less => {}
            }
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(Checkpoint {
            steps,
            sig,
            code,
            gen,
            blob: ldb_compress::compress(image),
            raw_len: image.len(),
        });
    }

    /// The newest entry at or before `steps` whose plant generation is
    /// `gen`: `(steps, sig, code, image)` decompressed, or a typed reason
    /// why no entry qualifies.
    ///
    /// # Errors
    /// No usable entry, or a blob that no longer decompresses (which
    /// would indicate store corruption and is reported, never panicked).
    pub fn best_at_or_before(
        &self,
        steps: u64,
        gen: u64,
    ) -> Result<(u64, u8, u32, Vec<u8>), String> {
        let mut stale = false;
        for c in self.ring.iter().rev() {
            if c.steps > steps {
                continue;
            }
            if c.gen != gen {
                stale = true;
                continue;
            }
            return match ldb_compress::decompress(&c.blob) {
                Ok(image) => Ok((c.steps, c.sig, c.code, image)),
                Err(e) => Err(format!("checkpoint at step {} is corrupt: {e}", c.steps)),
            };
        }
        Err(if stale {
            format!(
                "breakpoints changed since the checkpoints covering step {steps} were taken \
                 (take a fresh one with `checkpoint`)"
            )
        } else if let Some(oldest) = self.oldest() {
            format!("oldest checkpoint is at step {oldest}, past step {steps}")
        } else {
            "no checkpoints recorded".to_string()
        })
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Number of entries held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no checkpoint is held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Oldest recorded step count.
    #[must_use]
    pub fn oldest(&self) -> Option<u64> {
        self.ring.front().map(|c| c.steps)
    }

    /// Newest recorded step count.
    #[must_use]
    pub fn newest(&self) -> Option<u64> {
        self.ring.back().map(|c| c.steps)
    }

    /// Per-entry `(steps, raw bytes, compressed bytes)` rows, oldest first.
    #[must_use]
    pub fn rows(&self) -> Vec<(u64, usize, usize)> {
        self.ring.iter().map(|c| (c.steps, c.raw_len, c.blob.len())).collect()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            len: self.ring.len(),
            cap: self.cap,
            oldest: self.oldest(),
            newest: self.newest(),
            compressed: self.ring.iter().map(|c| c.blob.len()).sum(),
            raw: self.ring.iter().map(|c| c.raw_len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut s = CheckpointStore::new(2);
        s.push(10, 17, 0, 0, b"ten");
        s.push(20, 17, 0, 0, b"twenty");
        s.push(30, 17, 0, 0, b"thirty");
        assert_eq!(s.len(), 2);
        assert_eq!(s.oldest(), Some(20));
        assert_eq!(s.newest(), Some(30));
        let err = s.best_at_or_before(15, 0).unwrap_err();
        assert!(err.contains("oldest checkpoint is at step 20"), "{err}");
    }

    #[test]
    fn lookup_round_trips_and_picks_newest_eligible() {
        let mut s = CheckpointStore::new(8);
        s.push(5, 17, 0, 0, b"five");
        s.push(9, 5, 0x1000, 0, b"nine");
        s.push(14, 23, 0, 0, b"fourteen");
        let (steps, sig, code, image) = s.best_at_or_before(13, 0).unwrap();
        assert_eq!((steps, sig, code), (9, 5, 0x1000));
        assert_eq!(image, b"nine");
        let (steps, ..) = s.best_at_or_before(14, 0).unwrap();
        assert_eq!(steps, 14);
    }

    #[test]
    fn stale_generation_is_a_typed_refusal() {
        let mut s = CheckpointStore::new(8);
        s.push(5, 17, 0, 3, b"five");
        let err = s.best_at_or_before(10, 4).unwrap_err();
        assert!(err.contains("breakpoints changed"), "{err}");
        // A matching-generation entry behind the stale one still answers.
        let mut s = CheckpointStore::new(8);
        s.push(5, 17, 0, 4, b"five");
        s.push(9, 17, 0, 3, b"nine");
        let (steps, ..) = s.best_at_or_before(10, 4).unwrap();
        assert_eq!(steps, 5);
    }

    #[test]
    fn recapture_at_same_step_replaces() {
        let mut s = CheckpointStore::new(8);
        s.push(5, 17, 0, 0, b"old");
        s.push(5, 5, 7, 1, b"new");
        assert_eq!(s.len(), 1);
        let (steps, sig, code, image) = s.best_at_or_before(5, 1).unwrap();
        assert_eq!((steps, sig, code), (5, 5, 7));
        assert_eq!(image, b"new");
    }

    #[test]
    fn empty_store_reports_no_checkpoints() {
        let s = CheckpointStore::default();
        assert!(s.is_empty());
        let err = s.best_at_or_before(0, 0).unwrap_err();
        assert!(err.contains("no checkpoints recorded"), "{err}");
    }
}
