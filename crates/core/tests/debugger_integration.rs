//! End-to-end debugger tests: the full ldb pipeline — compile with `-g`,
//! spawn under a nub, load PostScript symbol tables and loader tables,
//! plant breakpoints at stopping points, walk stacks, print values through
//! the abstract-memory DAG, and evaluate expressions through the
//! expression server.

use ldb_cc::driver::{compile, CompileOpts, Compiled};
use ldb_cc::{nm, pssym};
use ldb_core::{Ldb, StopEvent};
use ldb_machine::{Arch, ByteOrder};

const FIB: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
"#;

fn build(arch: Arch, order: Option<ByteOrder>) -> (Compiled, String) {
    let c = compile("fib.c", FIB, arch, CompileOpts { order, ..Default::default() }).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    (c, loader)
}

fn spawn(ldb: &mut Ldb, arch: Arch, order: Option<ByteOrder>) -> (Compiled, usize) {
    let (c, loader) = build(arch, order);
    let id = ldb.spawn_program(&c.linked.image, &loader).unwrap();
    (c, id)
}

#[test]
fn break_print_and_continue_on_all_four_targets() {
    for arch in Arch::ALL {
        let mut ldb = Ldb::new();
        let (_c, _id) = spawn(&mut ldb, arch, None);

        // Breakpoint at fib's stopping point 7 (the i++ of Figure 1).
        ldb.break_at("fib", 7).unwrap();
        let ev = ldb.cont().unwrap();
        let StopEvent::Breakpoint { func, line, .. } = ev else {
            panic!("{arch}: {ev:?}");
        };
        assert_eq!(func, "fib", "{arch}");
        assert_eq!(line, 7, "{arch}"); // i++ is on source line 7

        // First hit: i is 2 and a[2] was just assigned.
        assert_eq!(ldb.print_var("i").unwrap(), "2", "{arch}");
        assert_eq!(ldb.print_var("n").unwrap(), "10", "{arch}");
        let a = ldb.print_var("a").unwrap();
        assert!(a.starts_with("{1, 1, 2, 0"), "{arch}: {a}");
        assert!(a.ends_with("...}"), "{arch}: array limit: {a}");

        // Backtrace: fib called from main.
        let (bt, _) = ldb.backtrace();
        let names: Vec<&str> = bt.iter().map(|(_, n, _, _)| n.as_str()).collect();
        assert!(names.starts_with(&["fib", "main"]), "{arch}: {names:?}");

        // Second hit: i is 3.
        let ev = ldb.cont().unwrap();
        assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
        assert_eq!(ldb.print_var("i").unwrap(), "3", "{arch}");

        // Remove the breakpoint and run to completion.
        let addr = ldb.target(0).breakpoints.addresses()[0];
        ldb.clear_breakpoint(addr).unwrap();
        let ev = ldb.cont().unwrap();
        assert_eq!(ev, StopEvent::Exited(0), "{arch}");
    }
}

#[test]
fn expression_evaluation_against_the_target() {
    for arch in [Arch::Mips, Arch::Vax] {
        let mut ldb = Ldb::new();
        spawn(&mut ldb, arch, None);
        ldb.break_at("fib", 9).unwrap(); // j<n in the print loop
        ldb.cont().unwrap();

        // Reads through the frame's abstract memory.
        assert_eq!(ldb.eval("j").unwrap(), "0", "{arch}");
        assert_eq!(ldb.eval("n").unwrap(), "10", "{arch}");
        assert_eq!(ldb.eval("a[4]").unwrap(), "5", "{arch}");
        assert_eq!(ldb.eval("a[4] + a[5] * 2").unwrap(), "21", "{arch}");
        assert_eq!(ldb.eval("j < n").unwrap(), "1", "{arch}");

        // Assignment through the abstract memories and the nub: change
        // the table the program is about to print.
        ldb.eval("a[0] = 42").unwrap();
        assert!(ldb.print_var("a").unwrap().starts_with("{42, 1, 2, 3, 5"), "{arch}");

        // Unknown identifiers and syntax errors are reported, not fatal.
        assert!(ldb.eval("nosuchvar").is_err(), "{arch}");
        assert!(ldb.eval("1 +").is_err(), "{arch}");
        // The session survives errors.
        assert_eq!(ldb.eval("n - 1").unwrap(), "9", "{arch}");

        let ev = loop {
            match ldb.cont().unwrap() {
                StopEvent::Breakpoint { .. } => continue,
                other => break other,
            }
        };
        assert_eq!(ev, StopEvent::Exited(0), "{arch}");
        // The target printed the mutated a[0].
        let m = ldb.detach_target_machine(0);
        assert!(m.starts_with("42 1 2 3 5 8 13 21 34 55"), "{arch}: {m}");
    }
}

#[test]
fn scope_rules_follow_the_uplink_tree() {
    let mut ldb = Ldb::new();
    spawn(&mut ldb, Arch::Sparc, None);
    // At stopping point 9 (j<n), j is visible but i is not: i belongs to
    // the sibling block (Figure 2's tree).
    ldb.break_at("fib", 9).unwrap();
    ldb.cont().unwrap();
    assert!(ldb.print_var("j").is_ok());
    assert!(ldb.print_var("i").is_err(), "i is in a sibling scope");
    assert!(ldb.print_var("a").is_ok(), "a is in an enclosing scope");
    assert!(ldb.print_var("n").is_ok(), "parameters are visible");
    assert!(ldb.print_var("zz").is_err());
}

#[test]
fn deep_recursion_backtrace_and_frame_selection() {
    let src = r#"
        int depth;
        int down(int k) {
            int here;
            here = k;
            if (k == 0) return here;
            return down(k - 1) + here;
        }
        int main(void) { depth = 4; return down(depth); }
    "#;
    for arch in Arch::ALL {
        let c = compile("rec.c", src, arch, CompileOpts::default()).unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let mut ldb = Ldb::new();
        ldb.spawn_program(&c.linked.image, &loader).unwrap();
        // Stop at the k == 0 check when the recursion has bottomed out.
        ldb.break_at("down", 2).unwrap();
        for _ in 0..5 {
            let ev = ldb.cont().unwrap();
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
        }
        // Five `down` activations above main.
        let (bt, _) = ldb.backtrace();
        let names: Vec<&str> = bt.iter().map(|(_, n, _, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["down", "down", "down", "down", "down", "main"],
            "{arch}: {names:?}"
        );
        // The local `here` differs per frame: 0 in the innermost, 4 in the
        // outermost call — reading parents goes through saved registers or
        // stack slots (alias memories).
        assert_eq!(ldb.print_var("here").unwrap(), "0", "{arch}");
        ldb.select_frame(2).unwrap();
        assert_eq!(ldb.print_var("here").unwrap(), "2", "{arch}");
        ldb.select_frame(4).unwrap();
        assert_eq!(ldb.print_var("here").unwrap(), "4", "{arch}");
        ldb.select_frame(0).unwrap();
        assert_eq!(ldb.print_var("k").unwrap(), "0", "{arch}");
    }
}

#[test]
fn cross_architecture_debugging_two_targets_at_once() {
    // "ldb can debug on multiple architectures simultaneously" — a MIPS
    // and a VAX target in one session, with dictionary-stack rebinding
    // when switching.
    let mut ldb = Ldb::new();
    let (_cm, mips) = spawn(&mut ldb, Arch::Mips, None);
    let (_cv, vax) = spawn(&mut ldb, Arch::Vax, None);

    ldb.select_target(mips).unwrap();
    ldb.break_at("fib", 7).unwrap();
    ldb.cont().unwrap();
    assert_eq!(ldb.print_var("i").unwrap(), "2");

    ldb.select_target(vax).unwrap();
    ldb.break_at("fib", 9).unwrap();
    ldb.cont().unwrap();
    assert_eq!(ldb.print_var("j").unwrap(), "0");

    // Back to the (still stopped) MIPS target.
    ldb.select_target(mips).unwrap();
    assert_eq!(ldb.print_var("i").unwrap(), "2");
    // Machine-dependent names rebound: &nregs differs per target.
    ldb.interp.run_str("&nregs").unwrap();
    assert_eq!(ldb.interp.pop().unwrap().as_int().unwrap(), 32);
    ldb.select_target(vax).unwrap();
    ldb.interp.run_str("&nregs").unwrap();
    assert_eq!(ldb.interp.pop().unwrap().as_int().unwrap(), 16);
}

#[test]
fn little_endian_mips_same_debugger_code() {
    // The same debugger code drives a little-endian MIPS; the register
    // memory makes byte order irrelevant.
    for order in [ByteOrder::Big, ByteOrder::Little] {
        let mut ldb = Ldb::new();
        spawn(&mut ldb, Arch::Mips, Some(order));
        ldb.break_at("fib", 7).unwrap();
        ldb.cont().unwrap();
        assert_eq!(ldb.print_var("i").unwrap(), "2", "{order:?}");
        let a = ldb.print_var("a").unwrap();
        assert!(a.starts_with("{1, 1, 2"), "{order:?}: {a}");
    }
}

#[test]
fn faulting_program_reports_signal_and_stack() {
    let src = r#"
        int trouble(int *p) { return *p; }
        int main(void) { return trouble(0); }
    "#;
    let c = compile("crash.c", src, Arch::M68k, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, Arch::M68k, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    let ev = ldb.cont().unwrap();
    let StopEvent::Fault { sig, code } = ev else { panic!("{ev:?}") };
    assert_eq!(sig, "SIGSEGV");
    assert_eq!(code, 0, "the faulting address");
    let (bt, _) = ldb.backtrace();
    let names: Vec<&str> = bt.iter().map(|(_, n, _, _)| n.as_str()).collect();
    assert_eq!(names, vec!["trouble", "main"], "{names:?}");
}

#[test]
fn register_enumeration_uses_arch_postscript() {
    let mut ldb = Ldb::new();
    spawn(&mut ldb, Arch::Mips, None);
    ldb.break_at("fib", 7).unwrap();
    ldb.cont().unwrap();
    let regs = ldb.registers().unwrap();
    assert_eq!(regs.len(), 32);
    assert_eq!(regs[29].0, "sp");
    assert!(regs[29].1 > 0x1000, "sp points into the stack");
    // i lives in s8 (r30) on the MIPS.
    assert_eq!(regs[30].0, "s8");
    assert_eq!(regs[30].1, 2);
}

/// Pull the final program output out of a spawned nub after it exited.
trait MachineOut {
    fn detach_target_machine(&mut self, id: usize) -> String;
}

impl MachineOut for Ldb {
    fn detach_target_machine(&mut self, id: usize) -> String {
        let handle = self.take_nub_handle(id).expect("target was spawned by this test");
        let m = handle.join.join().expect("nub thread");
        m.output
    }
}
