//! Property tests for the abstract-memory DAG: store/fetch coherence
//! through every layer, at every access width, independent of alias
//! arrangement.

use std::rc::Rc;

use ldb_core::amemory::{
    AbstractMemory, AliasMemory, AliasTarget, FakeMemory, JoinedMemory, RegisterMemory,
};
use proptest::prelude::*;

fn dag() -> (Rc<FakeMemory>, Rc<JoinedMemory>) {
    let fake = Rc::new(FakeMemory::default());
    let mut alias = AliasMemory::new(fake.clone());
    for r in 0..32i64 {
        alias.alias('r', r, AliasTarget::Mem('d', 0x1000 + 4 * r));
    }
    for f in 0..16i64 {
        alias.alias('f', f, AliasTarget::Mem('d', 0x2000 + 8 * f));
    }
    alias.map_space('l', 'd', 0x8000);
    let alias = Rc::new(alias);
    let reg = Rc::new(RegisterMemory::new(alias.clone() as _, &[('r', 4), ('f', 8)]));
    let joined = Rc::new(
        JoinedMemory::new()
            .route('r', reg.clone())
            .route('f', reg)
            .route('l', alias)
            .fallback(fake.clone()),
    );
    (fake, joined)
}

proptest! {
    #[test]
    fn register_store_fetch_round_trips(r in 0i64..32, v: u32) {
        let (_, joined) = dag();
        joined.store('r', r, 4, v as u64).unwrap();
        prop_assert_eq!(joined.fetch('r', r, 4).unwrap(), v as u64);
        // Sub-word views agree with the word, independent of byte order.
        prop_assert_eq!(joined.fetch('r', r, 1).unwrap(), (v & 0xff) as u64);
        prop_assert_eq!(joined.fetch('r', r, 2).unwrap(), (v & 0xffff) as u64);
    }

    #[test]
    fn subword_register_stores_merge(r in 0i64..32, v: u32, b: u8) {
        let (_, joined) = dag();
        joined.store('r', r, 4, v as u64).unwrap();
        joined.store('r', r, 1, b as u64).unwrap();
        let expect = (v & !0xff) | b as u32;
        prop_assert_eq!(joined.fetch('r', r, 4).unwrap(), expect as u64);
    }

    #[test]
    fn frame_locals_map_linearly(off in -512i64..512, v: u32) {
        let (fake, joined) = dag();
        joined.store('l', off, 4, v as u64).unwrap();
        // The datum landed at vfp + off in the data space.
        prop_assert_eq!(fake.fetch('d', 0x8000 + off, 4).unwrap(), v as u64);
        prop_assert_eq!(joined.fetch('l', off, 4).unwrap(), v as u64);
    }

    #[test]
    fn registers_and_data_do_not_interfere(r in 0i64..32, a in 0i64..0x400, v: u32, w: u32) {
        let (_, joined) = dag();
        joined.store('r', r, 4, v as u64).unwrap();
        joined.store('d', a, 4, w as u64).unwrap(); // below the alias area
        prop_assert_eq!(joined.fetch('r', r, 4).unwrap(), v as u64);
        prop_assert_eq!(joined.fetch('d', a, 4).unwrap(), w as u64);
    }

    #[test]
    fn float_registers_hold_doubles(f in 0i64..16, v: f64) {
        let (_, joined) = dag();
        joined.store('f', f, 8, v.to_bits()).unwrap();
        let bits = joined.fetch('f', f, 8).unwrap();
        prop_assert_eq!(bits, v.to_bits());
    }
}
