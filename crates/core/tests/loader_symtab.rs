//! Unit-level tests for the loader and symbol-table operations, using
//! hand-written loader tables (no compiler involved).

use std::cell::RefCell;
use std::rc::Rc;

use ldb_core::amemory::{AbstractMemory, FakeMemory};
use ldb_core::psops::{make_debug_dict, EvalCtx};
use ldb_core::{symtab, Loader};
use ldb_postscript::Interp;

const HAND_TABLE: &str = r#"
<< /symtab
   /S1 << /name (x) /type << /decl (int %s) /printer {INT} >> /sourcefile (t.c)
          /sourcey 1 /sourcex 5 /kind (variable)
          /where {(_stanchor_t) 2 LazyData} >> def
   /S2 << /name (f) /type << /decl (int %s()) >> /sourcefile (t.c) /sourcey 2 /sourcex 5
          /kind (procedure)
          /loci [ [2 7 {(_stanchor_t) 0 LazyAddr} S1] [3 1 {(_stanchor_t) 1 LazyAddr} S1] ] >> def
   << /procs [ S2 ] /externs << /f S2 /x S1 >> /statics << >>
      /sourcemap << (t.c) [ S2 ] >> /anchors [ /_stanchor_t ]
      /architecture (vax) >>
   /anchormap << /_stanchor_t 16#4000 >>
   /proctable [ 16#1000 (__start) 16#1040 (_f) ]
>>
"#;

fn setup() -> (Interp, Loader, Rc<FakeMemory>) {
    let mut interp = Interp::new();
    let ctx = Rc::new(RefCell::new(EvalCtx::new()));
    let dict = make_debug_dict(&mut interp, ctx.clone());
    interp.push_dict(dict);
    let fake = Rc::new(FakeMemory::default());
    // Anchor table: slot 0 = stop0 addr, slot 1 = stop1 addr, slot 2 = &x.
    fake.store('d', 0x4000, 4, 0x1044).unwrap();
    fake.store('d', 0x4004, 4, 0x1052).unwrap();
    fake.store('d', 0x4008, 4, 0x5000).unwrap();
    fake.store('d', 0x5000, 4, 77).unwrap();
    ctx.borrow_mut().mem = Some(fake.clone());
    ctx.borrow_mut().anchors.insert("_stanchor_t".into(), 0x4000);
    let loader = Loader::load(&mut interp, HAND_TABLE).unwrap();
    (interp, loader, fake)
}

#[test]
fn loader_components() {
    let (_i, loader, _) = setup();
    assert_eq!(loader.arch, ldb_machine::Arch::Vax);
    assert_eq!(loader.anchors["_stanchor_t"], 0x4000);
    assert_eq!(loader.proc_addr("_f"), Some(0x1040));
    assert_eq!(loader.proc_containing(0x1045).map(|(a, n)| (a, n.to_string())),
               Some((0x1040, "_f".to_string())));
    assert_eq!(loader.proc_containing(0xfff), None);
    assert!(loader.proc_entry_by_name("f").is_some());
    assert!(loader.proc_entry_by_name("g").is_none());
    assert_eq!(loader.procs().len(), 1);
}

#[test]
fn stop_addresses_resolve_lazily_and_memoize() {
    let (mut i, loader, _) = setup();
    let f = loader.proc_entry_by_name("f").unwrap();
    assert_eq!(symtab::stop_addr(&mut i, &f, 0).unwrap(), 0x1044);
    assert_eq!(symtab::stop_addr(&mut i, &f, 1).unwrap(), 0x1052);
    // Memoized: the loci element now holds a literal integer.
    assert_eq!(symtab::stop_addr(&mut i, &f, 0).unwrap(), 0x1044);
    assert!(symtab::stop_addr(&mut i, &f, 9).is_err());
    // Reverse lookup.
    let (entry, idx) = symtab::stop_at_addr(&mut i, &loader, 0x1052).unwrap().unwrap();
    assert_eq!(idx, 1);
    assert_eq!(symtab::entry_name(&entry).unwrap(), "f");
    assert!(symtab::stop_at_addr(&mut i, &loader, 0x1046).unwrap().is_none());
}

#[test]
fn loci_and_line_lookup() {
    let (mut i, loader, _) = setup();
    let f = loader.proc_entry_by_name("f").unwrap();
    let loci = symtab::loci_of(&mut i, &f).unwrap();
    assert_eq!(loci.len(), 2);
    assert_eq!((loci[0].line, loci[0].col), (2, 7));
    let stops = symtab::stops_at_line(&mut i, &loader, 3).unwrap();
    assert_eq!(stops.len(), 1);
    assert_eq!(stops[0].1, 1);
    assert!(symtab::stops_at_line(&mut i, &loader, 99).unwrap().is_empty());
}

#[test]
fn name_resolution_walks_uplinks_then_statics_then_externs() {
    let (mut i, loader, _) = setup();
    let f = loader.proc_entry_by_name("f").unwrap();
    // x is the visible symbol at both stops.
    let e = symtab::resolve_name(&mut i, &loader, &f, 0, "x").unwrap().unwrap();
    assert_eq!(symtab::entry_name(&e).unwrap(), "x");
    // f resolves through externs.
    assert!(symtab::resolve_name(&mut i, &loader, &f, 0, "f").unwrap().is_some());
    assert!(symtab::resolve_name(&mut i, &loader, &f, 0, "nope").unwrap().is_none());
    let chain = symtab::visible_chain(&mut i, &f, 0).unwrap();
    assert_eq!(chain, vec!["x".to_string()]);
}

#[test]
fn where_resolution_through_the_anchor_table() {
    let (mut i, loader, fake) = setup();
    let x = loader.proc_entry_by_name("x").unwrap();
    i.push(x.clone());
    i.run_str("SymLoc").unwrap();
    let loc = i.pop().unwrap().as_location().unwrap();
    assert_eq!(loc, ldb_postscript::Location::Addr { space: 'd', offset: 0x5000 });
    // And the value there is fetchable.
    assert_eq!(fake.fetch('d', 0x5000, 4).unwrap(), 77);
}

#[test]
fn malformed_tables_are_rejected() {
    for bad in [
        "42",                                     // not a dict
        "<< /anchormap << >> /proctable [ ] >>",  // missing symtab
        "<< /symtab << >> /proctable [ ] >>",     // missing anchormap
        "<< /symtab << >> /anchormap << >> >>",   // missing proctable
        "<< /symtab << /architecture (pdp11) /procs [ ] >> /anchormap << >> /proctable [ ] >>",
    ] {
        let mut i = Interp::new();
        let ctx = Rc::new(RefCell::new(EvalCtx::new()));
        let d = make_debug_dict(&mut i, ctx);
        i.push_dict(d);
        assert!(Loader::load(&mut i, bad).is_err(), "{bad}");
    }
}
