//! A dbx/gdb-style baseline debugger front end.
//!
//! The paper's Table 2 times "dbx: start and read a.out for lcc" and "gdb:
//! start and read a.out for lcc" against ldb's phases, and Sec. 7 compares
//! symbol-table sizes against binary stabs. This crate is that baseline: a
//! conventional debugger front end that reads the compiler's *binary*
//! stabs (see [`ldb_cc::stabs`]) into machine-level lookup structures —
//! no embedded interpreter, no PostScript, and correspondingly
//! machine-dependent knowledge baked in.

use std::collections::HashMap;

use ldb_cc::stabs::{decode, n_type, Stab};

/// A function, as the baseline debugger models it.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSym {
    /// Name with type descriptor stripped.
    pub name: String,
    /// Entry address.
    pub addr: u32,
    /// Line-number table: (line, address).
    pub lines: Vec<(u16, u32)>,
    /// Variables: (name, kind letter, value) where kind is `r`egister,
    /// `p`arameter, `l`ocal, or `s`tatic.
    pub vars: Vec<(String, char, u32)>,
}

/// The baseline debugger's symbol tables.
#[derive(Debug, Default, Clone)]
pub struct StabsDebugger {
    /// Source file name.
    pub source: String,
    /// Functions by name.
    pub funcs: Vec<FuncSym>,
    /// Global/static data symbols: name → address.
    pub globals: HashMap<String, u32>,
    func_index: HashMap<String, usize>,
}

/// Errors reading stabs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StabsError {
    /// The blob did not parse.
    Malformed,
}

impl std::fmt::Display for StabsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed stabs")
    }
}

impl std::error::Error for StabsError {}

impl StabsDebugger {
    /// "Start and read a.out": parse the stabs blob into lookup
    /// structures. This is the phase the paper times for dbx and gdb.
    ///
    /// # Errors
    /// [`StabsError::Malformed`] when the blob does not decode.
    pub fn read(blob: &[u8]) -> Result<StabsDebugger, StabsError> {
        let stabs = decode(blob).ok_or(StabsError::Malformed)?;
        let mut dbg = StabsDebugger::default();
        let mut cur: Option<FuncSym> = None;
        for s in &stabs {
            match s.typ {
                n_type::N_SO => dbg.source = s.string.clone(),
                n_type::N_FUN => {
                    if let Some(f) = cur.take() {
                        dbg.push_func(f);
                    }
                    cur = Some(FuncSym {
                        name: base_name(&s.string),
                        addr: s.value,
                        lines: Vec::new(),
                        vars: Vec::new(),
                    });
                }
                n_type::N_SLINE => {
                    if let Some(f) = cur.as_mut() {
                        f.lines.push((s.desc, s.value));
                    }
                }
                n_type::N_RSYM | n_type::N_PSYM | n_type::N_LSYM => {
                    if let Some(f) = cur.as_mut() {
                        let kind = match s.typ {
                            n_type::N_RSYM => 'r',
                            n_type::N_PSYM => 'p',
                            _ => 'l',
                        };
                        f.vars.push((base_name(&s.string), kind, s.value));
                    }
                }
                n_type::N_GSYM | n_type::N_STSYM => {
                    if let Some(f) = cur.as_mut() {
                        f.vars.push((base_name(&s.string), 's', s.value));
                    } else {
                        dbg.globals.insert(base_name(&s.string), s.value);
                    }
                }
                _ => {}
            }
        }
        if let Some(f) = cur.take() {
            dbg.push_func(f);
        }
        Ok(dbg)
    }

    fn push_func(&mut self, f: FuncSym) {
        self.func_index.insert(f.name.clone(), self.funcs.len());
        self.funcs.push(f);
    }

    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncSym> {
        self.func_index.get(name).map(|&i| &self.funcs[i])
    }

    /// The address of the first stopping point on `line` (any function).
    pub fn addr_of_line(&self, line: u16) -> Option<u32> {
        for f in &self.funcs {
            for &(l, a) in &f.lines {
                if l == line {
                    return Some(a);
                }
            }
        }
        None
    }

    /// The function containing `pc`.
    pub fn func_containing(&self, pc: u32) -> Option<&FuncSym> {
        self.funcs
            .iter()
            .filter(|f| f.addr <= pc)
            .max_by_key(|f| f.addr)
    }

    /// Total number of symbols loaded (for startup statistics).
    pub fn symbol_count(&self) -> usize {
        self.funcs.iter().map(|f| 1 + f.vars.len() + f.lines.len()).sum::<usize>()
            + self.globals.len()
    }
}

/// Strip the `:type` descriptor from a stab string.
fn base_name(s: &str) -> String {
    s.split(':').next().unwrap_or(s).to_string()
}

/// Re-export of the raw stab decoder, for benches.
pub fn parse_raw(blob: &[u8]) -> Option<Vec<Stab>> {
    decode(blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldb_cc::driver::{compile, CompileOpts};
    use ldb_machine::Arch;

    const SRC: &str = r#"
        static int tbl[4] = {1,2,3,4};
        int add(int a, int b) { int s; s = a + b; return s; }
        int main(void) { return add(2, 3); }
    "#;

    fn build() -> (ldb_cc::driver::Compiled, Vec<u8>) {
        let c = compile("t.c", SRC, Arch::Mips, CompileOpts::default()).unwrap();
        let blob = ldb_cc::stabs::emit(&c);
        (c, blob)
    }

    #[test]
    fn reads_functions_lines_and_vars() {
        let (c, blob) = build();
        let dbg = StabsDebugger::read(&blob).unwrap();
        assert_eq!(dbg.source, "t.c");
        let add = dbg.func("add").unwrap();
        assert_eq!(add.addr, c.linked.func_addrs[0].1);
        assert!(!add.lines.is_empty());
        assert!(add.vars.iter().any(|(n, k, _)| n == "a" && *k == 'p'));
        assert!(add.vars.iter().any(|(n, k, _)| n == "s" && *k == 'r'));
        assert!(dbg.globals.contains_key("tbl"));
    }

    #[test]
    fn line_and_pc_lookup() {
        let (c, blob) = build();
        let dbg = StabsDebugger::read(&blob).unwrap();
        // Function entry stopping point address matches the linker's.
        let add = dbg.func("add").unwrap();
        assert_eq!(add.lines[0].1, c.linked.stop_addrs[0][0]);
        assert_eq!(dbg.func_containing(add.addr + 2).unwrap().name, "add");
        assert!(dbg.addr_of_line(3).is_some());
        assert!(dbg.addr_of_line(999).is_none());
    }

    #[test]
    fn symbol_count_is_plausible() {
        let (_, blob) = build();
        let dbg = StabsDebugger::read(&blob).unwrap();
        assert!(dbg.symbol_count() > 10, "{}", dbg.symbol_count());
    }

    #[test]
    fn malformed_rejected() {
        assert!(matches!(StabsDebugger::read(&[1, 2, 3]), Err(StabsError::Malformed)));
    }
}
