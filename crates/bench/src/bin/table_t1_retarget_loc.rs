//! T1 — the paper's Sec. 4.3 table: lines of machine-dependent code per
//! target (Debugger / PostScript / Nub) against the shared code.
//!
//! Paper (lines of Modula-3 / PostScript / C+asm):
//! ```text
//!                MIPS  68020  SPARC  VAX   shared
//! Debugger (M3)   476    187    206   199   12193
//! PostScript       15     18     18    13    1203
//! Nub (C, asm)     34     73      5    72     632
//! ```

use ldb_bench::{file_loc, ws};

fn main() {
    let targets = ["mips", "m68k", "sparc", "vax"];

    // Debugger: per-target stack walkers + compiler back ends + encoders
    // (everything retargeting one more CPU requires writing).
    let dbg: Vec<usize> = targets
        .iter()
        .map(|t| {
            file_loc(&ws(&format!("crates/core/src/frame/{t}.rs")))
                + file_loc(&ws(&format!("crates/cc/src/gen/{t}.rs")))
                + file_loc(&ws(&format!("crates/machine/src/encode/{t}.rs")))
        })
        .collect();
    let ps: Vec<usize> =
        targets.iter().map(|t| file_loc(&ws(&format!("crates/core/src/ps/{t}.ps")))).collect();
    let nub: Vec<usize> =
        targets.iter().map(|t| file_loc(&ws(&format!("crates/nub/src/arch/{t}.rs")))).collect();

    let shared_dbg: usize = [
        "crates/core/src/amemory.rs",
        "crates/core/src/breakpoint.rs",
        "crates/core/src/debugger.rs",
        "crates/core/src/frame/mod.rs",
        "crates/core/src/loader.rs",
        "crates/core/src/psops.rs",
        "crates/core/src/symtab.rs",
        "crates/core/src/lib.rs",
        "crates/postscript/src/interp.rs",
        "crates/postscript/src/scanner.rs",
        "crates/postscript/src/object.rs",
        "crates/postscript/src/dict.rs",
        "crates/postscript/src/pretty.rs",
        "crates/postscript/src/file.rs",
        "crates/postscript/src/error.rs",
        "crates/postscript/src/ops/mod.rs",
        "crates/postscript/src/ops/stackops.rs",
        "crates/postscript/src/ops/arith.rs",
        "crates/postscript/src/ops/control.rs",
        "crates/postscript/src/ops/dictops.rs",
        "crates/postscript/src/ops/arrayops.rs",
        "crates/postscript/src/ops/convops.rs",
        "crates/postscript/src/ops/ioops.rs",
        "crates/postscript/src/ops/debugops.rs",
        "crates/cc/src/gen/mod.rs",
        "crates/cc/src/sched.rs",
        "crates/machine/src/cpu.rs",
        "crates/machine/src/encode/mod.rs",
    ]
    .iter()
    .map(|p| file_loc(&ws(p)))
    .sum();
    let shared_ps = file_loc(&ws("crates/core/src/ps/base.ps"));
    let shared_nub: usize = [
        "crates/nub/src/nub.rs",
        "crates/nub/src/proto.rs",
        "crates/nub/src/transport.rs",
        "crates/nub/src/client.rs",
        "crates/nub/src/arch/mod.rs",
    ]
    .iter()
    .map(|p| file_loc(&ws(p)))
    .sum();

    println!("T1: machine-dependent lines of code per target (paper Sec. 4.3)");
    println!("{:<14} {:>6} {:>6} {:>6} {:>6} {:>8}", "", "MIPS", "68020", "SPARC", "VAX", "shared");
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "Debugger (Rust)", dbg[0], dbg[1], dbg[2], dbg[3], shared_dbg
    );
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "PostScript", ps[0], ps[1], ps[2], ps[3], shared_ps
    );
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "Nub (Rust)", nub[0], nub[1], nub[2], nub[3], shared_nub
    );
    let totals: Vec<usize> = (0..4).map(|i| dbg[i] + ps[i] + nub[i]).collect();
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "total",
        totals[0],
        totals[1],
        totals[2],
        totals[3],
        shared_dbg + shared_ps + shared_nub
    );
    println!();
    println!(
        "paper:  MIPS 525 / 68020 278 / SPARC 229 / VAX 284 machine-dependent lines; \
         shared 14028. Shape to check: MIPS largest (no frame pointer), SPARC's nub smallest."
    );
}
