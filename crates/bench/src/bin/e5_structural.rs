//! E5/E6 — the paper's structural claims:
//!
//! * Sec. 5: "the expression server code that rewrites lcc's intermediate
//!   representation into PostScript is only 124 lines of C, even though
//!   the intermediate representation has 112 operators";
//! * Sec. 7: "about 1000 lines of C to generate PostScript versus about
//!   300 for stabs".

use ldb_bench::{file_loc, ws};
use ldb_cc::ir::operator_inventory;

fn main() {
    println!("E5/E6: structural counts (paper analogs)");
    let ops = operator_inventory().len();
    let rewriter = file_loc(&ws("crates/exprserver/src/rewrite.rs"));
    println!(
        "  IR operators: {ops}   (paper: 112)\n  IR->PostScript rewriter: {rewriter} lines \
         (paper: 124, excluding tests here too)",
    );
    let pssym = file_loc(&ws("crates/cc/src/pssym.rs"));
    let stabs = file_loc(&ws("crates/cc/src/stabs.rs"));
    println!(
        "  PostScript symbol-table emitter: {pssym} lines vs stabs emitter: {stabs} lines \
         (paper: ~1000 vs ~300; check PS emitter is the larger)"
    );
}
