//! E4 — paper Sec. 5: "We can defer not only the interpretation but also
//! the lexical analysis of PostScript code by quoting it with parentheses;
//! the scanner reads the resulting string quickly. This deferral technique
//! reduces by 40% the time required to read a large symbol table."

use std::time::Instant;

use ldb_bench::synth_program;
use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_machine::Arch;

fn read_time(loader_ps: &str, reps: u32) -> f64 {
    let mut total = 0.0;
    for _ in 0..reps {
        let mut ldb = ldb_core::Ldb::new();
        let t = Instant::now();
        let loader = ldb_core::Loader::load(&mut ldb.interp, loader_ps).unwrap();
        total += t.elapsed().as_secs_f64();
        std::hint::black_box(loader.proctable.len());
    }
    total * 1e3 / reps as f64
}

fn main() {
    println!("E4: deferred lexing of quoted PostScript (paper: 40% less read time)");
    let big = synth_program(1000);
    let c = compile("synth.c", &big, Arch::Mips, CompileOpts::default()).unwrap();
    let eager_ps = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Eager);
    let deferred_ps = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let eager = nm::loader_table_for(&c.linked.image, &eager_ps);
    let deferred = nm::loader_table_for(&c.linked.image, &deferred_ps);
    let te = read_time(&eager, 5);
    let td = read_time(&deferred, 5);
    println!("  eager    {{...}} procedures: {:>8.2} ms  ({} bytes)", te, eager.len());
    println!("  deferred (...) cvx strings: {:>8.2} ms  ({} bytes)", td, deferred.len());
    println!("  reduction: {:.0}%  (paper: 40%)", (1.0 - td / te) * 100.0);
}
