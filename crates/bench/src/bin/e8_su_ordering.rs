//! Ablation: Sethi-Ullman operand ordering in the code generator.
//!
//! The generator evaluates the register-hungrier operand of each binary
//! operation first, so the other side's single live value never sits
//! across the expensive computation. This measures what that buys on a
//! register-starved CISC target: the deepest right-leaning comb
//! expression each mode can compile, and code size on the workload
//! suite.

use ldb_bench::workload_suite;
use ldb_cc::driver::{compile, CompileOpts};
use ldb_machine::Arch;

/// A right-leaning comb `a + (a * (a - (a & ...)))` of the given depth —
/// worst case for naive left-first evaluation (the left value is held
/// live at every level).
fn comb(depth: usize) -> String {
    let ops = ["+", "*", "-", "&", "^", "|"];
    let mut e = String::from("a");
    for d in 0..depth {
        e = format!("(a {} {e})", ops[d % ops.len()]);
    }
    format!("int main(void) {{ int a; a = 3; a = {e}; printf(\"%d\\n\", a); return 0; }}\n")
}

fn max_depth(arch: Arch, naive: bool) -> usize {
    let mut best = 0;
    for depth in 1..64 {
        let src = comb(depth);
        let opts = CompileOpts { naive_order: naive, ..Default::default() };
        match compile("comb.c", &src, arch, opts) {
            Ok(_) => best = depth,
            Err(_) => break,
        }
    }
    best
}

fn main() {
    println!("E8 ablation: Sethi-Ullman operand ordering (paper-era lcc labeller analog)");
    for arch in Arch::ALL {
        let su = max_depth(arch, false);
        let naive = max_depth(arch, true);
        println!(
            "  {arch:<6} deepest comb expression: naive l-to-r {naive:>2} levels, SU ordered {su:>2} levels"
        );
    }
    // Code size on the suite (MIPS, -g): ordering also shortens code by
    // avoiding spill-adjacent shuffling, though the effect is small.
    let mut with = 0u32;
    let mut without = 0u32;
    for (name, src) in workload_suite() {
        with += compile(name, &src, Arch::Mips, CompileOpts::default())
            .unwrap()
            .linked
            .stats
            .insn_count;
        without += compile(
            name,
            &src,
            Arch::Mips,
            CompileOpts { naive_order: true, ..Default::default() },
        )
        .unwrap()
        .linked
        .stats
        .insn_count;
    }
    println!(
        "  suite code size (MIPS -g): naive {without} insns, SU {with} ({:+.1}%)",
        (with as f64 / without as f64 - 1.0) * 100.0
    );
}
