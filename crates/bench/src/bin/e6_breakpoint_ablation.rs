//! Ablation: the paper's interim no-op breakpoint scheme versus the
//! single-step scheme its Sec. 7.1 proposes to replace it with.
//!
//! The design trade the paper describes: no-ops make "it possible to
//! specify a breakpoint implementation in four lines, but makes target
//! programs bigger and slower"; single-stepping "would eliminate the
//! no-ops emitted by lcc" at the cost of a nub/protocol extension and a
//! restore-step-replant dance on every resume.

use std::time::Instant;

use ldb_bench::workload_suite;
use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::{Ldb, StopEvent};
use ldb_machine::Arch;

fn main() {
    println!("E6 ablation: no-op breakpoints vs single-step breakpoints");

    // Cost 1: code size. The no-op scheme needs -g padding; the
    // single-step scheme debugs unpadded code.
    let mut with = 0u32;
    let mut without = 0u32;
    for (name, src) in workload_suite() {
        with += compile(name, &src, Arch::Mips, CompileOpts::default())
            .unwrap()
            .linked
            .stats
            .insn_count;
        without += compile(
            name,
            &src,
            Arch::Mips,
            CompileOpts { debug: false, ..Default::default() },
        )
        .unwrap()
        .linked
        .stats
        .insn_count;
    }
    println!(
        "  code size (MIPS suite): no-op scheme {with} insns, single-step scheme {without} \
         ({:.1}% saved)",
        (1.0 - without as f64 / with as f64) * 100.0
    );

    // Cost 2: resume latency. Hit the same breakpoint many times under
    // each scheme.
    let src = r#"
        int total;
        int tick(int k) { total += k; return total; }
        int main(void) { int i; for (i = 0; i < 200; i++) tick(i); return 0; }
    "#;
    let mut times = Vec::new();
    for (label, debug) in [("no-op scheme   ", true), ("single-step    ", false)] {
        let c = compile(
            "tick.c",
            src,
            Arch::Mips,
            CompileOpts { debug, ..Default::default() },
        )
        .unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let mut ldb = Ldb::new();
        ldb.spawn_program(&c.linked.image, &loader).unwrap();
        let addr = ldb.stop_address("tick", 1).unwrap();
        if debug {
            ldb.break_at("tick", 1).unwrap();
        } else {
            ldb.break_at_pc(addr).unwrap();
        }
        let t = Instant::now();
        let mut hits = 0u32;
        loop {
            match ldb.cont().unwrap() {
                StopEvent::Breakpoint { .. } => hits += 1,
                StopEvent::Exited(_) => break,
                other => panic!("{other:?}"),
            }
        }
        let el = t.elapsed().as_secs_f64() * 1e6 / hits as f64;
        println!("  resume latency, {label}: {el:>8.1} us/hit over {hits} hits");
        times.push(el);
    }
    println!(
        "  single-step resume costs {:.2}x the no-op skip (extra restore/step/replant round trips)",
        times[1] / times[0]
    );
}
