//! T2 — the paper's Sec. 7 startup-time table: the elapsed time of ldb's
//! initial phases, against the stabs baseline playing dbx/gdb.
//!
//! Paper (DECstation 5000/200):
//! ```text
//! Modula-3 initialization                    1.9 sec
//! Read initial PostScript                    1.6
//! Read symbol table for hello.c (1 line)     2.2
//! Read symbol table for lcc (13,000 lines)   5.5
//! Connect to hello.c (one machine)           1.8
//! Connect to lcc (one machine)               5.1
//! Connect to lcc (two MIPS machines)         6.2
//! Connect to lcc (host MIPS, target SPARC)   5.0
//! dbx: start and read a.out for lcc          1.5
//! gdb: start and read a.out for lcc          1.1
//! ```
//! Absolute numbers are ~3 orders of magnitude smaller on modern hardware;
//! the *shape* to check: symbol-table reading dominates and scales with
//! program size; connecting to a second machine costs about one more
//! connect; cross-architecture costs the same as same-architecture; the
//! stabs baselines are several times faster than reading PostScript.

use std::time::Instant;

use ldb_bench::{synth_program, HELLO_C};
use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym, stabs};
use ldb_core::Ldb;
use ldb_machine::Arch;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (ms(t.elapsed()), r)
}

fn main() {
    let big_src = synth_program(1000); // ≈ 13,000 lines
    println!(
        "workloads: hello.c ({} lines), synth.c ({} lines)",
        HELLO_C.lines().count(),
        big_src.lines().count()
    );

    let hello = compile("hello.c", HELLO_C, Arch::Mips, CompileOpts::default()).unwrap();
    let big = compile("synth.c", &big_src, Arch::Mips, CompileOpts::default()).unwrap();
    let big_sparc = compile("synth.c", &big_src, Arch::Sparc, CompileOpts::default()).unwrap();

    let hello_ps = pssym::emit(&hello.unit, &hello.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let big_ps = pssym::emit(&big.unit, &big.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let big_sparc_ps =
        pssym::emit(&big_sparc.unit, &big_sparc.funcs, Arch::Sparc, pssym::PsMode::Deferred);
    let hello_loader = nm::loader_table_for(&hello.linked.image, &hello_ps);
    let big_loader = nm::loader_table_for(&big.linked.image, &big_ps);
    let big_sparc_loader = nm::loader_table_for(&big_sparc.linked.image, &big_sparc_ps);

    // Phase 1: interpreter initialization (the Modula-3 runtime analog).
    let (t_init, _) = time(ldb_postscript::Interp::new);
    // Phase 2: read the initial PostScript (debug dictionary, printers,
    // prelude) — what Ldb::new does beyond a bare interpreter.
    let (t_both, _) = time(Ldb::new);
    let t_initial_ps = (t_both - t_init).max(0.0);

    // Phase 3/4: read symbol tables (loader table interpretation only).
    let (t_hello_sym, _) = time(|| {
        let mut ldb = Ldb::new();
        ldb_core::Loader::load(&mut ldb.interp, &hello_loader).unwrap()
    });
    let (t_big_sym, _) = time(|| {
        let mut ldb = Ldb::new();
        ldb_core::Loader::load(&mut ldb.interp, &big_loader).unwrap()
    });

    // Phase 5/6: connect (spawn under a nub, read tables, first stop,
    // build frames).
    let (t_conn_hello, _) = time(|| {
        let mut ldb = Ldb::new();
        ldb.spawn_program(&hello.linked.image, &hello_loader).unwrap();
        ldb
    });
    let (t_conn_big, _) = time(|| {
        let mut ldb = Ldb::new();
        ldb.spawn_program(&big.linked.image, &big_loader).unwrap();
        ldb
    });
    // Phase 7: two MIPS machines in one session.
    let (t_conn_two, _) = time(|| {
        let mut ldb = Ldb::new();
        ldb.spawn_program(&big.linked.image, &big_loader).unwrap();
        ldb.spawn_program(&big.linked.image, &big_loader).unwrap();
        ldb
    });
    // Phase 8: cross-architecture (the debugger code is identical; only
    // the target differs).
    let (t_conn_cross, _) = time(|| {
        let mut ldb = Ldb::new();
        ldb.spawn_program(&big_sparc.linked.image, &big_sparc_loader).unwrap();
        ldb
    });

    // Sandbox overhead on the dominant phase: symbol-table reading runs
    // under the PR 3 execution budget (fuel + allocation accounting) by
    // default; compare against an unlimited budget on the big table.
    let (t_big_sym_unbudgeted, _) = time(|| {
        let mut ldb = Ldb::new();
        ldb_core::Loader::load_budgeted(
            &mut ldb.interp,
            &big_loader,
            ldb_postscript::Budget::UNLIMITED,
        )
        .unwrap()
    });

    // Flight-recorder overhead on the connect phase: the same big-unit
    // connect with the recorder journaling every wire frame, module
    // load, and stop into the in-memory ring (the `info trace` default)
    // versus the disabled Trace::off() fast path.
    let conn_with = |trace: ldb_trace::Trace| -> f64 {
        let (t, _) = time(|| {
            let mut ldb = Ldb::new();
            ldb.set_trace(trace.clone());
            ldb.spawn_program(&big.linked.image, &big_loader).unwrap();
            ldb
        });
        t
    };
    let t_conn_untraced = conn_with(ldb_trace::Trace::off());
    let t_conn_traced = conn_with(ldb_trace::Trace::ring(4096));

    // Wire round trips for the big-unit connect, block cache on vs off
    // (the T2 time barely moves in-process, but over a real wire each
    // transaction is a latency-bound round trip).
    let conn_txns = |cache: bool| -> u64 {
        let mut ldb = Ldb::new();
        ldb.set_wire_cache(cache);
        ldb.spawn_program(&big.linked.image, &big_loader).unwrap();
        let txns = ldb.target(0).client.borrow().metrics().transactions;
        txns
    };
    let (txn_cached, txn_plain) = (conn_txns(true), conn_txns(false));

    // Baselines: dbx/gdb reading binary stabs for the big program.
    let hello_stabs = stabs::emit(&hello);
    let big_stabs = stabs::emit(&big);
    let (t_dbx, dbg) = time(|| ldb_stabs::StabsDebugger::read(&big_stabs).unwrap());
    let (t_gdb, _) = time(|| ldb_stabs::parse_raw(&big_stabs).unwrap());
    let _ = hello_stabs;

    println!();
    println!("T2: startup phases (milliseconds; paper numbers were seconds)");
    for (label, v, paper) in [
        ("Interpreter initialization", t_init, 1.9),
        ("Read initial PostScript", t_initial_ps, 1.6),
        ("Read symbol table, hello.c (1 line)", t_hello_sym, 2.2),
        ("Read symbol table, synth.c (~13k lines)", t_big_sym, 5.5),
        ("Connect to hello.c (one machine)", t_conn_hello, 1.8),
        ("Connect to synth.c (one machine)", t_conn_big, 5.1),
        ("Connect to synth.c (two MIPS machines)", t_conn_two, 6.2),
        ("Connect to synth.c (MIPS host, SPARC target)", t_conn_cross, 5.0),
        ("dbx baseline: read stabs for synth.c", t_dbx, 1.5),
        ("gdb baseline: parse stabs for synth.c", t_gdb, 1.1),
    ] {
        println!("  {label:<46} {v:>9.2} ms   (paper {paper:>4.1} s)");
    }
    println!();
    println!(
        "shape checks: big symbol table {}x hello's; two machines ≈ one extra connect \
         ({:.2} vs {:.2}+{:.2}); cross-arch ≈ same-arch ({:.2} vs {:.2}); \
         stabs baseline {}x faster than PostScript reading ({} symbols loaded)",
        (t_big_sym / t_hello_sym.max(0.001)) as u32,
        t_conn_two,
        t_conn_big,
        t_conn_big - t_conn_hello.min(t_conn_big),
        t_conn_cross,
        t_conn_big,
        (t_big_sym / t_dbx.max(0.001)) as u32,
        dbg.symbol_count(),
    );
    println!(
        "wire round trips, big-unit connect: {txn_cached} with block cache, {txn_plain} without"
    );
    println!(
        "sandbox overhead, big symbol table: {:.2} ms budgeted vs {:.2} ms unbudgeted ({:+.1}%)",
        t_big_sym,
        t_big_sym_unbudgeted,
        (t_big_sym / t_big_sym_unbudgeted.max(0.001) - 1.0) * 100.0
    );
    println!(
        "flight recorder, big-unit connect: {:.2} ms traced vs {:.2} ms untraced ({:+.1}%)",
        t_conn_traced,
        t_conn_untraced,
        (t_conn_traced / t_conn_untraced.max(0.001) - 1.0) * 100.0
    );

    // Compiled lazy connect: precompile the big unit's symbol table into
    // shared bytecode once, then connect headers-only. First measure the
    // classic eager plan connect on the same program, then the one-time
    // bytecode compile (what a daemon's first tenant pays into the
    // shared cache), then the steady-state connect every later tenant
    // gets.
    use ldb_cc::driver::{compile_many, program_load_plan};
    use ldb_core::{CompiledTable, ModuleCache, ModuleTable};
    let plan_prog =
        compile_many(&[("synth.c", big_src.as_str())], Arch::Mips, CompileOpts::default())
            .unwrap();
    let (frame_ps, raw_modules) = program_load_plan(&plan_prog, pssym::PsMode::Deferred);
    let tables: Vec<ModuleTable> = raw_modules
        .iter()
        .cloned()
        .map(|(name, ps)| ModuleTable { name, ps })
        .collect();
    let spawn_wire = || {
        let handle = ldb_nub::spawn(
            &plan_prog.linked.image,
            ldb_nub::NubConfig { wait_at_pause: true, ..Default::default() },
        );
        let wire = handle.connect_channel().unwrap();
        (Box::new(wire) as Box<dyn ldb_nub::Wire>, handle)
    };
    // Both connects use the daemon's tight event poll so the comparison
    // measures table loading, not the default 10 ms first-poll latency.
    let tight = || ldb_nub::ClientConfig {
        event_poll: std::time::Duration::from_millis(1),
        ..Default::default()
    };
    let (t_conn_plan, _) = time(|| {
        let mut ldb = Ldb::new();
        let (wire, handle) = spawn_wire();
        ldb.attach_plan_with_config(wire, &frame_ps, &tables, Some(handle), tight()).unwrap();
        ldb
    });
    let cache = ModuleCache::new();
    let (t_compile_tables, (frame, compiled)) = time(|| {
        let frame = cache.get_or_compile(&frame_ps).unwrap().0;
        let compiled = raw_modules
            .iter()
            .map(|(name, ps)| CompiledTable {
                name: name.clone(),
                module: cache.get_or_compile(ps).unwrap().0,
            })
            .collect::<Vec<_>>();
        (frame, compiled)
    });
    let (t_conn_compiled, _) = time(|| {
        let mut ldb = Ldb::new();
        let (wire, handle) = spawn_wire();
        ldb.attach_compiled_with_config(wire, &frame, &compiled, Some(handle), tight()).unwrap();
        ldb
    });
    println!(
        "compiled lazy connect, big unit: {:.2} ms eager plan vs {:.2} ms lazy \
         ({:.1}x; one-time bytecode compile {:.2} ms, shared across tenants)",
        t_conn_plan,
        t_conn_compiled,
        t_conn_plan / t_conn_compiled.max(0.001),
        t_compile_tables
    );
}
