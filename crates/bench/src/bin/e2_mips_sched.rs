//! E2 — paper Sec. 3: "When lcc compiles for debugging, the MIPS code size
//! increases by 13%, because there are load delay slots that the assembler
//! is unable to fill using the more restricted scheduling. This penalty is
//! independent of the cost of the explicitly inserted no-ops."
//!
//! Measured here by compiling with `-g` twice: once with the restricted
//! scheduler (stopping points are barriers) and once with the full
//! scheduler allowed to move code across stopping points — the delta is
//! the scheduling penalty, with the explicit no-ops present in both.

use ldb_bench::workload_suite;
use ldb_cc::driver::{compile, CompileOpts};
use ldb_machine::Arch;

/// 1992-style compilation: every local lives in memory, as lcc's simple
/// allocator had it — the load-heavy code the paper's 13% was measured on.
fn opts_92() -> CompileOpts {
    CompileOpts { no_regvars: true, ..Default::default() }
}

/// Straight-line, load-heavy code: sequences of global updates, the shape
/// where statement boundaries (stopping points) bite the scheduler most.
fn straightline() -> String {
    let mut src = String::new();
    for k in 0..30 {
        src.push_str(&format!("int g{k};\n"));
    }
    src.push_str("int s;\nint main(void) {\n");
    for k in 0..30 {
        src.push_str(&format!("    g{k} = g{} + {k};\n    s += g{k};\n", (k + 7) % 30));
    }
    src.push_str("    printf(\"%d\\n\", s);\n    return 0;\n}\n");
    src
}

fn main() {
    println!("E2: MIPS delay-slot scheduling penalty under -g (paper: 13%)");
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "workload", "slots", "fill/f", "fill/r", "pad/r", "penalty"
    );
    let (mut full_total, mut restr_total) = (0u32, 0u32);
    let mut workloads = workload_suite();
    workloads.push(("straightline", straightline()));
    for (name, src) in workloads {
        let full = compile(
            name,
            &src,
            Arch::Mips,
            CompileOpts { force_full_sched: true, ..opts_92() },
        )
        .unwrap();
        let restr = compile(name, &src, Arch::Mips, opts_92()).unwrap();
        let penalty =
            (restr.linked.stats.insn_count as f64 / full.linked.stats.insn_count as f64 - 1.0)
                * 100.0;
        println!(
            "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7.1}%",
            name,
            restr.sched.slots,
            full.sched.filled,
            restr.sched.filled,
            restr.sched.padded,
            penalty
        );
        full_total += full.linked.stats.insn_count;
        restr_total += restr.linked.stats.insn_count;
    }
    let overall = (restr_total as f64 / full_total as f64 - 1.0) * 100.0;
    println!("overall code growth from restricted scheduling: {overall:.1}%");

    // Ablation: no filling at all (every hazardous slot padded).
    let (mut none_total, mut base) = (0u32, 0u32);
    let mut workloads = workload_suite();
    workloads.push(("straightline", straightline()));
    for (name, src) in workloads {
        let none = compile(
            name,
            &src,
            Arch::Mips,
            CompileOpts { no_fill: true, ..opts_92() },
        )
        .unwrap();
        let full = compile(
            name,
            &src,
            Arch::Mips,
            CompileOpts { force_full_sched: true, ..opts_92() },
        )
        .unwrap();
        none_total += none.linked.stats.insn_count;
        base += full.linked.stats.insn_count;
    }
    println!(
        "ablation (no filling at all): {:.1}% growth over full scheduling",
        (none_total as f64 / base as f64 - 1.0) * 100.0
    );
}
