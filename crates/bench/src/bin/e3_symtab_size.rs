//! E3 — paper Sec. 7: "PostScript symbol-table information is about 9
//! times larger than dbx stabs for the same program. The dbx information
//! is in a binary format, so it may be fairer to compare the PostScript
//! after compression by the UNIX program compress, in which case the ratio
//! is about 2."

use ldb_bench::{synth_program, FIB_C, HELLO_C};
use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{pssym, stabs};
use ldb_machine::Arch;

fn main() {
    println!("E3: symbol-table sizes, PostScript vs binary stabs (paper: 9x raw, 2x compressed)");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>7} {:>9}",
        "program", "stabs", "PS", "PS.Z", "PS/st", "PS.Z/st"
    );
    let big = synth_program(1000);
    for (name, src) in [
        ("hello.c", HELLO_C.to_string()),
        ("fib.c", FIB_C.to_string()),
        ("synth-13k.c", big),
    ] {
        let c = compile(name, &src, Arch::Mips, CompileOpts::default()).unwrap();
        let ps = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Deferred);
        let st = stabs::emit(&c);
        let psz = ldb_compress::compress(ps.as_bytes());
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>6.1}x {:>8.1}x",
            name,
            st.len(),
            ps.len(),
            psz.len(),
            ps.len() as f64 / st.len() as f64,
            psz.len() as f64 / st.len() as f64,
        );
    }
    println!();
    println!(
        "also per paper Sec. 7: PostScript emitter is larger than the stabs emitter \
         (~1000 vs ~300 lines in lcc) — see e5_structural."
    );
}
