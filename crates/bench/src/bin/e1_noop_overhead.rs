//! E1 — paper Sec. 3: "The no-ops increase the number of instructions by
//! 16–19%, depending on the target."
//!
//! Compiles the workload suite for every target with and without `-g` and
//! reports the instruction-count increase attributable to stopping-point
//! no-ops.

use ldb_bench::workload_suite;
use ldb_cc::driver::{compile, CompileOpts};
use ldb_machine::Arch;

fn main() {
    println!("E1: instruction-count increase from stopping-point no-ops (-g)");
    println!("{:<8} {:>10} {:>10} {:>9}  (paper: 16-19%)", "target", "insns", "insns -g", "growth");
    for arch in Arch::ALL {
        let mut base = 0u32;
        let mut dbg = 0u32;
        for (name, src) in workload_suite() {
            let rel = compile(
                name,
                &src,
                arch,
                CompileOpts { debug: false, ..Default::default() },
            )
            .unwrap();
            let d = compile(name, &src, arch, CompileOpts::default()).unwrap();
            base += rel.linked.stats.insn_count;
            dbg += d.linked.stats.insn_count;
        }
        let growth = (dbg as f64 / base as f64 - 1.0) * 100.0;
        println!("{:<8} {:>10} {:>10} {:>8.1}%", arch.name(), base, dbg, growth);
    }
}
