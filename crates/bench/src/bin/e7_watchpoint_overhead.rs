//! Ablation: the cost of software watchpoints.
//!
//! ldb has no hardware debug registers to lean on (neither did the
//! paper's four targets), so a watchpoint single-steps the target and
//! re-runs the watched variable's PostScript printer after every
//! instruction. This bench quantifies that trade against (a) free
//! running and (b) a breakpoint on the one line that writes the
//! variable — the manual alternative a user falls back to.

use std::time::Instant;

use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::{Ldb, StopEvent};
use ldb_machine::Arch;

const SRC: &str = r#"
int total;
int tick(int k) {
    int j;
    for (j = 0; j < 20; j++)
        k = k + j;
    total = total + k;
    return total;
}
int main(void) {
    int i;
    for (i = 0; i < 40; i++)
        tick(i);
    return 0;
}
"#;

fn session() -> Ldb {
    let c = compile("tick.c", SRC, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb
}

fn main() {
    println!("E7 ablation: software watchpoint cost (40 stores, ~3800 executed instructions)");

    // Baseline: run to completion at full speed.
    let mut ldb = session();
    let t = Instant::now();
    assert!(matches!(ldb.cont().unwrap(), StopEvent::Exited(0)));
    let free = t.elapsed();
    println!("  free run                      : {:>9.1} us", free.as_secs_f64() * 1e6);

    // Manual alternative: breakpoint on the store line, inspect, resume.
    let mut ldb = session();
    ldb.break_at("tick", 5).unwrap(); // total = total + k
    let t = Instant::now();
    let mut stops = 0;
    loop {
        match ldb.cont().unwrap() {
            StopEvent::Breakpoint { .. } => {
                stops += 1;
                let _ = ldb.print_var("total").unwrap();
            }
            StopEvent::Exited(_) => break,
            other => panic!("{other:?}"),
        }
    }
    let brk = t.elapsed();
    println!(
        "  breakpoint-on-store + print   : {:>9.1} us ({stops} stops)",
        brk.as_secs_f64() * 1e6
    );

    // The watchpoint: single-step everything, re-print after each step.
    let mut ldb = session();
    ldb.break_at("main", 1).unwrap();
    ldb.cont().unwrap();
    ldb.watch_var("total").unwrap();
    let addr = ldb.target(0).breakpoints.addresses()[0];
    ldb.clear_breakpoint(addr).unwrap();
    let t = Instant::now();
    let mut fires = 0;
    loop {
        match ldb.cont_watch().unwrap() {
            StopEvent::Watchpoint { .. } => fires += 1,
            StopEvent::Exited(_) => break,
            other => panic!("{other:?}"),
        }
    }
    let watch = t.elapsed();
    println!(
        "  watchpoint (step + reprint)   : {:>9.1} us ({fires} fires)",
        watch.as_secs_f64() * 1e6
    );
    println!(
        "  watchpoint costs {:.0}x the free run and {:.1}x the manual breakpoint loop;",
        watch.as_secs_f64() / free.as_secs_f64(),
        watch.as_secs_f64() / brk.as_secs_f64()
    );
    println!(
        "  in exchange it needs no knowledge of which line stores the variable."
    );
}
