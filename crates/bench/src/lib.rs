//! Shared infrastructure for the benchmark harness: synthetic C workloads
//! (the analog of the paper's 13,000-line lcc source) and line-counting
//! helpers for the structural tables.

use std::fmt::Write as _;

/// The paper's Figure 1 program, used throughout the benches.
pub const FIB_C: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
"#;

/// The one-line hello program of Table 2.
pub const HELLO_C: &str = "int main(void) { printf(\"hello, world\\n\"); return 0; }\n";

/// A mixed workload suite for code-growth measurements: integer loops,
/// floating point, pointers, recursion, and branchy logic.
pub fn workload_suite() -> Vec<(&'static str, String)> {
    vec![
        ("fib", FIB_C.to_string()),
        (
            "sort",
            r#"
            int data[64];
            void sort(int n) {
                int i; int j;
                for (i = 0; i < n; i++)
                    for (j = 0; j + 1 < n - i; j++)
                        if (data[j] > data[j+1]) {
                            int t;
                            t = data[j]; data[j] = data[j+1]; data[j+1] = t;
                        }
            }
            int main(void) {
                int k;
                for (k = 0; k < 64; k++) data[k] = (64 - k) * 7 % 31;
                sort(64);
                printf("%d %d\n", data[0], data[63]);
                return 0;
            }
            "#
            .to_string(),
        ),
        (
            "floats",
            r#"
            double poly(double x) { return ((x * 2.0 + 1.0) * x - 3.5) * x + 0.25; }
            int main(void) {
                double s; int i;
                s = 0.0;
                for (i = 0; i < 100; i++) s = s + poly(i / 10.0);
                printf("%g\n", s);
                return 0;
            }
            "#
            .to_string(),
        ),
        (
            "strings",
            r#"
            char buf[128];
            int len(char *s) { int n; n = 0; while (s[n]) n++; return n; }
            void copy(char *d, char *s) { int i; i = 0; while ((d[i] = s[i])) i++; }
            int main(void) {
                copy(buf, "retargetable");
                printf("%s %d\n", buf, len(buf));
                return 0;
            }
            "#
            .to_string(),
        ),
        (
            "recurse",
            r#"
            int ack(int m, int n) {
                if (m == 0) return n + 1;
                if (n == 0) return ack(m - 1, 1);
                return ack(m - 1, ack(m, n - 1));
            }
            int main(void) { printf("%d\n", ack(2, 3)); return 0; }
            "#
            .to_string(),
        ),
    ]
}

/// Generate a large synthetic compilation unit with roughly `funcs`
/// functions (≈ 13 lines each): the analog of reading lcc's 13,000-line
/// symbol table when `funcs` ≈ 1000.
pub fn synth_program(funcs: usize) -> String {
    let mut s = String::with_capacity(funcs * 300);
    let _ = writeln!(s, "static int table[64];");
    let _ = writeln!(s, "int grand;");
    for i in 0..funcs {
        let _ = writeln!(
            s,
            "int f{i}(int a{i}, int b{i}) {{\n    int x{i}; int y{i}; int k{i};\n    x{i} = a{i} * {m} + b{i};\n    y{i} = 0;\n    for (k{i} = 0; k{i} < 8; k{i}++) {{\n        y{i} += x{i} % ({m} + k{i} + 1);\n        if (y{i} > 1000) y{i} -= 997;\n    }}\n    table[{slot}] = y{i};\n    return y{i} + x{i};\n}}",
            m = i % 13 + 2,
            slot = i % 64,
        );
    }
    let _ = writeln!(s, "int main(void) {{\n    int s;\n    s = 0;");
    for i in 0..funcs.min(200) {
        let _ = writeln!(s, "    s += f{i}({}, {});", i % 7, i % 11);
    }
    let _ = writeln!(s, "    grand = s;\n    printf(\"%d\\n\", s);\n    return 0;\n}}");
    s
}

/// Count the non-blank, non-comment lines of a source string (`//`, `%`,
/// and doc comments, good enough for Rust and PostScript).
pub fn loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with('%') && !l.starts_with("///")
        })
        .count()
}

/// Count lines of code of a file on disk (0 if missing).
pub fn file_loc(path: &str) -> usize {
    std::fs::read_to_string(path).map(|s| loc(&s)).unwrap_or(0)
}

/// Workspace-relative path helper for the structural benches.
pub fn ws(path: &str) -> String {
    format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldb_cc::driver::{compile, CompileOpts};
    use ldb_machine::Arch;

    #[test]
    fn synthetic_program_compiles_everywhere() {
        let src = synth_program(40);
        assert!(src.lines().count() > 400);
        for arch in Arch::ALL {
            let c = compile("synth.c", &src, arch, CompileOpts::default())
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            assert!(c.linked.stats.insn_count > 1000, "{arch}");
        }
    }

    #[test]
    fn workload_suite_compiles_and_runs() {
        for (name, src) in workload_suite() {
            for arch in Arch::ALL {
                let c = compile(name, &src, arch, CompileOpts::default())
                    .unwrap_or_else(|e| panic!("{name}/{arch}: {e}"));
                let mut m = ldb_machine::Machine::load(&c.linked.image);
                loop {
                    match m.run(50_000_000) {
                        ldb_machine::RunEvent::Paused { .. } => continue,
                        ldb_machine::RunEvent::Exited(0) => break,
                        other => panic!("{name}/{arch}: {other:?} out={:?}", m.output),
                    }
                }
            }
        }
    }

    #[test]
    fn loc_counts_reasonably() {
        assert_eq!(loc("a\n\n// c\n% ps comment\nb\n"), 2);
    }
}
