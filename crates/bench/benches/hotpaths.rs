//! Criterion microbenchmarks for ldb's hot paths: PostScript scanning and
//! execution, abstract-memory fetches, the nub protocol, breakpoint
//! cycles, compilation, and LZW.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ldb_bench::{synth_program, FIB_C};
use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::{AbstractMemory, Ldb};
use ldb_machine::Arch;

fn ps_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("postscript");
    g.sample_size(30);
    let big = {
        let cc = compile("synth.c", &synth_program(200), Arch::Mips, CompileOpts::default())
            .unwrap();
        pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred)
    };
    g.throughput(Throughput::Bytes(big.len() as u64));
    g.bench_function("scan_symbol_table", |b| {
        b.iter(|| {
            let mut sc = ldb_postscript::Scanner::from_str(big.as_str());
            let mut n = 0u64;
            while let Some(_t) = sc.next_token().unwrap() {
                n += 1;
            }
            n
        })
    });
    g.bench_function("exec_fib_20", |b| {
        let mut i = ldb_postscript::Interp::new();
        i.run_str("/fib {dup 2 lt {pop 1} {dup 1 sub fib exch 2 sub fib add} ifelse} def")
            .unwrap();
        b.iter(|| {
            i.run_str("15 fib pop").unwrap();
        })
    });
    g.bench_function("dict_literal", |b| {
        let mut i = ldb_postscript::Interp::new();
        b.iter(|| {
            i.run_str("<< /name (i) /type 4 /sourcey 6 /kind (variable) >> pop").unwrap();
        })
    });
    g.finish();
}

fn abstract_memory(c: &mut Criterion) {
    use ldb_core::amemory::{AliasMemory, AliasTarget, FakeMemory, JoinedMemory, RegisterMemory};
    use std::rc::Rc;
    let fake = Rc::new(FakeMemory::default());
    fake.store('d', 92, 4, 1234).unwrap();
    let alias = AliasMemory::new(fake.clone());
    alias.alias('r', 30, AliasTarget::Mem('d', 92));
    let alias = Rc::new(alias);
    let reg = Rc::new(RegisterMemory::new(alias.clone() as _, &[('r', 4)]));
    let joined = JoinedMemory::new().route('r', reg).fallback(fake);
    let mut g = c.benchmark_group("amemory");
    g.bench_function("register_fetch_through_dag", |b| {
        b.iter(|| joined.fetch('r', 30, 1).unwrap())
    });
    g.finish();
}

fn nub_protocol(c: &mut Criterion) {
    use ldb_nub::{Reply, Request};
    let mut g = c.benchmark_group("nub");
    g.bench_function("codec_roundtrip", |b| {
        b.iter(|| {
            let r = Request::Fetch { space: b'd', addr: 0x2000, size: 4 };
            let d = Request::decode(&r.encode()).unwrap();
            let rep = Reply::Fetched { value: 42 };
            let _ = Reply::decode(&rep.encode()).unwrap();
            d
        })
    });
    // A live fetch round trip through channel wires and the nub thread.
    let cc = compile("fib.c", FIB_C, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&cc.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&cc.linked.image, &loader).unwrap();
    let client = ldb.target(0).client.clone();
    g.bench_function("live_fetch_roundtrip", |b| {
        b.iter(|| client.borrow_mut().fetch('d', cc.linked.context_addr, 4).unwrap())
    });
    g.finish();
}

fn breakpoints(c: &mut Criterion) {
    let mut g = c.benchmark_group("debugger");
    g.sample_size(20);
    let cc = compile("fib.c", FIB_C, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&cc.linked.image, &symtab);
    g.bench_function("breakpoint_hit_print_continue", |b| {
        b.iter(|| {
            let mut ldb = Ldb::new();
            ldb.spawn_program(&cc.linked.image, &loader).unwrap();
            ldb.break_at("fib", 7).unwrap();
            ldb.cont().unwrap();
            let v = ldb.print_var("i").unwrap();
            assert_eq!(v, "2");
            v
        })
    });
    g.finish();
}

fn checkpoint(c: &mut Criterion) {
    use ldb_core::StopEvent;
    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(20);
    // A long, healthy run: a tight loop retiring ~10^5 instructions, no
    // breakpoints, no inspection — the path `--checkpoint-every` must
    // not tax when off and may tax <5% when on.
    let loop_c = r#"
int main(void) { int i; int s; s = 0;
    for (i = 0; i < 20000; i++) s += i;
    printf("%d\n", s); return 0; }
"#;
    let cc = compile("loop.c", loop_c, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&cc.linked.image, &symtab);
    // Paired A/B probe: identical sessions, checkpointing off vs on.
    for (label, every) in
        [("run_healthy_checkpoint_off", None), ("run_healthy_checkpoint_on_25k", Some(25_000))]
    {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut ldb = Ldb::new();
                ldb.spawn_program(&cc.linked.image, &loader).unwrap();
                ldb.set_checkpoint_every(every);
                match ldb.cont().unwrap() {
                    StopEvent::Exited(0) => {}
                    other => panic!("unexpected stop: {other:?}"),
                }
            })
        });
    }
    // The unit costs: one snapshot round trip over the wire (capture is
    // what every checkpoint pays; restore+replay is what reverse pays).
    let fib = compile("fib.c", FIB_C, Arch::Mips, CompileOpts::default()).unwrap();
    let fib_symtab = pssym::emit(&fib.unit, &fib.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let fib_loader = nm::loader_table_for(&fib.linked.image, &fib_symtab);
    let stopped = || {
        let mut ldb = Ldb::new();
        ldb.spawn_program(&fib.linked.image, &fib_loader).unwrap();
        ldb.break_at("fib", 7).unwrap();
        ldb.cont().unwrap();
        ldb
    };
    g.bench_function("snapshot_capture", |b| {
        let mut ldb = stopped();
        b.iter(|| ldb.snapshot_bytes().unwrap())
    });
    g.bench_function("checkpoint_compressed", |b| {
        let mut ldb = stopped();
        b.iter(|| ldb.checkpoint_now().unwrap())
    });
    g.bench_function("reverse_step_and_step_back", |b| {
        let mut ldb = stopped();
        ldb.checkpoint_now().unwrap();
        ldb.step_insn().unwrap();
        b.iter(|| {
            ldb.reverse_step_insn().unwrap();
            ldb.step_insn().unwrap();
        })
    });
    g.finish();
}

fn compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("cc");
    g.sample_size(20);
    for arch in Arch::ALL {
        g.bench_function(format!("compile_fib_{arch}"), |b| {
            b.iter(|| compile("fib.c", FIB_C, arch, CompileOpts::default()).unwrap())
        });
    }
    g.finish();
}

fn wire_cache(c: &mut Criterion) {
    use ldb_core::CachedMemory;
    use std::rc::Rc;
    let mut g = c.benchmark_group("wire_cache");
    let cc = compile("fib.c", FIB_C, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&cc.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&cc.linked.image, &loader).unwrap();
    let client = ldb.target(0).client.clone();
    // A line-aligned kilobyte at the quiet bottom of the stack region,
    // above the saved context and far below the live frames.
    let base = (cc.linked.context_addr + 4096) & !63;
    g.bench_function("sweep_1k_uncached", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..256u32 {
                acc ^= client.borrow_mut().fetch('d', base + i * 4, 4).unwrap();
            }
            acc
        })
    });
    let cache = Rc::new(CachedMemory::new(client.clone()));
    g.bench_function("sweep_1k_cached_cold", |b| {
        b.iter(|| {
            cache.flush();
            let mut acc = 0u64;
            for i in 0..256u32 {
                acc ^= cache.fetch('d', i64::from(base + i * 4), 4).unwrap();
            }
            acc
        })
    });
    g.bench_function("sweep_1k_cached_warm", |b| {
        cache.flush();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..256u32 {
                acc ^= cache.fetch('d', i64::from(base + i * 4), 4).unwrap();
            }
            acc
        })
    });
    g.finish();
}

fn sandbox(c: &mut Criterion) {
    use ldb_postscript::{Budget, Interp};
    let mut g = c.benchmark_group("sandbox");
    g.sample_size(30);
    let cc =
        compile("synth.c", &synth_program(200), Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let table = nm::loader_table_for(&cc.linked.image, &symtab);
    g.throughput(Throughput::Bytes(table.len() as u64));
    // Deferred tables execute machine-dependent names at load time; the
    // debugger binds the real ones from its per-architecture dictionary.
    const STUBS: &str = "/Regset0 {/r exch} def /Frameoff {/l exch} def";
    // The table-load hot path with the execution sandbox off vs on: the
    // fuel/allocation accounting must cost <5% (pinned in EXPERIMENTS.md).
    g.bench_function("table_load_unbudgeted", |b| {
        b.iter(|| {
            let mut i = Interp::new();
            i.run_str(STUBS).unwrap();
            i.run_str(&table).unwrap();
            i.pop().unwrap()
        })
    });
    g.bench_function("table_load_budgeted", |b| {
        b.iter(|| {
            let mut i = Interp::new();
            i.run_str(STUBS).unwrap();
            let save = i.push_budget(Budget::LOAD);
            i.run_str(&table).unwrap();
            i.pop_budget(save);
            i.pop().unwrap()
        })
    });
    g.finish();
}

fn trace_overhead(c: &mut Criterion) {
    use ldb_postscript::{Budget, Interp};
    use ldb_trace::{Layer, Severity, Trace};
    let mut g = c.benchmark_group("trace");
    g.sample_size(30);

    // The recorder itself, isolated: one wire-shaped record (four fields)
    // into a saturated ring, and the same call against the disabled
    // handle. These are the numbers the end-to-end pins below derive
    // from — the fetch round trip is scheduler-noisy at the ~100 ns
    // scale, so the per-record cost is what EXPERIMENTS.md cites.
    let ring = Trace::ring(4096);
    for i in 0..5000u64 {
        ring.emit(Layer::Wire, Severity::Debug, "send", &[("seq", i.into())]);
    }
    let mut seq = 0u64;
    g.bench_function("emit_record", |b| {
        b.iter(|| {
            seq += 1;
            ring.emit(
                Layer::Wire,
                Severity::Debug,
                "send",
                &[("seq", seq.into()), ("req", "Fetch".into()), ("attempt", 0u64.into()), ("len", 18u64.into())],
            );
        })
    });
    let off = Trace::off();
    g.bench_function("emit_record_disabled", |b| {
        b.iter(|| {
            seq += 1;
            off.emit(
                Layer::Wire,
                Severity::Debug,
                "send",
                &[("seq", seq.into()), ("req", "Fetch".into()), ("attempt", 0u64.into()), ("len", 18u64.into())],
            );
        })
    });

    // The wire hot path (same live fetch round trip as the `nub` group)
    // with the flight recorder disabled — the Trace::off() fast path must
    // cost nothing — and enabled with the in-memory ring, where the two
    // records per round trip (send + recv) are pinned at <3% overhead in
    // EXPERIMENTS.md.
    let cc = compile("fib.c", FIB_C, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&cc.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&cc.linked.image, &loader).unwrap();
    let client = ldb.target(0).client.clone();
    g.bench_function("live_fetch_recorder_off", |b| {
        b.iter(|| client.borrow_mut().fetch('d', cc.linked.context_addr, 4).unwrap())
    });
    ldb.set_trace(Trace::ring(4096));
    g.bench_function("live_fetch_recorder_on", |b| {
        b.iter(|| client.borrow_mut().fetch('d', cc.linked.context_addr, 4).unwrap())
    });

    // The table-load hot path (same budgeted load as the `sandbox` group)
    // with and without the recorder: the interpreter journals budget
    // consumption only at scope exit, so the load itself must not slow.
    let big =
        compile("synth.c", &synth_program(200), Arch::Mips, CompileOpts::default()).unwrap();
    let big_ps = pssym::emit(&big.unit, &big.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let table = nm::loader_table_for(&big.linked.image, &big_ps);
    const STUBS: &str = "/Regset0 {/r exch} def /Frameoff {/l exch} def";
    let load = |trace: &Trace| {
        let mut i = Interp::new();
        i.set_trace(trace.clone());
        i.run_str(STUBS).unwrap();
        let save = i.push_budget(Budget::LOAD);
        i.run_str(&table).unwrap();
        i.pop_budget(save);
        i.pop().unwrap()
    };
    g.throughput(Throughput::Bytes(table.len() as u64));
    let off = Trace::off();
    g.bench_function("table_load_recorder_off", |b| b.iter(|| load(&off)));
    let on = Trace::ring(4096);
    g.bench_function("table_load_recorder_on", |b| b.iter(|| load(&on)));
    g.finish();
}

fn symtab_compile(c: &mut Criterion) {
    use ldb_cc::driver::{compile_many, program_load_plan};
    use ldb_core::{CompiledTable, ModuleCache, ModuleTable};
    use ldb_postscript::compile_module;

    let mut g = c.benchmark_group("symtab_compile");
    g.sample_size(20);
    let src = synth_program(200);
    let p = compile_many(&[("synth.c", src.as_str())], Arch::Mips, CompileOpts::default())
        .unwrap();
    let (frame_ps, modules) = program_load_plan(&p, pssym::PsMode::Deferred);
    let module_ps = modules[0].1.as_str();
    g.throughput(Throughput::Bytes(module_ps.len() as u64));

    // The one-time cost a daemon's first tenant pays into the shared
    // cache: scan + compile a 200-function module table to bytecode.
    g.bench_function("compile_module_200fn", |b| {
        b.iter(|| compile_module(module_ps).unwrap())
    });
    // The steady-state cost every later same-binary tenant pays: a hash
    // of the source and an `Arc` clone out of the cache.
    g.bench_function("cache_hit_200fn", |b| {
        let cache = ModuleCache::new();
        cache.get_or_compile(module_ps).unwrap();
        b.iter(|| cache.get_or_compile(module_ps).unwrap())
    });

    // The whole connect, eager plan vs compiled lazy (headers only) —
    // the ≥5x big-unit connect claim pinned in EXPERIMENTS.md.
    let tables: Vec<ModuleTable> = modules
        .iter()
        .cloned()
        .map(|(name, ps)| ModuleTable { name, ps })
        .collect();
    let cache = ModuleCache::new();
    let frame = cache.get_or_compile(&frame_ps).unwrap().0;
    let compiled: Vec<CompiledTable> = modules
        .iter()
        .map(|(name, ps)| CompiledTable {
            name: name.clone(),
            module: cache.get_or_compile(ps).unwrap().0,
        })
        .collect();
    let spawn_wire = || {
        let handle = ldb_nub::spawn(
            &p.linked.image,
            ldb_nub::NubConfig { wait_at_pause: true, ..Default::default() },
        );
        let wire = handle.connect_channel().unwrap();
        (Box::new(wire) as Box<dyn ldb_nub::Wire>, handle)
    };
    // Both connects poll at the daemon's 1 ms so the numbers measure
    // table loading, not the default config's 10 ms first event poll.
    let tight = || ldb_nub::ClientConfig {
        event_poll: std::time::Duration::from_millis(1),
        ..Default::default()
    };
    g.bench_function("connect_eager_200fn", |b| {
        b.iter(|| {
            let mut ldb = Ldb::new();
            let (wire, handle) = spawn_wire();
            ldb.attach_plan_with_config(wire, &frame_ps, &tables, Some(handle), tight())
                .unwrap()
        })
    });
    g.bench_function("connect_lazy_200fn", |b| {
        b.iter(|| {
            let mut ldb = Ldb::new();
            let (wire, handle) = spawn_wire();
            ldb.attach_compiled_with_config(wire, &frame, &compiled, Some(handle), tight())
                .unwrap()
        })
    });
    g.finish();
}

fn lzw(c: &mut Criterion) {
    let data = synth_program(100).into_bytes();
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("lzw_compress", |b| b.iter(|| ldb_compress::compress(&data)));
    let packed = ldb_compress::compress(&data);
    g.bench_function("lzw_decompress", |b| b.iter(|| ldb_compress::decompress(&packed).unwrap()));
    g.finish();
}

criterion_group!(benches, ps_interpreter, abstract_memory, nub_protocol, breakpoints, checkpoint, compiler, wire_cache, sandbox, trace_overhead, symtab_compile, lzw);
criterion_main!(benches);
