//! Paired measurement of flight-recorder overhead on the live-fetch hot
//! path. The fetch round-trips through a nub thread, so adjacent A/B
//! criterion runs pick up scheduler drift larger than the effect being
//! measured; this probe interleaves recorder-off and recorder-on rounds
//! against the same target and reports the paired averages, which is the
//! number EXPERIMENTS.md pins.
//!
//! Run with `cargo run --release -p ldb-bench --example trace_overhead_probe`.

use std::time::Instant;

use ldb_bench::FIB_C;
use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::Ldb;
use ldb_machine::Arch;
use ldb_trace::Trace;

fn main() {
    let cc = compile("fib.c", FIB_C, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&cc.unit, &cc.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&cc.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&cc.linked.image, &loader).unwrap();
    let client = ldb.target(0).client.clone();
    let addr = cc.linked.context_addr;

    // How many journal records does one fetch cost? (send + recv.)
    let t = Trace::ring(4096);
    ldb.set_trace(t.clone());
    let before = t.counts().total();
    for _ in 0..10 {
        client.borrow_mut().fetch('d', addr, 4).unwrap();
    }
    let per_fetch = (t.counts().total() - before) as f64 / 10.0;

    // Interleaved off/on rounds so slow drift cancels out of the pairing.
    const ROUNDS: usize = 10; // of each kind
    const N: u32 = 20_000; // fetches per round
    let mut off_us = Vec::new();
    let mut on_us = Vec::new();
    for round in 0..ROUNDS * 2 {
        let on = round % 2 == 1;
        ldb.set_trace(if on { Trace::ring(4096) } else { Trace::off() });
        let t0 = Instant::now();
        for _ in 0..N {
            client.borrow_mut().fetch('d', addr, 4).unwrap();
        }
        let us = t0.elapsed().as_nanos() as f64 / f64::from(N) / 1000.0;
        if on {
            on_us.push(us);
        } else {
            off_us.push(us);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (off, on) = (avg(&off_us), avg(&on_us));
    println!("records per fetch: {per_fetch:.1}");
    println!(
        "live fetch, paired over {ROUNDS}x{N} rounds: {off:.3} us recorder-off, \
         {on:.3} us recorder-on ({:+.1}%, {:+.0} ns/fetch)",
        (on / off - 1.0) * 100.0,
        (on - off) * 1000.0
    );
}
