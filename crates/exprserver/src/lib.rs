//! The expression server (paper, Sec. 3): assignment and expression
//! evaluation by *reusing the compiler front end* as a server in a
//! separate thread. The debugger sends expression text; the server parses
//! and typechecks it, asking the debugger for unknown symbols via
//! `ExpressionServer.lookup` callbacks written in PostScript; the
//! resulting IR tree is rewritten into a PostScript procedure that the
//! debugger interprets against target memory.

pub mod rewrite;
pub mod server;

pub use rewrite::{rewrite, REWRITE_PRELUDE};
pub use server::{parse_decl_pattern, parse_symbol_info, spawn, PipeReader, ServerHandle, ToServer};

/// Escape text for inclusion in a PostScript string literal.
pub fn escape_ps(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '(' => out.push_str("\\("),
            ')' => out.push_str("\\)"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}
