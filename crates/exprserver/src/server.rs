//! The expression server (paper, Sec. 3 and Fig. 3).
//!
//! "To evaluate an expression, ldb sends it to the server, which is a
//! variant of the compiler." The server runs in its own thread (the
//! paper's separate address space); two pipes connect it to the debugger:
//!
//! * the *request* pipe carries expression text and symbol-information
//!   replies from the debugger, and
//! * the *reply* pipe carries PostScript text, which ldb interprets with
//!   `cvx stopped` until the server's `ExpressionServer.result` (or
//!   `.error`) stops it.
//!
//! When the front end fails to find an identifier `a`, the server does not
//! report an error: it writes `/a ExpressionServer.lookup` to the reply
//! pipe and blocks. ldb interprets that, looks `a` up in its PostScript
//! symbol tables, and sends back a line of symbol information from which
//! the server reconstructs the entry on the fly.

use std::collections::HashMap;
use std::io::Read;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::rewrite::rewrite;
use ldb_cc::parse;
use ldb_cc::sema::{analyze_expression, ExternalResolver, ExternalSym};
use ldb_cc::types::Type;

/// Messages the debugger sends to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ToServer {
    /// Evaluate this C expression.
    Expr(String),
    /// Symbol information, answering an `ExpressionServer.lookup`:
    /// `var <handle> <decl-pattern>`, `func <handle> <ret-decl>`, or
    /// `notfound`.
    Symbol(String),
    /// Shut the server down.
    Shutdown,
}

/// The debugger's handle to a running expression server.
pub struct ServerHandle {
    /// Send requests here.
    pub to_server: Sender<ToServer>,
    /// The reply pipe: PostScript text (wrap in a `PsFile`).
    pub reply_pipe: PipeReader,
    /// Joins when the server shuts down.
    pub join: JoinHandle<()>,
}

/// Spawn an expression server thread.
pub fn spawn() -> ServerHandle {
    let (to_tx, to_rx) = unbounded::<ToServer>();
    let (out_tx, out_rx) = unbounded::<Vec<u8>>();
    let join = std::thread::spawn(move ||

        serve(to_rx, out_tx));
    ServerHandle { to_server: to_tx, reply_pipe: PipeReader::new(out_rx), join }
}

fn serve(to_rx: Receiver<ToServer>, out_tx: Sender<Vec<u8>>) {
    // "The expression server discards new symbol-table entries after the
    // evaluation of each expression, but it saves type information":
    // symbol entries live per expression; parsed types persist.
    let mut type_cache: HashMap<String, Type> = HashMap::new();
    loop {
        match to_rx.recv() {
            Err(_) | Ok(ToServer::Shutdown) => return,
            Ok(ToServer::Symbol(_)) => { /* stray; ignore */ }
            Ok(ToServer::Expr(src)) => {
                let mut expr_cache: HashMap<String, ExternalSym> = HashMap::new();
                let mut resolver = PipeResolver {
                    to_rx: &to_rx,
                    out_tx: &out_tx,
                    cache: &mut expr_cache,
                    types: &mut type_cache,
                };
                let reply = match analyze_expression(&src, &mut resolver) {
                    Err(e) => error_text(&e.to_string()),
                    Ok((tree, ty)) => match rewrite(&tree) {
                        Err(e) => error_text(&e),
                        Ok(code) => {
                            let decl = crate::escape_ps(&ty.decl_pattern());
                            format!("{{{code}}} ({decl}) ExpressionServer.result\n")
                        }
                    },
                };
                if out_tx.send(reply.into_bytes()).is_err() {
                    return;
                }
            }
        }
    }
}

fn error_text(msg: &str) -> String {
    format!("({}) ExpressionServer.error\n", crate::escape_ps(msg))
}

struct PipeResolver<'a> {
    to_rx: &'a Receiver<ToServer>,
    out_tx: &'a Sender<Vec<u8>>,
    cache: &'a mut HashMap<String, ExternalSym>,
    types: &'a mut HashMap<String, Type>,
}

impl ExternalResolver for PipeResolver<'_> {
    fn lookup(&mut self, name: &str) -> Option<ExternalSym> {
        if let Some(s) = self.cache.get(name) {
            return Some(s.clone());
        }
        // Ask the debugger: emit PostScript it will interpret.
        let ask = format!("/{name} ExpressionServer.lookup\n");
        self.out_tx.send(ask.into_bytes()).ok()?;
        // Block until the debugger answers.
        match self.to_rx.recv().ok()? {
            ToServer::Symbol(text) => {
                let sym = parse_symbol_info_cached(&text, self.types)?;
                self.cache.insert(name.to_string(), sym.clone());
                Some(sym)
            }
            ToServer::Shutdown => None,
            ToServer::Expr(_) => None, // protocol violation
        }
    }
}

/// Parse a symbol-information line: `var E1 int %s[20]`, `func E2 int %s`,
/// or `notfound`.
pub fn parse_symbol_info(text: &str) -> Option<ExternalSym> {
    parse_symbol_info_cached(text, &mut HashMap::new())
}

fn parse_symbol_info_cached(
    text: &str,
    types: &mut HashMap<String, Type>,
) -> Option<ExternalSym> {
    let text = text.trim();
    if text == "notfound" {
        return None;
    }
    let (kind, rest) = text.split_once(' ')?;
    let (handle, decl) = rest.split_once(' ')?;
    let ty = match types.get(decl) {
        Some(t) => t.clone(),
        None => {
            let t = parse_decl_pattern(decl)?;
            types.insert(decl.to_string(), t.clone());
            t
        }
    };
    match kind {
        "var" => Some(ExternalSym::Var { ty, handle: handle.to_string() }),
        "func" => Some(ExternalSym::Func { ret: ty, handle: handle.to_string() }),
        _ => None,
    }
}

/// Reconstruct a type from its declaration pattern by parsing it as a
/// declaration — reusing the compiler's own parser, in the spirit of the
/// paper's front-end reuse.
pub fn parse_decl_pattern(decl: &str) -> Option<Type> {
    // The declaration may be preceded by struct definitions the debugger
    // sent along (e.g. "struct acc { int count; }; struct acc *%s").
    let src = format!("{};", decl.replace("%s", "__x"));
    let unit = parse::parse("<sym>", &src).ok()?;
    unit.decls.iter().rev().find_map(|d| match d {
        ldb_cc::ast::TopDecl::Var(v) if v.name == "__x" => Some(v.ty.clone()),
        _ => None,
    })
}

/// A `Read` over a channel of byte chunks — the debugger's end of the
/// reply pipe (ldb wraps it in a PostScript file object).
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl PipeReader {
    fn new(rx: Receiver<Vec<u8>>) -> PipeReader {
        PipeReader { rx, buf: Vec::new(), pos: 0 }
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(b) => {
                    self.buf = b;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // server gone: EOF
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Play the debugger's role by hand: pull bytes off the reply pipe,
    /// answer lookups, and collect the final PostScript.
    fn evaluate(handle: &mut ServerHandle, expr: &str, answers: &[(&str, &str)]) -> String {
        handle.to_server.send(ToServer::Expr(expr.into())).unwrap();
        let mut text = String::new();
        loop {
            let mut chunk = [0u8; 256];
            let n = handle.reply_pipe.read(&mut chunk).unwrap();
            assert!(n > 0, "pipe closed early; got {text:?}");
            text.push_str(std::str::from_utf8(&chunk[..n]).unwrap());
            // Answer any lookup that appeared.
            while let Some(idx) = text.find("ExpressionServer.lookup") {
                let line = &text[..idx];
                let name = line.rsplit('/').next().unwrap().trim().to_string();
                text = text[idx + "ExpressionServer.lookup".len()..].to_string();
                let reply = answers
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, r)| r.to_string())
                    .unwrap_or_else(|| "notfound".to_string());
                handle.to_server.send(ToServer::Symbol(reply)).unwrap();
            }
            if text.contains("ExpressionServer.result") || text.contains("ExpressionServer.error")
            {
                return text;
            }
        }
    }

    #[test]
    fn full_lookup_dance() {
        let mut h = spawn();
        let out = evaluate(&mut h, "i + a[2]", &[("i", "var E1 int %s"), ("a", "var E2 int %s[20]")]);
        assert!(out.contains("E1 SymLoc fetchI"), "{out}");
        assert!(out.contains("E2 SymLoc 2 4 mul Shifted fetchI"), "{out}");
        assert!(out.trim_end().ends_with("ExpressionServer.result"), "{out}");
        assert!(out.contains("(int %s)"), "carries the result type: {out}");
        h.to_server.send(ToServer::Shutdown).unwrap();
        h.join.join().unwrap();
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        let mut h = spawn();
        let out = evaluate(&mut h, "zz + 1", &[]);
        assert!(out.contains("ExpressionServer.error"), "{out}");
        assert!(out.contains("undefined"), "{out}");
    }

    #[test]
    fn syntax_error_reported() {
        let mut h = spawn();
        let out = evaluate(&mut h, "1 +", &[]);
        assert!(out.contains("ExpressionServer.error"), "{out}");
    }

    #[test]
    fn entries_discarded_per_expression_but_lookup_repeats() {
        // "The expression server discards new symbol-table entries after
        // the evaluation of each expression": the second expression must
        // ask again (and may receive a different handle for a different
        // scope).
        let mut h = spawn();
        let _ = evaluate(&mut h, "i + 1", &[("i", "var E1 int %s")]);
        let out = evaluate(&mut h, "i * 2", &[("i", "var E7 int %s")]);
        assert!(out.contains("E7 SymLoc fetchI 2 mul"), "{out}");
    }

    #[test]
    fn one_lookup_per_name_within_an_expression() {
        let mut h = spawn();
        let out = evaluate(&mut h, "i + i * i", &[("i", "var E1 int %s")]);
        assert!(out.matches("E1 SymLoc").count() == 3, "{out}");
    }

    #[test]
    fn decl_pattern_parsing() {
        assert_eq!(parse_decl_pattern("int %s"), Some(Type::Int));
        assert_eq!(
            parse_decl_pattern("double *%s"),
            Some(Type::Ptr(std::rc::Rc::new(Type::Double)))
        );
        assert_eq!(
            parse_decl_pattern("int %s[20]"),
            Some(Type::Array(std::rc::Rc::new(Type::Int), 20))
        );
        assert_eq!(parse_decl_pattern("garbage $$"), None);
    }

    #[test]
    fn assignment_through_server() {
        let mut h = spawn();
        let out = evaluate(&mut h, "i = i + 1", &[("i", "var E1 int %s")]);
        assert!(out.contains("E1 SymLoc E1 SymLoc fetchI 1 add storeI"), "{out}");
    }

    #[test]
    fn calls_into_target_rejected() {
        let mut h = spawn();
        let out = evaluate(&mut h, "f(3)", &[("f", "func E9 int %s")]);
        assert!(out.contains("ExpressionServer.error"), "{out}");
        assert!(out.contains("calls"), "{out}");
    }
}
