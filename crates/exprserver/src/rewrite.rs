//! The IR → PostScript rewriter (paper, Sec. 3 and 5).
//!
//! "The server's intermediate-code tree is not passed to the usual
//! compiler back end; instead it is rewritten as a PostScript procedure...
//! the expression server code that rewrites lcc's intermediate
//! representation into PostScript is only 124 lines of C, even though the
//! intermediate representation has 112 operators." This module is the
//! analog, and the `e5_structural` benchmark counts it.
//!
//! The generated code runs in ldb's interpreter with the debugging
//! dictionary on the dictionary stack; it uses `SymLoc` (symbol handle →
//! location in the current frame), per-suffix `fetchX`/`storeX` words, and
//! plain PostScript arithmetic.

use ldb_cc::ir::{BinIr, Const, Tree, UnIr};
use ldb_cc::sema::SYM_HANDLE_PREFIX;
use ldb_cc::types::Sfx;

/// Rewrite a tree into PostScript source (the body of a procedure).
///
/// # Errors
/// `CALL` nodes: "ldb cannot evaluate expressions that include procedure
/// calls into the target process" (paper, Sec. 7.1).
pub fn rewrite(t: &Tree) -> Result<String, String> {
    let mut out = String::new();
    emit(t, &mut out)?;
    Ok(out)
}

fn sfx_letter(s: Sfx) -> &'static str {
    s.letter()
}

fn emit(t: &Tree, out: &mut String) -> Result<(), String> {
    match t {
        Tree::Cnst(s, Const::I(v)) => {
            if s.is_float() {
                out.push_str(&format!("{}.0 ", v));
            } else {
                out.push_str(&format!("{v} "));
            }
        }
        Tree::Cnst(_, Const::F(v)) => out.push_str(&ldb_postscript_real(*v)),
        Tree::Global(name) => match name.strip_prefix(SYM_HANDLE_PREFIX) {
            Some(handle) => out.push_str(&format!("{handle} SymLoc ")),
            None => out.push_str(&format!("({name}) GlobalLoc ")),
        },
        Tree::Local(_) | Tree::Param(_) => {
            return Err("expression-server trees have no frame locals".into())
        }
        Tree::Indir(s, addr) => {
            emit(addr, out)?;
            out.push_str(&format!("fetch{} ", sfx_letter(*s)));
        }
        Tree::Asgn(s, addr, val) => {
            emit(addr, out)?;
            emit(val, out)?;
            // storeX leaves the stored value on the stack (the value of an
            // assignment expression).
            out.push_str(&format!("store{} ", sfx_letter(*s)));
        }
        Tree::Bin(op, s, a, b) => {
            emit(a, out)?;
            emit(b, out)?;
            out.push_str(bin_word(*op, *s)?);
        }
        Tree::Un(UnIr::Neg, _, a) => {
            emit(a, out)?;
            out.push_str("neg ");
        }
        Tree::Un(UnIr::Bcom, _, a) => {
            emit(a, out)?;
            out.push_str("not ");
        }
        Tree::Cvt(from, to, a) => {
            emit(a, out)?;
            out.push_str(cvt_word(*from, *to));
        }
        Tree::Call(..) => {
            return Err("cannot evaluate calls into the target process".into());
        }
    }
    Ok(())
}

fn bin_word(op: BinIr, s: Sfx) -> Result<&'static str, String> {
    Ok(match (op, s) {
        // Pointer arithmetic moves locations.
        (BinIr::Add, Sfx::P) => "Shifted ",
        (BinIr::Sub, Sfx::P) => "neg Shifted ",
        (BinIr::Add, _) => "add ",
        (BinIr::Sub, _) => "sub ",
        (BinIr::Mul, _) => "mul ",
        (BinIr::Div, Sfx::F | Sfx::D) => "div ",
        (BinIr::Div, _) => "idiv ",
        (BinIr::Mod, _) => "mod ",
        (BinIr::Band, _) => "and ",
        (BinIr::Bor, _) => "or ",
        (BinIr::Bxor, _) => "xor ",
        (BinIr::Lsh, _) => "bitshift ",
        (BinIr::Rsh, Sfx::U) => "neg bitshift ",
        (BinIr::Rsh, _) => "rshI ",
        // Comparisons yield C ints.
        (BinIr::Eq, _) => "eq {1} {0} ifelse ",
        (BinIr::Ne, _) => "ne {1} {0} ifelse ",
        (BinIr::Lt, _) => "lt {1} {0} ifelse ",
        (BinIr::Le, _) => "le {1} {0} ifelse ",
        (BinIr::Gt, _) => "gt {1} {0} ifelse ",
        (BinIr::Ge, _) => "ge {1} {0} ifelse ",
    })
}

fn cvt_word(from: Sfx, to: Sfx) -> &'static str {
    match (from.is_float(), to.is_float()) {
        (false, true) => "cvr ",
        (true, false) => "cvFI ",
        _ => match to {
            Sfx::C => "cvC ",
            Sfx::Uc => "cvUC ",
            Sfx::S => "cvS ",
            Sfx::Us => "cvUS ",
            _ => "", // widening: values are already host integers
        },
    }
}

fn ldb_postscript_real(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        format!("{s} ")
    } else {
        format!("{s}.0 ")
    }
}

/// The machine-independent PostScript prelude defining the helper words
/// the rewriter targets. ldb loads this once; the debugging operators
/// (`SymLoc`, `FetchX`...) are host operators registered by the debugger.
pub const REWRITE_PRELUDE: &str = r#"
% Conversions to sub-word integers (C truncation semantics).
/cvC  { 16#ff and dup 16#7f gt { 16#100 sub } if } def
/cvUC { 16#ff and } def
/cvS  { 16#ffff and dup 16#7fff gt { 16#10000 sub } if } def
/cvUS { 16#ffff and } def
% Float -> int truncates toward zero.
/cvFI { cvi } def
% Arithmetic (signed) right shift: floor division by 2^s.
/rshI {            % x s
  1 exch bitshift  % x d
  2 copy idiv      % x d q
  3 1 roll mod     % q r
  0 lt { 1 sub } if
} def
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use ldb_cc::ir::Tree;
    use ldb_cc::sema::{analyze_expression, ExternalResolver, ExternalSym};
    use ldb_cc::types::Type;

    struct R;
    impl ExternalResolver for R {
        fn lookup(&mut self, name: &str) -> Option<ExternalSym> {
            match name {
                "i" => Some(ExternalSym::Var { ty: Type::Int, handle: "E1".into() }),
                "d" => Some(ExternalSym::Var { ty: Type::Double, handle: "E2".into() }),
                "a" => Some(ExternalSym::Var {
                    ty: Type::Array(std::rc::Rc::new(Type::Int), 20),
                    handle: "E3".into(),
                }),
                "f" => Some(ExternalSym::Func { ret: Type::Int, handle: "E4".into() }),
                _ => None,
            }
        }
    }

    fn rw(src: &str) -> String {
        let (tree, _) = analyze_expression(src, &mut R).unwrap();
        rewrite(&tree).unwrap()
    }

    #[test]
    fn scalar_fetch_and_arithmetic() {
        assert_eq!(rw("i + 1"), "E1 SymLoc fetchI 1 add ");
        assert_eq!(rw("i * i"), "E1 SymLoc fetchI E1 SymLoc fetchI mul ");
        assert_eq!(rw("-i"), "E1 SymLoc fetchI neg ");
        assert_eq!(rw("i / 2"), "E1 SymLoc fetchI 2 idiv ");
    }

    #[test]
    fn array_indexing_becomes_shifted() {
        let code = rw("a[3]");
        assert_eq!(code, "E3 SymLoc 3 4 mul Shifted fetchI ");
    }

    #[test]
    fn assignment_stores() {
        assert_eq!(rw("i = 42"), "E1 SymLoc 42 storeI ");
        let code = rw("a[1] = i + 1");
        assert!(code.ends_with("storeI "), "{code}");
        assert!(code.starts_with("E3 SymLoc 1 4 mul Shifted "), "{code}");
    }

    #[test]
    fn float_conversions() {
        let code = rw("d + i");
        assert_eq!(code, "E2 SymLoc fetchD E1 SymLoc fetchI cvr add ");
        assert_eq!(rw("i = d"), "E1 SymLoc E2 SymLoc fetchD cvFI storeI ");
    }

    #[test]
    fn comparisons_yield_ints() {
        assert_eq!(rw("i < 10"), "E1 SymLoc fetchI 10 lt {1} {0} ifelse ");
    }

    #[test]
    fn calls_are_rejected() {
        let (tree, _) = analyze_expression("f(1)", &mut R).unwrap();
        let err = rewrite(&tree).unwrap_err();
        assert!(err.contains("calls"), "{err}");
    }

    #[test]
    fn generated_code_runs_with_stub_operators() {
        // Stand-in SymLoc/fetchI that model i=7 at data address 100.
        let mut ps = ldb_postscript::Interp::new();
        ps.run_str(REWRITE_PRELUDE).unwrap();
        ps.run_str("/E1 100 def /SymLoc {/d exch Absolute} def /fetchI {pop 7} def")
            .unwrap();
        ps.run_str(&rw("i * 6 + (3 - 1)")).unwrap();
        assert_eq!(ps.pop().unwrap().as_int().unwrap(), 44);
    }

    #[test]
    fn prelude_conversions_behave_like_c() {
        let mut ps = ldb_postscript::Interp::new();
        ps.run_str(REWRITE_PRELUDE).unwrap();
        for (src, expect) in [
            ("200 cvC", -56),
            ("65 cvC", 65),
            ("300 cvUC", 44),
            ("40000 cvS", -25536),
            ("70000 cvUS", 4464),
            ("-8 2 rshI", -2),
            ("2.9 cvFI", 2),
        ] {
            ps.run_str(src).unwrap();
            assert_eq!(ps.pop().unwrap().as_int().unwrap(), expect, "{src}");
        }
    }

    #[test]
    fn node_coverage_is_total() {
        // Every operator family the front end can produce must rewrite.
        let exprs = [
            "i + 1", "i - 1", "i * 2", "i / 2", "i % 3", "i & 7", "i | 8", "i ^ 3",
            "i << 2", "i >> 2", "~i", "-i", "!i", "i == 1", "i != 1", "i <= 1",
            "i >= 1", "a[i]", "d * 2.0", "(char)i", "(unsigned char)i",
            "(short)i", "i = 5", "a[0] = a[1]",
        ];
        for e in exprs {
            let (tree, _) = analyze_expression(e, &mut R).unwrap();
            rewrite(&tree).unwrap_or_else(|err| panic!("{e}: {err}"));
        }
        let _ = Tree::Local(0); // silence unused-import lints in some cfgs
    }

    #[test]
    fn rsh_signed_helper_matches_c() {
        let mut ps = ldb_postscript::Interp::new();
        ps.run_str(REWRITE_PRELUDE).unwrap();
        for (v, s) in [(1024i64, 3i64), (-1024, 3), (7, 1), (-7, 1), (0, 5)] {
            ps.run_str(&format!("{v} {s} rshI")).unwrap();
            assert_eq!(ps.pop().unwrap().as_int().unwrap(), v >> s, "{v} >> {s}");
        }
    }
}
