//! Canonical fleet reports: per-session JSONL and the bucket summary.
//!
//! Both forms are *canonical*: a pure function of the sorted results,
//! with every nondeterministic quantity (wall-clock, thread
//! interleaving, journal record order) excluded. Two same-seed fleet
//! runs must produce byte-identical reports — that is the determinism
//! gate `scripts/check.sh --soak` enforces at 10k sessions.

use crate::{FleetOutcome, SessionResult};

/// JSON-escape into `out` (the report vocabulary is ASCII tokens and
/// session names, but names are caller-supplied, so escape properly).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One session as one canonical JSON line.
pub fn session_json(r: &SessionResult) -> String {
    let mut out = String::with_capacity(192);
    out.push_str("{\"id\":");
    out.push_str(&r.id.to_string());
    out.push_str(",\"name\":");
    push_json_str(&mut out, &r.name);
    out.push_str(",\"outcome\":");
    push_json_str(&mut out, r.outcome.token());
    out.push_str(",\"attempts\":");
    out.push_str(&r.attempts.to_string());
    out.push_str(",\"retries\":");
    out.push_str(&r.retries.to_string());
    out.push_str(",\"bucket\":");
    match &r.bucket {
        Some(b) => push_json_str(&mut out, b),
        None => out.push_str("null"),
    }
    out.push_str(",\"health\":");
    match &r.health {
        Some(h) => out.push_str(&h.to_json()),
        None => out.push_str("null"),
    }
    out.push_str(",\"journal\":");
    match &r.journal {
        Some(j) => {
            out.push_str(&format!(
                "{{\"cmd_records\":{},\"commands_expected\":{},\"panic_records\":{},\
                 \"panics_expected\":{},\"consistent\":{}}}",
                j.cmd_records,
                j.commands_expected,
                j.panic_records,
                j.panics_expected,
                j.consistent()
            ));
        }
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// The canonical per-session report: one JSON object per line, in
/// session-id order.
pub fn session_report(results: &[SessionResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&session_json(r));
        out.push('\n');
    }
    out
}

/// One bucket row of the summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketRow {
    /// The 16-hex bucket id.
    pub bucket: String,
    /// Sessions in the bucket.
    pub count: usize,
    /// The bucket's outcome token (a bucket never mixes outcomes — the
    /// token is the key's first component).
    pub outcome: &'static str,
    /// Lowest session id in the bucket (the canonical exemplar).
    pub example_id: u64,
    /// That session's name.
    pub example_name: String,
    /// The human-readable canonical key the id hashes.
    pub key: String,
}

/// Group bucketed failures by bucket id, sorted by id.
pub fn bucket_rows(results: &[SessionResult]) -> Vec<BucketRow> {
    let mut rows: Vec<BucketRow> = Vec::new();
    for r in results {
        let Some(bucket) = &r.bucket else { continue };
        match rows.iter_mut().find(|row| row.bucket == *bucket) {
            Some(row) => {
                row.count += 1;
                if r.id < row.example_id {
                    row.example_id = r.id;
                    row.example_name = r.name.clone();
                }
            }
            None => rows.push(BucketRow {
                bucket: bucket.clone(),
                count: 1,
                outcome: r.outcome.token(),
                example_id: r.id,
                example_name: r.name.clone(),
                key: r.bucket_key.clone().unwrap_or_default(),
            }),
        }
    }
    rows.sort_by(|a, b| a.bucket.cmp(&b.bucket));
    rows
}

/// The canonical bucket summary: a totals header, one outcome-tally
/// line, then one line per bucket in bucket-id order.
pub fn bucket_report(results: &[SessionResult]) -> String {
    let mut tallies: Vec<(&'static str, usize)> = Vec::new();
    for r in results {
        let tok = r.outcome.token();
        match tallies.iter_mut().find(|(t, _)| *t == tok) {
            Some((_, n)) => *n += 1,
            None => tallies.push((tok, 1)),
        }
    }
    tallies.sort();
    let retries: u64 = results.iter().map(|r| u64::from(r.retries)).sum();
    let rows = bucket_rows(results);
    let mut out = format!(
        "fleet: {} sessions, {} buckets, {} retries\n",
        results.len(),
        rows.len(),
        retries
    );
    out.push_str("outcomes:");
    for (tok, n) in &tallies {
        out.push_str(&format!(" {tok}={n}"));
    }
    out.push('\n');
    for row in &rows {
        out.push_str(&format!(
            "bucket {} count {} example {} ({}) key {}\n",
            row.bucket, row.count, row.example_id, row.example_name, row.key
        ));
    }
    out
}

/// Outcome tallies as a map-like sorted vec (tests' convenience).
pub fn outcome_counts(results: &[SessionResult]) -> Vec<(FleetOutcome, usize)> {
    let mut counts: Vec<(FleetOutcome, usize)> = Vec::new();
    for r in results {
        match counts.iter_mut().find(|(o, _)| *o == r.outcome) {
            Some((_, n)) => *n += 1,
            None => counts.push((r.outcome, 1)),
        }
    }
    counts.sort_by_key(|(o, _)| *o);
    counts
}
