//! The built-in demo corpus: a deterministic mix of healthy, failing,
//! faulty, panicking, and wedging sessions over all four architectures.
//!
//! `ldbfleet`, the smoke test, and the 10k soak all draw from this one
//! generator, so what CI gates is exactly what the binary demos. Every
//! spec is a pure function of its index: seeds, rates, scripts, arches
//! — nothing drawn from the clock — which is what lets two same-seed
//! fleet runs produce byte-identical reports.
//!
//! The corpus cycles a 16-slot wheel (heavy on healthy and chaos
//! sessions, light on the expensive wedge drill) and rotates the
//! architecture every 16 sessions, so 64 sessions cover every
//! template × arch combination.

use std::time::Duration;

use ldb_core::ChaosConfig;
use ldb_machine::Arch;
use ldb_nub::FaultConfig;

use crate::SessionSpec;

/// The healthy target: enough structure for breakpoints, stack walks,
/// pointer-chasing prints, and expression evaluation (and therefore
/// enough attack surface for the chaos layer).
pub const PROG_COUNT: &str = r#"
char msg[16] = "hi there";
char *p;
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    p = msg;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d\n", s);
    return 0;
}
"#;

/// The wedge target: never stops, never exits. A `c` against it blocks
/// until the session watchdog cancels the command.
pub const PROG_SPIN: &str = r#"
int main(void) {
    int i;
    i = 0;
    while (1) i = i + 1;
    return 0;
}
"#;

/// A healthy interactive script: breakpoints, stepping, prints, walks.
const SCRIPT_HEALTHY: &str = "b clamp\nc\np calls\nbt\nc\np calls\n";

/// A chaos-facing script: heavy on the operations that trust d-space —
/// frame walks, frame selection, pointer-chasing prints.
const SCRIPT_CHAOS: &str = "b clamp\nc\nbt\np p\nf 1\np i\nc\nbt\np s\n";

/// Deterministic command failures: unknown command, missing symbol.
const SCRIPT_ERRORS: &str = "b clamp\nc\np nosuchvar\nbogus 1 2\nbt\n";

/// Exercised under wire-fault injection; the commands keep the wire busy
/// so the injector's disconnect lands mid-script.
const SCRIPT_FAULT: &str = "b clamp\nc\nbt\nc\nbt\nc\np calls\n";

/// The panic drill: a deliberate mid-script panic that the crash-proof
/// command loop must quarantine, with live commands on both sides.
const SCRIPT_PANIC: &str = "b clamp\nc\n__panic corpus drill\np calls\nbt\n";

/// The wedge drill: `c` against the spinning target; only the watchdog
/// ends it.
const SCRIPT_WEDGE: &str = "c\n";

/// The per-command watchdog for wedge sessions — short, because the
/// command *will* hit it; the cancel token aborts the wait long before
/// the fleet-default deadline would.
pub const WEDGE_WATCHDOG: Duration = Duration::from_millis(250);

/// The corpus wheel period ([`demo_corpus`] templates repeat at this
/// stride; 4× this covers every template on every arch).
pub const WHEEL: usize = 16;

/// Build `n` deterministic session specs. Slot layout per 16-session
/// wheel: 6 healthy, 4 chaos, 2 script-error, 2 wire-fault, 1 panic,
/// 1 wedge.
pub fn demo_corpus(n: usize) -> Vec<SessionSpec> {
    (0..n).map(spec_for).collect()
}

/// The spec at corpus index `i` (a pure function of `i`).
pub fn spec_for(i: usize) -> SessionSpec {
    let arch = Arch::ALL[(i / WHEEL) % Arch::ALL.len()];
    let slot = i % WHEEL;
    match slot {
        0..=5 => SessionSpec::new(format!("{arch}/healthy/{i}"), arch, PROG_COUNT, SCRIPT_HEALTHY),
        6..=9 => SessionSpec {
            chaos: Some(ChaosConfig {
                seed: 1000 + i as u64,
                rate: 0.8,
                window: None,
            }),
            ..SessionSpec::new(format!("{arch}/chaos/{i}"), arch, PROG_COUNT, SCRIPT_CHAOS)
        },
        10 | 11 => {
            SessionSpec::new(format!("{arch}/script-error/{i}"), arch, PROG_COUNT, SCRIPT_ERRORS)
        }
        12 | 13 => SessionSpec {
            fault: Some(FaultConfig {
                seed: i as u64,
                disconnect_after: Some(40),
                ..FaultConfig::default()
            }),
            ..SessionSpec::new(format!("{arch}/fault/{i}"), arch, PROG_COUNT, SCRIPT_FAULT)
        },
        14 => SessionSpec::new(format!("{arch}/panic/{i}"), arch, PROG_COUNT, SCRIPT_PANIC),
        _ => SessionSpec {
            watchdog: Some(WEDGE_WATCHDOG),
            ..SessionSpec::new(format!("{arch}/wedge/{i}"), arch, PROG_SPIN, SCRIPT_WEDGE)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_a_pure_function_of_the_index() {
        let a = demo_corpus(64);
        let b = demo_corpus(64);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.script, y.script);
            assert_eq!(x.chaos, y.chaos);
        }
        // 64 sessions cover every template family on every arch.
        for arch in Arch::ALL {
            for family in ["healthy", "chaos", "script-error", "fault", "panic", "wedge"] {
                assert!(
                    a.iter().any(|s| s.name.starts_with(&format!("{arch}/{family}/"))),
                    "missing {arch}/{family}"
                );
            }
        }
    }
}
