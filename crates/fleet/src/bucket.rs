//! Crash bucketing: a stable hash over *typed* failure evidence.
//!
//! Triage at fleet scale lives or dies on the bucket function. Hashing
//! raw transcripts would scatter one defect across thousands of buckets
//! — every address, count, and seed differs per session — while hashing
//! too little would merge distinct defects. The canonical bucket key
//! therefore keeps exactly the evidence that is stable across arches,
//! layouts, seeds, and runs:
//!
//! - the fleet outcome token (`wire-lost`, `panic-quarantined`, …);
//! - the *kinds* of frame-walk stops in the transcript (`Cycle`,
//!   `DepthCap`, `BadFrame`, `WireError` — the typed [`WalkStop`]
//!   constructors, stripped of their payload), deduplicated in first-
//!   seen order;
//! - every `error:` / `fault:` transcript line with digit-bearing
//!   tokens normalized to `#` (addresses, line numbers, seeds, counts
//!   all vanish; the error *shape* remains);
//! - the names — never the values — of the session's nonzero health
//!   counters.
//!
//! The key is hashed with FNV-1a 64 to a 16-hex-digit bucket id. The
//! key itself rides along in reports so a human can read *why* two
//! sessions collided.
//!
//! [`WalkStop`]: ldb_core::WalkStop

use ldb_core::Health;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms
/// (this is a report format, not a hash table: DoS resistance is not a
/// requirement, cross-run stability is).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Normalize one transcript line: any whitespace-separated token
/// containing a digit becomes `#`. `fault: SIGSEGV (code 0x10)` and
/// `fault: SIGSEGV (code 0x2c)` normalize identically; `error: no
/// symbol `x`` and `error: no symbol `y`` do not (names are kept —
/// they are typed evidence, not layout noise).
fn normalize_line(line: &str) -> String {
    line.split_whitespace()
        .map(|tok| if tok.chars().any(|c| c.is_ascii_digit()) { "#" } else { tok })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The typed walk-stop kind out of a `walk truncated: …` transcript
/// line: the [`WalkStop`](ldb_core::WalkStop) constructor name, i.e.
/// everything before the payload parenthesis.
fn walk_stop_kind(detail: &str) -> &str {
    detail.split(" (").next().unwrap_or(detail).trim()
}

/// The fixed health-counter vocabulary, in declaration order. Only the
/// *names* of nonzero counters enter the key: the counts vary with
/// schedule position, the set of touched counters is the failure's
/// shape.
fn health_markers(h: &Health) -> Vec<&'static str> {
    let pairs: [(&'static str, u64); 9] = [
        ("walks_truncated", h.walks_truncated),
        ("walk_cycles", h.walk_cycles),
        ("print_cycles", h.print_cycles),
        ("print_follow_caps", h.print_follow_caps),
        ("quarantined_commands", h.quarantined_commands),
        ("chaos_corruptions", h.chaos_corruptions),
        ("watchdog_timeouts", h.watchdog_timeouts),
        ("checkpoints_taken", h.checkpoints_taken),
        ("restores", h.restores),
    ];
    pairs.iter().filter(|(_, v)| *v > 0).map(|(name, _)| *name).collect()
}

/// Build the canonical bucket key for a failed session.
pub fn bucket_key(outcome_token: &str, transcript: &str, health: Option<&Health>) -> String {
    let mut walk_kinds: Vec<String> = Vec::new();
    let mut error_lines: Vec<String> = Vec::new();
    for line in transcript.lines() {
        if let Some(detail) = line.strip_prefix("walk truncated: ") {
            let kind = walk_stop_kind(detail).to_string();
            if !walk_kinds.contains(&kind) {
                walk_kinds.push(kind);
            }
        } else if line.starts_with("error: ") || line.starts_with("fault: ") {
            let norm = normalize_line(line);
            if !error_lines.contains(&norm) {
                error_lines.push(norm);
            }
        }
    }
    let mut key = String::new();
    key.push_str("outcome=");
    key.push_str(outcome_token);
    if !walk_kinds.is_empty() {
        key.push_str("|walks=");
        key.push_str(&walk_kinds.join(","));
    }
    for line in &error_lines {
        key.push('|');
        key.push_str(line);
    }
    if let Some(h) = health {
        let markers = health_markers(h);
        if !markers.is_empty() {
            key.push_str("|health=");
            key.push_str(&markers.join(","));
        }
    }
    key
}

/// Hash a canonical key to its 16-hex-digit bucket id.
pub fn bucket_id(key: &str) -> String {
    format!("{:016x}", fnv1a(key.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_tokens_normalize_but_names_survive() {
        assert_eq!(
            normalize_line("error: fetch at 0x1f3c failed after 4 retries"),
            "error: fetch at # failed after # retries"
        );
        assert_eq!(normalize_line("error: no symbol `total`"), "error: no symbol `total`");
    }

    #[test]
    fn same_defect_different_addresses_share_a_bucket() {
        let t1 = "(ldb) bt\n#0 main at 0x40\nwalk truncated: Cycle (vfp 0x7f00 already visited)\n";
        let t2 = "(ldb) bt\n#0 main at 0x88\nwalk truncated: Cycle (vfp 0x1200 already visited)\n";
        let h = Health { walks_truncated: 3, walk_cycles: 3, chaos_corruptions: 17, ..Health::default() };
        let h2 = Health { walks_truncated: 1, walk_cycles: 1, chaos_corruptions: 2, ..Health::default() };
        let k1 = bucket_key("script-error", t1, Some(&h));
        let k2 = bucket_key("script-error", t2, Some(&h2));
        assert_eq!(k1, k2, "payload-stripped keys must collide");
        assert_eq!(bucket_id(&k1), bucket_id(&k2));
        assert_eq!(bucket_id(&k1).len(), 16);
    }

    #[test]
    fn distinct_stop_kinds_split_buckets() {
        let cycle = "walk truncated: Cycle (vfp 0x10 already visited)\n";
        let cap = "walk truncated: DepthCap (64 frames)\n";
        assert_ne!(
            bucket_key("script-error", cycle, None),
            bucket_key("script-error", cap, None)
        );
    }

    #[test]
    fn outcome_token_always_splits() {
        assert_ne!(
            bucket_id(&bucket_key("wire-lost", "", None)),
            bucket_id(&bucket_key("wedged", "", None))
        );
    }
}
