//! The headless debugging fleet: thousands of supervised scripted
//! sessions, typed outcomes, crash bucketing, and chaos-seed
//! minimization.
//!
//! The paper argued a debugger should be a *library* reached through
//! narrow machine-independent interfaces; `ldbd` already showed one
//! process multiplexing many tenants. The fleet runner is the batch
//! counterpart: a CI-shaped harness that executes a corpus of
//! [`SessionSpec`]s — each a (target, script, fault policy) triple —
//! across a worker pool bounded by core count, wraps every session in
//! the [`ldb_core::Session`] supervisor (per-session watchdog deadline,
//! panic quarantine, bounded teardown), and reduces the wreckage to a
//! deterministic, machine-diffable report:
//!
//! - **Typed outcomes** ([`FleetOutcome`]): the session-level
//!   [`BatchOutcome`] classification (clean / script-error /
//!   panic-quarantined / wire-lost) extended with the two outcomes only
//!   a supervisor can see — `wedged` (the watchdog had to cancel a
//!   command) and `shed` (the fleet declined to run the session at all,
//!   by session cap or memory budget).
//! - **Bounded retry** ([`FleetConfig::max_retries`]): only outcomes an
//!   *injected transient fault* can explain are retried — a session is
//!   retryable exactly when it lost its wire **and** its spec carries a
//!   fault injector. Deterministic failures (script errors, panics,
//!   chaos-induced crashes) are never retried: rerunning a pure function
//!   cannot change its value, and booking retries against them would
//!   hide real bugs. Each retry bumps the fault seed by the attempt
//!   number, so the retry schedule itself is deterministic.
//! - **Crash bucketing** ([`bucket`]): failures hash to a stable bucket
//!   id built from *typed* evidence — the outcome token, the walk-stop
//!   kinds, digit-normalized error lines, and the names of nonzero
//!   health counters — never raw addresses, so the same defect buckets
//!   identically across arches, layouts, and runs.
//! - **Seed minimization** ([`minimize`]): a failing chaos seed's
//!   corruption schedule is bisected down to the narrowest window of
//!   corruption events that still reproduces the same bucket, every
//!   accepted step verified by deterministic re-execution.
//!
//! Determinism is the load-bearing property: two same-seed fleet runs
//! must produce byte-identical session and bucket reports (wall-clock
//! timings are deliberately excluded from the canonical forms). Every
//! source of nondeterminism is either seeded (chaos, wire faults,
//! jitter), ordered (results are sorted by session id), or excluded
//! (timestamps, thread interleavings).

pub mod bucket;
pub mod corpus;
pub mod minimize;
pub mod report;

use std::sync::Arc;
use std::time::{Duration, Instant};

use ldb_cc::driver::{compile_many, program_load_plan, CompileOpts};
use ldb_cc::pssym::PsMode;
use ldb_core::{
    BatchOutcome, ChaosConfig, CloseReason, CompiledTable, Health, LdbError, ModuleCache, Session,
    SessionBuilder, SessionConfig, SessionError,
};
use ldb_machine::{Arch, Image};
use ldb_nub::{spawn, ClientConfig, FaultConfig, FaultyWire, NubConfig, Wire};
use ldb_trace::{Layer, Severity, Trace, TraceConfig};

/// One scripted session: what to debug, what to type at it, and which
/// faults to inject. A spec is a *pure value* — running it twice with
/// the same fleet policy produces the same [`SessionResult`].
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Display name, e.g. `mips/chaos/17` (the report keys on the dense
    /// session id, not the name).
    pub name: String,
    /// Target architecture.
    pub arch: Arch,
    /// C source of the target program (compiled once per distinct
    /// `(arch, source)` pair, shared by every session that uses it).
    pub source: String,
    /// The command script ([`ldb_core::run_script`] format).
    pub script: String,
    /// Data-space corruption policy (the chaos layer), if any.
    pub chaos: Option<ChaosConfig>,
    /// Wire fault injection policy, if any. Its presence is what marks
    /// a lost wire as *transient* and therefore retryable.
    pub fault: Option<FaultConfig>,
    /// Per-command watchdog deadline; `None` uses
    /// [`FleetConfig::watchdog`]. Wedge-corpus specs set this short so a
    /// spinning target is cancelled quickly.
    pub watchdog: Option<Duration>,
}

impl SessionSpec {
    /// A healthy baseline spec (no faults, default watchdog).
    pub fn new(name: impl Into<String>, arch: Arch, source: &str, script: &str) -> SessionSpec {
        SessionSpec {
            name: name.into(),
            arch,
            source: source.to_string(),
            script: script.to_string(),
            chaos: None,
            fault: None,
            watchdog: None,
        }
    }

    /// The deterministic per-session memory estimate the shedding policy
    /// compares against [`FleetConfig::memory_budget`]: a fixed floor
    /// for the debugger machinery plus terms scaling with the inputs. A
    /// *function of the spec alone* — never of runtime occupancy — so
    /// the shed set is identical on every run and the report stays
    /// byte-identical.
    pub fn estimated_bytes(&self) -> u64 {
        const SESSION_FLOOR: u64 = 128 * 1024;
        SESSION_FLOOR + self.source.len() as u64 * 64 + self.script.len() as u64 * 16
    }
}

/// Why the fleet declined to run a session (graceful degradation: a
/// typed outcome in the report, never a crash or a silent skip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedReason {
    /// The session's index is beyond [`FleetConfig::session_cap`].
    SessionCap,
    /// The session's [`SessionSpec::estimated_bytes`] does not fit its
    /// share of [`FleetConfig::memory_budget`].
    MemoryBudget,
}

impl ShedReason {
    /// The stable report token.
    pub fn token(self) -> &'static str {
        match self {
            ShedReason::SessionCap => "session-cap",
            ShedReason::MemoryBudget => "memory-budget",
        }
    }
}

/// The supervised outcome of one fleet session: the in-session
/// [`BatchOutcome`] taxonomy plus the two outcomes only the supervisor
/// can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FleetOutcome {
    /// Every command ran, none failed.
    Clean,
    /// At least one `error:` transcript line.
    ScriptError,
    /// At least one command panicked and was quarantined.
    PanicQuarantined,
    /// The target's wire was lost mid-script.
    WireLost,
    /// The per-command watchdog fired: either the cancelled command came
    /// back (health books a `watchdog_timeouts`) or the worker missed
    /// the grace deadline entirely ([`SessionError::Wedged`]).
    Wedged,
    /// The fleet shed the session before running it.
    Shed(ShedReason),
}

impl FleetOutcome {
    /// The stable report token (`shed` outcomes carry their reason:
    /// `shed:session-cap`, `shed:memory-budget`).
    pub fn token(self) -> &'static str {
        match self {
            FleetOutcome::Clean => "clean",
            FleetOutcome::ScriptError => "script-error",
            FleetOutcome::PanicQuarantined => "panic-quarantined",
            FleetOutcome::WireLost => "wire-lost",
            FleetOutcome::Wedged => "wedged",
            FleetOutcome::Shed(ShedReason::SessionCap) => "shed:session-cap",
            FleetOutcome::Shed(ShedReason::MemoryBudget) => "shed:memory-budget",
        }
    }

    /// Whether this outcome lands in a crash bucket (everything but a
    /// clean run or a shed — shed sessions never executed, so there is
    /// no evidence to bucket).
    pub fn is_bucketed(self) -> bool {
        !matches!(self, FleetOutcome::Clean | FleetOutcome::Shed(_))
    }
}

impl std::fmt::Display for FleetOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// The journal-vs-session cross-check carried in each result: the
/// per-session flight recorder must agree with the session's own
/// bookkeeping — one `cmd` record per dispatched script line, one
/// `panic` record per quarantined command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalCheck {
    /// `dbg/cmd` records in the session journal.
    pub cmd_records: u64,
    /// Commands the script dispatches ([`ldb_core::command_count`]).
    pub commands_expected: u64,
    /// `dbg/panic` records in the session journal.
    pub panic_records: u64,
    /// Quarantined commands per the session's health counters.
    pub panics_expected: u64,
    /// Whether every journal line parsed under the strict schema.
    pub parsed: bool,
}

impl JournalCheck {
    /// Whether journal and session agree.
    pub fn consistent(&self) -> bool {
        self.parsed
            && self.cmd_records == self.commands_expected
            && self.panic_records == self.panics_expected
    }
}

/// What one session contributed to the fleet report.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Dense session id: the spec's index in the corpus.
    pub id: u64,
    /// The spec's display name.
    pub name: String,
    /// The supervised outcome (of the final attempt).
    pub outcome: FleetOutcome,
    /// Attempts executed (1 unless transient retries were booked).
    pub attempts: u32,
    /// Retries booked — nonzero only for injector-marked transient
    /// outcomes.
    pub retries: u32,
    /// Crash bucket id (16 hex digits), for bucketed outcomes.
    pub bucket: Option<String>,
    /// The canonical bucket key the id hashes (kept so triage can read
    /// *why* two sessions share a bucket).
    pub bucket_key: Option<String>,
    /// Final-attempt health counters (absent for shed sessions and
    /// grace-deadline wedges, where the worker never answered).
    pub health: Option<Health>,
    /// Final-attempt transcript (empty for shed sessions).
    pub transcript: String,
    /// The journal cross-check (absent for shed sessions).
    pub journal: Option<JournalCheck>,
    /// Wall-clock for the session, all attempts included. Excluded from
    /// every canonical report form.
    pub wall: Duration,
}

/// Fleet-wide policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads. The default is the machine's available
    /// parallelism minus one (floor 2): the pool is bounded by core
    /// count however large the corpus.
    pub workers: usize,
    /// Retry budget per session for transient outcomes.
    pub max_retries: u32,
    /// Default per-command watchdog for specs that don't set their own.
    pub watchdog: Duration,
    /// Grace after a watchdog cancellation before the worker is declared
    /// wedged.
    pub grace: Duration,
    /// Run at most this many sessions; the rest shed with
    /// [`ShedReason::SessionCap`]. `None` runs everything.
    pub session_cap: Option<usize>,
    /// Total memory budget: a session whose
    /// [`SessionSpec::estimated_bytes`] exceeds `budget / workers` sheds
    /// with [`ShedReason::MemoryBudget`]. `None` disables the check.
    pub memory_budget: Option<u64>,
    /// Fleet-layer flight recorder ([`Layer::Fleet`] records: `session`,
    /// `retry`, `shed`). Record *order* follows completion order and is
    /// not canonical; the reports are.
    pub trace: Trace,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: default_workers(),
            max_retries: 2,
            watchdog: Duration::from_secs(10),
            grace: Duration::from_secs(2),
            session_cap: None,
            memory_budget: None,
            trace: Trace::off(),
        }
    }
}

/// The default worker count: available parallelism minus one, floor 2.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().saturating_sub(1).max(2))
}

/// A compiled target shared by every session that debugs the same
/// `(arch, source)` pair: the linked image plus the bytecode-compiled
/// symbol tables. Compiling C and symbol tables is deterministic but not
/// free; at 10k sessions over a handful of distinct programs it is the
/// difference between seconds and minutes.
pub struct PreparedTarget {
    /// The linked program.
    pub image: Image,
    /// The compiled frame table (machine-dependent walker data).
    pub frame: Arc<ldb_core::CompiledModule>,
    /// The compiled per-module symbol tables.
    pub tables: Vec<CompiledTable>,
}

/// Compile `source` for `arch` once, interning symbol tables in `cache`.
///
/// # Errors
/// Compiler or table-compile failures, as a message.
pub fn prepare_target(
    arch: Arch,
    source: &str,
    cache: &ModuleCache,
) -> Result<PreparedTarget, String> {
    let p = compile_many(&[("target.c", source)], arch, CompileOpts::default())
        .map_err(|e| format!("compile: {e}"))?;
    let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
    let (frame, _hit) = cache.get_or_compile(&frame_ps).map_err(|e| format!("frame: {e}"))?;
    let tables = modules
        .into_iter()
        .map(|(name, ps)| {
            let (module, _hit) =
                cache.get_or_compile(&ps).map_err(|e| format!("table `{name}`: {e}"))?;
            Ok(CompiledTable { name, module })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(PreparedTarget { image: p.linked.image, frame, tables })
}

/// The session builder for one attempt: spawn a fresh nub on the shared
/// prepared target, wrap the wire in the spec's fault injector (seed
/// bumped by `attempt` so the retry schedule is deterministic), arm the
/// chaos layer, and attach lazily — all on the session's worker thread.
fn attempt_builder(
    prepared: Arc<PreparedTarget>,
    chaos: Option<ChaosConfig>,
    fault: Option<FaultConfig>,
    attempt: u32,
    trace: Trace,
) -> SessionBuilder {
    Box::new(move |ldb| {
        ldb.set_trace(trace);
        let handle =
            spawn(&prepared.image, NubConfig { wait_at_pause: true, ..Default::default() });
        let wire = handle
            .connect_channel()
            .map_err(|e| LdbError::msg(format!("connect: {e}")))?;
        let wire: Box<dyn Wire> = match fault {
            Some(mut cfg) => {
                // A retried attempt replays against a *different* fault
                // schedule — that is what makes the fault transient —
                // but a deterministic one: seed + attempt, nothing
                // drawn from the clock.
                cfg.seed = cfg.seed.wrapping_add(u64::from(attempt));
                let mut fw = FaultyWire::wrap(wire, cfg);
                fw.set_trace(ldb.trace().clone());
                Box::new(fw)
            }
            None => Box::new(wire),
        };
        ldb.set_chaos(chaos);
        let client = ClientConfig {
            reply_timeout: Duration::from_secs(2),
            retries: 4,
            backoff: Duration::from_millis(1),
            event_poll: Duration::from_millis(100),
            jitter_seed: u64::from(attempt),
        };
        ldb.attach_compiled_with_config(wire, &prepared.frame, &prepared.tables, Some(handle), client)?;
        Ok(String::new())
    })
}

/// One attempt's raw result, before retry policy.
struct AttemptResult {
    outcome: FleetOutcome,
    transcript: String,
    health: Option<Health>,
    journal: Option<JournalCheck>,
}

fn cross_check(journal_text: &str, script: &str, health: &Health) -> JournalCheck {
    let mut check = JournalCheck {
        cmd_records: 0,
        commands_expected: ldb_core::command_count(script),
        panic_records: 0,
        panics_expected: health.quarantined_commands,
        parsed: true,
    };
    for line in journal_text.lines() {
        match ldb_trace::validate(line) {
            Ok(rec) if rec.layer == Layer::Dbg => match rec.kind.as_ref() {
                "cmd" => check.cmd_records += 1,
                "panic" => check.panic_records += 1,
                _ => {}
            },
            Ok(_) => {}
            Err(_) => check.parsed = false,
        }
    }
    check
}

/// Run one attempt of one spec under full supervision.
fn run_attempt(spec: &SessionSpec, prepared: &Arc<PreparedTarget>, cfg: &FleetConfig, attempt: u32) -> AttemptResult {
    let (trace, journal) = Trace::to_shared_buffer(TraceConfig::default());
    let session_cfg = SessionConfig {
        watchdog: Some(spec.watchdog.unwrap_or(cfg.watchdog)),
        grace: cfg.grace,
        detach_deadline: Duration::from_millis(200),
    };
    let builder =
        attempt_builder(Arc::clone(prepared), spec.chaos.clone(), spec.fault.clone(), attempt, trace);
    let mut session = match Session::open(session_cfg, builder) {
        Ok(s) => s,
        Err(e) => {
            // A failed open is a script error at fleet level: the target
            // never ran, there is nothing transient about it.
            return AttemptResult {
                outcome: FleetOutcome::ScriptError,
                transcript: format!("error: open failed: {e}\n"),
                health: None,
                journal: None,
            };
        }
    };
    let (transcript, outcome) = match session.run_classified(&spec.script) {
        Ok((transcript, outcome)) => (transcript, Some(outcome)),
        Err(SessionError::Wedged) => {
            // The cancelled command missed the grace deadline: the
            // worker is desynchronized and can answer nothing more.
            let _ = session.close(CloseReason::Wedged);
            return AttemptResult {
                outcome: FleetOutcome::Wedged,
                transcript: "error: session wedged (grace deadline missed)\n".to_string(),
                health: None,
                journal: None,
            };
        }
        Err(e) => {
            let _ = session.close(CloseReason::ClientRequest);
            return AttemptResult {
                outcome: FleetOutcome::ScriptError,
                transcript: format!("error: {e}\n"),
                health: None,
                journal: None,
            };
        }
    };
    let health = session.health().ok();
    let _ = session.close(CloseReason::ClientRequest);
    // The supervisor's refinement: a watchdog cancellation anywhere in
    // the script makes the session wedged, whatever the transcript says.
    let outcome = match (&health, outcome) {
        (Some(h), _) if h.watchdog_timeouts > 0 => FleetOutcome::Wedged,
        (_, Some(BatchOutcome::Clean)) => FleetOutcome::Clean,
        (_, Some(BatchOutcome::ScriptError)) => FleetOutcome::ScriptError,
        (_, Some(BatchOutcome::PanicQuarantined)) => FleetOutcome::PanicQuarantined,
        (_, Some(BatchOutcome::WireLost)) => FleetOutcome::WireLost,
        (_, None) => FleetOutcome::Wedged,
    };
    let journal = health.as_ref().map(|h| cross_check(&journal.text(), &spec.script, h));
    AttemptResult { outcome, transcript, health, journal }
}

/// Run one spec through the full supervision-and-retry policy. Public so
/// the minimizer can re-execute a single session exactly as the fleet
/// would.
pub fn run_session(spec: &SessionSpec, prepared: &Arc<PreparedTarget>, cfg: &FleetConfig, id: u64) -> SessionResult {
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        let r = run_attempt(spec, prepared, cfg, attempt);
        let transient = r.outcome == FleetOutcome::WireLost && spec.fault.is_some();
        if transient && attempt < cfg.max_retries {
            cfg.trace.emit(
                Layer::Fleet,
                Severity::Info,
                "retry",
                &[("session", id.into()), ("attempt", u64::from(attempt + 1).into())],
            );
            // Exponential backoff, bounded and tiny: the wire is an
            // in-process channel, the backoff exists to model the
            // policy, not to wait out real infrastructure.
            std::thread::sleep(Duration::from_millis(1 << attempt.min(6)));
            attempt += 1;
            continue;
        }
        let (bucket, bucket_key) = if r.outcome.is_bucketed() {
            let key =
                bucket::bucket_key(r.outcome.token(), &r.transcript, r.health.as_ref());
            (Some(bucket::bucket_id(&key)), Some(key))
        } else {
            (None, None)
        };
        cfg.trace.emit(
            Layer::Fleet,
            Severity::Info,
            "session",
            &[
                ("session", id.into()),
                ("outcome", r.outcome.token().into()),
                ("attempts", u64::from(attempt + 1).into()),
            ],
        );
        return SessionResult {
            id,
            name: spec.name.clone(),
            outcome: r.outcome,
            attempts: attempt + 1,
            retries: attempt,
            bucket,
            bucket_key,
            health: r.health,
            transcript: r.transcript,
            journal: r.journal,
            wall: started.elapsed(),
        };
    }
}

fn shed_result(id: u64, spec: &SessionSpec, reason: ShedReason, trace: &Trace) -> SessionResult {
    trace.emit(
        Layer::Fleet,
        Severity::Warn,
        "shed",
        &[("session", id.into()), ("reason", reason.token().into())],
    );
    SessionResult {
        id,
        name: spec.name.clone(),
        outcome: FleetOutcome::Shed(reason),
        attempts: 0,
        retries: 0,
        bucket: None,
        bucket_key: None,
        health: None,
        transcript: String::new(),
        journal: None,
        wall: Duration::ZERO,
    }
}

/// Errors preparing or running a fleet.
#[derive(Debug)]
pub enum FleetError {
    /// A spec's target failed to compile — the corpus itself is broken,
    /// so the whole run is refused rather than reported around.
    Prepare { spec: String, detail: String },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Prepare { spec, detail } => {
                write!(f, "preparing `{spec}`: {detail}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Silence the default panic hook for `ldb-session` worker threads —
/// their panics are *corpus material*, deliberately provoked and always
/// quarantined; at 10k sessions the default hook would spray thousands
/// of backtraces over stderr. Panics on any other thread keep the full
/// default report. Installed once per process, never uninstalled (the
/// filter is inert when no fleet is running).
fn silence_session_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name() != Some("ldb-session") {
                default(info);
            }
        }));
    });
}

/// Execute every spec across the worker pool and return results sorted
/// by session id (the spec's corpus index). Shedding decisions are made
/// up front, per spec, so they are identical on every run.
///
/// # Errors
/// [`FleetError::Prepare`] if any spec's target fails to compile.
pub fn run_fleet(cfg: &FleetConfig, specs: &[SessionSpec]) -> Result<Vec<SessionResult>, FleetError> {
    silence_session_panics();
    // Compile each distinct (arch, source) once, shared fleet-wide. The
    // module cache below them is shared too, so identical symbol tables
    // across programs also intern to one compile.
    let cache = ModuleCache::new();
    let mut targets: Vec<Arc<PreparedTarget>> = Vec::new();
    let mut keys: Vec<(Arch, String)> = Vec::new();
    let mut spec_target: Vec<usize> = Vec::with_capacity(specs.len());
    for spec in specs {
        let key = (spec.arch, spec.source.clone());
        let idx = match keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                let prepared = prepare_target(spec.arch, &spec.source, &cache).map_err(|e| {
                    FleetError::Prepare { spec: spec.name.clone(), detail: e }
                })?;
                keys.push(key);
                targets.push(Arc::new(prepared));
                targets.len() - 1
            }
        };
        spec_target.push(idx);
    }

    let per_worker_budget = cfg.memory_budget.map(|b| b / cfg.workers.max(1) as u64);
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<SessionResult>();
    let mut results: Vec<SessionResult> = Vec::with_capacity(specs.len());
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let targets = &targets;
            let spec_target = &spec_target;
            scope.spawn(move || {
                while let Ok(i) = job_rx.recv() {
                    let spec = &specs[i];
                    let id = i as u64;
                    let shed = match cfg.session_cap {
                        Some(cap) if i >= cap => Some(ShedReason::SessionCap),
                        _ => match per_worker_budget {
                            Some(b) if spec.estimated_bytes() > b => {
                                Some(ShedReason::MemoryBudget)
                            }
                            _ => None,
                        },
                    };
                    let result = match shed {
                        Some(reason) => shed_result(id, spec, reason, &cfg.trace),
                        None => run_session(spec, &targets[spec_target[i]], cfg, id),
                    };
                    if res_tx.send(result).is_err() {
                        return;
                    }
                }
            });
        }
        drop(res_tx);
        for i in 0..specs.len() {
            let _ = job_tx.send(i);
        }
        drop(job_tx);
        while let Ok(r) = res_rx.recv() {
            results.push(r);
        }
    });
    results.sort_by_key(|r| r.id);
    Ok(results)
}
