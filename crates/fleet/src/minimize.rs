//! Chaos-seed minimization: shrink a failing corruption schedule to a
//! minimal reproducer, verifying every step by re-execution.
//!
//! A chaos seed names an entire corruption schedule — possibly hundreds
//! of corrupted fetches — of which usually only a few matter. The
//! minimizer exploits the [`ChaosConfig::window`] knob: corruption
//! events outside `[lo, hi)` are suppressed *after* the PRNG draws, so
//! narrowing the window never reshuffles the surviving events' values.
//! Starting from the full schedule it shrinks the tail and then the
//! head with halving steps (a one-dimensional ddmin), accepting a
//! candidate window only if a deterministic re-execution of the session
//! lands in the **same crash bucket** as the original failure — the
//! bucket, not the transcript, because removing irrelevant corruptions
//! legitimately perturbs addresses and counts while leaving the
//! defect's shape intact.
//!
//! The result is re-verified by one final run before it is reported,
//! and carries everything a human needs to replay it by hand:
//! `--chaos seed=S,rate=R,window=LO..HI`.
//!
//! [`ChaosConfig::window`]: ldb_core::ChaosConfig::window

use std::sync::Arc;

use crate::{run_session, FleetConfig, PreparedTarget, SessionSpec};

/// A verified minimal reproducer for one failing chaos session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizedSeed {
    /// The chaos seed being minimized.
    pub seed: u64,
    /// The crash bucket the full schedule lands in (and every accepted
    /// candidate reproduced).
    pub bucket: String,
    /// Corruption events applied by the full schedule.
    pub full_events: u64,
    /// The minimal window `[lo, hi)` in corruption-schedule indices.
    pub window: (u64, u64),
    /// Corruption events the minimal window still applies.
    pub window_events: u64,
    /// Re-executions spent (each candidate is one full deterministic
    /// session run).
    pub runs: u32,
    /// The replay spec: `seed=…,rate=…,window=lo..hi` (paste after
    /// `--chaos`).
    pub replay: String,
}

/// Why a session could not be minimized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinimizeSkip {
    /// The spec has no chaos layer to minimize.
    NoChaos,
    /// The session does not fail (nothing to reproduce).
    NotFailing,
    /// The full run applied no corruptions (the failure is not the
    /// chaos layer's doing).
    NoCorruptions,
    /// The final verification run left the bucket — the failure is not
    /// window-stable (schedule feedback through debugger behavior), so
    /// no minimal window is claimed.
    Unstable,
}

impl std::fmt::Display for MinimizeSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MinimizeSkip::NoChaos => "spec has no chaos layer",
            MinimizeSkip::NotFailing => "session does not fail",
            MinimizeSkip::NoCorruptions => "no corruptions applied",
            MinimizeSkip::Unstable => "bucket not stable under the minimal window",
        })
    }
}

/// Minimize `spec`'s chaos schedule. Runs the full schedule once to
/// learn the target bucket and event count, then bisects.
///
/// # Errors
/// [`MinimizeSkip`] when there is nothing to minimize (no chaos layer,
/// no failure, no corruptions) or the result fails verification.
pub fn minimize_chaos(
    spec: &SessionSpec,
    prepared: &Arc<PreparedTarget>,
    cfg: &FleetConfig,
) -> Result<MinimizedSeed, MinimizeSkip> {
    let base_chaos = spec.chaos.clone().ok_or(MinimizeSkip::NoChaos)?;
    let mut runs = 0u32;
    let mut run_window = |window: Option<(u64, u64)>| {
        runs += 1;
        let mut s = spec.clone();
        let mut chaos = base_chaos.clone();
        chaos.window = window;
        s.chaos = Some(chaos);
        run_session(&s, prepared, cfg, 0)
    };

    let full = run_window(None);
    if !full.outcome.is_bucketed() {
        return Err(MinimizeSkip::NotFailing);
    }
    let bucket = full.bucket.clone().expect("bucketed outcomes carry a bucket");
    let full_events = full.health.as_ref().map_or(0, |h| h.chaos_corruptions);
    if full_events == 0 {
        return Err(MinimizeSkip::NoCorruptions);
    }

    let (mut lo, mut hi) = (0u64, full_events);
    let mut reproduces = |lo: u64, hi: u64| -> bool {
        let r = run_window(Some((lo, hi)));
        r.bucket.as_deref() == Some(bucket.as_str())
    };
    // Shrink the tail, then the head, with halving steps. Each accepted
    // shrink is already verified — acceptance *is* a deterministic
    // re-execution landing in the target bucket.
    let mut step = (hi - lo) / 2;
    while step > 0 {
        while hi - lo > step && reproduces(lo, hi - step) {
            hi -= step;
        }
        step /= 2;
    }
    step = (hi - lo) / 2;
    while step > 0 {
        while hi - lo > step && reproduces(lo + step, hi) {
            lo += step;
        }
        step /= 2;
    }

    // Final verification: the claimed minimal window must land in the
    // bucket on a fresh run (guards against any accounting slip above).
    let verified = run_window(Some((lo, hi)));
    if verified.bucket.as_deref() != Some(bucket.as_str()) {
        return Err(MinimizeSkip::Unstable);
    }
    let window_events = verified.health.as_ref().map_or(0, |h| h.chaos_corruptions);
    Ok(MinimizedSeed {
        seed: base_chaos.seed,
        bucket,
        full_events,
        window: (lo, hi),
        window_events,
        runs,
        replay: format!("seed={},rate={},window={}..{}", base_chaos.seed, base_chaos.rate, lo, hi),
    })
}
