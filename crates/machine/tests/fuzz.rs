//! Robustness: decoders are total over arbitrary bytes, and the CPU
//! survives executing random memory (faulting, never panicking).

use ldb_machine::{encode, Arch, ByteOrder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 1024 })]

    #[test]
    fn decoders_are_total(bytes in prop::collection::vec(any::<u8>(), 0..20), pc in 0u32..0x10000) {
        for arch in Arch::ALL {
            for order in [ByteOrder::Big, ByteOrder::Little] {
                if let Some((op, len)) = encode::decode(arch, &bytes, pc, order) {
                    prop_assert!(len as usize <= bytes.len().max(16));
                    // Decoded ops re-encode (except pc-relative overflow).
                    let _ = encode::encode(arch, &op, pc, order);
                }
            }
        }
    }

    #[test]
    fn cpu_step_never_panics_on_random_memory(
        seedbytes in prop::collection::vec(any::<u8>(), 64..256),
        steps in 1usize..64,
    ) {
        for arch in Arch::ALL {
            let order = arch.data().default_order;
            let mut mem = ldb_machine::Memory::new(0x1000, 0x2000, order);
            mem.write_bytes(0x1000, &seedbytes).unwrap();
            let mut cpu = ldb_machine::Cpu::new(arch, mem);
            cpu.pc = 0x1000;
            cpu.set_reg(arch.data().sp, 0x2f00);
            for _ in 0..steps {
                match cpu.step() {
                    ldb_machine::StepEvent::Continue => {}
                    _ => break,
                }
            }
        }
    }
}
