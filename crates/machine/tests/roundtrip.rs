//! Property: every operation an encoder accepts decodes back to itself,
//! on every architecture and byte order. This pins all four instruction
//! encodings (MIPS fixed 32-bit fields, SPARC condition-code forms, the
//! 68020's two-byte opwords, the VAX's one-byte opcodes) against their
//! decoders at once.

use ldb_machine::op::{AluOp, Cond, FaluOp, FltSize, MemSize, Op};
use ldb_machine::{encode, Arch, ByteOrder};
use proptest::prelude::*;

/// Signedness is meaningless for full-width loads (there is nothing to
/// extend), and decoders canonicalize it: compare modulo that.
fn canon(op: Op) -> Op {
    match op {
        Op::Load { size: MemSize::B4, rd, base, off, .. } => {
            Op::Load { size: MemSize::B4, signed: true, rd, base, off }
        }
        other => other,
    }
}

fn reg() -> impl Strategy<Value = u8> {
    0u8..14 // valid on every register file (sp/fp live higher on some)
}

fn freg() -> impl Strategy<Value = u8> {
    0u8..8
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

fn mem_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B1), Just(MemSize::B2), Just(MemSize::B4)]
}

fn flt_size() -> impl Strategy<Value = FltSize> {
    prop_oneof![Just(FltSize::F4), Just(FltSize::F8)]
}

/// Branch/jump targets near the pc, 4-aligned, positive.
fn target() -> impl Strategy<Value = u32> {
    (0x1000u32..0x5000).prop_map(|t| t & !3)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Nop),
        (0u8..16).prop_map(Op::Break),
        Just(Op::Ret),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs, rt)| Op::Alu { op, rd, rs, rt }),
        (alu_op(), reg(), reg(), -0x1000i32..0x1000)
            .prop_map(|(op, rd, rs, imm)| Op::AluI { op, rd, rs, imm: imm as i16 }),
        (reg(), reg()).prop_map(|(rd, rs)| Op::Mov { rd, rs }),
        (reg(), -0x4000i32..0x4000).prop_map(|(rd, imm)| Op::LoadImm { rd, imm }),
        (mem_size(), any::<bool>(), reg(), reg(), -0x200i16..0x200)
            .prop_map(|(size, signed, rd, base, off)| Op::Load { size, signed, rd, base, off }),
        (mem_size(), reg(), reg(), -0x200i16..0x200)
            .prop_map(|(size, rs, base, off)| Op::Store { size, rs, base, off }),
        (flt_size(), freg(), reg(), -0x200i16..0x200)
            .prop_map(|(size, fd, base, off)| Op::FLoad { size, fd, base, off }),
        (flt_size(), freg(), reg(), -0x200i16..0x200)
            .prop_map(|(size, fs, base, off)| Op::FStore { size, fs, base, off }),
        (prop_oneof![Just(FaluOp::Add), Just(FaluOp::Sub), Just(FaluOp::Mul), Just(FaluOp::Div)],
         freg(), freg(), freg())
            .prop_map(|(op, fd, fs, ft)| Op::FAlu { op, fd, fs, ft }),
        (freg(), freg()).prop_map(|(fd, fs)| Op::FMov { fd, fs }),
        (freg(), freg()).prop_map(|(fd, fs)| Op::FNeg { fd, fs }),
        (freg(), reg()).prop_map(|(fd, rs)| Op::CvtIF { fd, rs }),
        (reg(), freg()).prop_map(|(rd, fs)| Op::CvtFI { rd, fs }),
        (cond(), reg(), reg(), target())
            .prop_map(|(cond, rs, rt, target)| Op::Branch { cond, rs, rt, target }),
        (reg(), reg()).prop_map(|(rs, rt)| Op::Cmp { rs, rt }),
        reg().prop_map(|rs| Op::Tst { rs }),
        (cond(), target()).prop_map(|(cond, target)| Op::BranchCC { cond, target }),
        target().prop_map(|target| Op::Jump { target }),
        (target(), reg()).prop_map(|(target, link)| Op::JumpAndLink { target, link }),
        reg().prop_map(|rs| Op::JumpReg { rs }),
        reg().prop_map(|rs| Op::Push { rs }),
        reg().prop_map(|rd| Op::Pop { rd }),
        target().prop_map(|target| Op::Call { target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn encode_decode_roundtrips(op in op(), pc in (0x1000u32..0x5000).prop_map(|p| p & !3)) {
        for arch in Arch::ALL {
            for order in [ByteOrder::Big, ByteOrder::Little] {
                // Not every architecture encodes every operation (RISC
                // has no Push/Pop/Ret; immediates and displacements have
                // per-format ranges). Whatever the encoder accepts, the
                // decoder must reproduce exactly.
                let Ok(bytes) = encode::encode(arch, &op, pc, order) else {
                    continue;
                };
                let decoded = encode::decode(arch, &bytes, pc, order);
                prop_assert!(
                    decoded.is_some(),
                    "{arch} {order:?}: {op:?} encoded to {bytes:02x?} but did not decode"
                );
                let (back, len) = decoded.unwrap();
                prop_assert_eq!(
                    len as usize, bytes.len(),
                    "{} {:?}: length mismatch for {:?}", arch, order, op
                );
                prop_assert_eq!(
                    canon(back), canon(op),
                    "{} {:?}: {:02x?} decoded to {:?}", arch, order, &bytes, &back
                );
            }
        }
    }
}

mod core_format {
    use ldb_machine::core::{read_core, write_core};
    use ldb_machine::cpu::Cpu;
    use ldb_machine::machine::Machine;
    use ldb_machine::memory::Memory;
    use ldb_machine::{Arch, ByteOrder};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256 })]

        /// Any machine state survives a dump/load cycle bit-exactly.
        #[test]
        fn cores_roundtrip(
            arch_idx in 0usize..4,
            regs in prop::array::uniform32(any::<u32>()),
            fbits in prop::array::uniform16(any::<u64>()),
            pc in any::<u32>(),
            cc in (any::<i32>(), any::<i32>()),
            steps in any::<u64>(),
            base in 0u32..0x10000,
            mem in prop::collection::vec(any::<u8>(), 0..2048),
            output in ".{0,64}",
            sig in any::<u8>(),
            code in any::<u32>(),
            ctx in any::<u32>(),
            big in any::<bool>(),
        ) {
            let order = if big { ByteOrder::Big } else { ByteOrder::Little };
            let arch = Arch::ALL[arch_idx];
            let mut cpu = Cpu::new(arch, Memory::from_contents(base, mem.clone(), order));
            cpu.regs = regs;
            for (f, b) in cpu.fregs.iter_mut().zip(fbits) {
                *f = f64::from_bits(b);
            }
            cpu.pc = pc;
            cpu.cc = cc;
            cpu.steps = steps;
            let m = Machine { cpu, output: output.clone(), exited: None };
            let bytes = write_core(&m, sig, code, ctx);
            let (back, s2, c2, x2) = read_core(&bytes).unwrap();
            prop_assert_eq!((s2, c2, x2), (sig, code, ctx));
            prop_assert_eq!(back.cpu.arch, arch);
            prop_assert_eq!(back.cpu.regs, regs);
            // NaN-safe comparison: bits, not values.
            for (a, b) in back.cpu.fregs.iter().zip(fbits) {
                prop_assert_eq!(a.to_bits(), b);
            }
            prop_assert_eq!(back.cpu.pc, pc);
            prop_assert_eq!(back.cpu.cc, cc);
            prop_assert_eq!(back.cpu.steps, steps);
            prop_assert_eq!(back.cpu.mem.base(), base);
            prop_assert_eq!(back.cpu.mem.contents(), &mem[..]);
            prop_assert_eq!(back.cpu.mem.order(), order);
            prop_assert_eq!(back.output, output);
        }

        /// The reader is total: arbitrary bytes never panic.
        #[test]
        fn reader_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = read_core(&bytes);
        }
    }
}
