//! The execution engine: decodes and executes target instructions.
//!
//! One engine serves all four targets: machine dependence lives in the
//! decoders and in [`MachineData`]. The engine models the MIPS R3000 load
//! delay slot by *detecting* violations (a well-scheduled program never
//! reads a register in the instruction after its load; `ldb-cc`'s scheduler
//! guarantees this, inserting no-ops when it cannot fill the slot).

use crate::arch::{Arch, ByteOrder, MachineData};
use crate::encode;
use crate::memory::{Fault, Memory};
use crate::op::{AluOp, FltSize, MemSize, Op};

/// What happened during one instruction step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepEvent {
    /// Ordinary instruction retired.
    Continue,
    /// A breakpoint trap; `pc` is the address of the trap instruction
    /// (the pc has *not* been advanced).
    Breakpoint {
        /// Address of the trap instruction.
        pc: u32,
        /// The trap code.
        code: u8,
    },
    /// A host call; the pc has been advanced past the instruction.
    Syscall {
        /// Service number.
        n: u8,
    },
    /// A fault; the pc still addresses the faulting instruction.
    Fault(Fault),
}

/// A simulated CPU: registers, pc, condition codes, and memory.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Which target this is.
    pub arch: Arch,
    /// Integer registers (the architecture uses a prefix of these).
    pub regs: [u32; 32],
    /// Floating-point registers.
    pub fregs: [f64; 16],
    /// Program counter.
    pub pc: u32,
    /// Target memory.
    pub mem: Memory,
    /// Condition codes, as last set by `Cmp`/`Tst` (signed pair).
    pub cc: (i32, i32),
    /// Detect MIPS load-delay hazards (on by default for the MIPS).
    pub check_load_delay: bool,
    pending_load: Option<u8>,
    /// Retired instruction count.
    pub steps: u64,
}

impl Cpu {
    /// A CPU for `arch` with the given memory. Registers start at zero.
    pub fn new(arch: Arch, mem: Memory) -> Cpu {
        Cpu {
            arch,
            regs: [0; 32],
            fregs: [0.0; 16],
            pc: 0,
            mem,
            cc: (0, 0),
            check_load_delay: arch == Arch::Mips,
            pending_load: None,
            steps: 0,
        }
    }

    /// The machine-dependent data for this CPU's target.
    pub fn data(&self) -> &'static MachineData {
        self.arch.data()
    }

    /// Read an integer register, honouring the hardwired zero. Indices
    /// are masked to the register file: malformed encodings (which only
    /// arise from corrupt code bytes) alias registers instead of
    /// panicking.
    pub fn reg(&self, r: u8) -> u32 {
        if self.data().zero_reg == Some(r) {
            0
        } else {
            self.regs[(r & 31) as usize]
        }
    }

    /// Write an integer register; writes to the hardwired zero are ignored.
    pub fn set_reg(&mut self, r: u8, v: u32) {
        if self.data().zero_reg != Some(r) {
            self.regs[(r & 31) as usize] = v;
        }
    }

    /// Read a floating register (index masked, as for [`Cpu::reg`]).
    pub fn freg(&self, f: u8) -> f64 {
        self.fregs[(f & 15) as usize]
    }

    /// Write a floating register.
    pub fn set_freg(&mut self, f: u8, v: f64) {
        self.fregs[(f & 15) as usize] = v;
    }

    /// The load-delay pipeline state: which register (if any) the last
    /// retired instruction loaded. Snapshots must carry this — restoring
    /// mid-delay-slot without it would change hazard detection.
    pub fn pending_load(&self) -> Option<u8> {
        self.pending_load
    }

    /// Restore the load-delay pipeline state (snapshot restore only).
    pub fn set_pending_load(&mut self, r: Option<u8>) {
        self.pending_load = r;
    }

    fn sp(&self) -> u8 {
        self.data().sp
    }

    fn push32(&mut self, v: u32) -> Result<(), Fault> {
        let sp = self.reg(self.sp()).wrapping_sub(4);
        self.mem.write_u32(sp, v)?;
        let spr = self.sp();
        self.set_reg(spr, sp);
        Ok(())
    }

    fn pop32(&mut self) -> Result<u32, Fault> {
        let spr = self.sp();
        let sp = self.reg(spr);
        let v = self.mem.read_u32(sp)?;
        self.set_reg(spr, sp.wrapping_add(4));
        Ok(v)
    }

    /// Decode the instruction at the current pc without executing it.
    pub fn decode_current(&self) -> Option<(Op, u8)> {
        let limit = self.mem.limit();
        if self.pc < self.mem.base() || self.pc >= limit {
            return None;
        }
        let avail = (limit - self.pc).min(16);
        let bytes = self.mem.read_bytes(self.pc, avail).ok()?;
        encode::decode(self.arch, bytes, self.pc, self.mem.order())
    }

    /// Execute one instruction.
    pub fn step(&mut self) -> StepEvent {
        let (op, len) = match self.decode_current() {
            Some(x) => x,
            None => return StepEvent::Fault(Fault::IllegalInstruction { pc: self.pc }),
        };
        // MIPS load-delay hazard detection.
        if self.check_load_delay {
            if let Some(loaded) = self.pending_load {
                if reads_reg(&op, loaded, self.data()) {
                    self.pending_load = None;
                    return StepEvent::Fault(Fault::LoadDelayHazard { pc: self.pc, reg: loaded });
                }
            }
        }
        self.pending_load = match op {
            Op::Load { rd, .. } => Some(rd),
            _ => None,
        };
        let next = self.pc.wrapping_add(len as u32);
        match self.exec(&op, next) {
            Ok(ev) => {
                self.steps += 1;
                ev
            }
            Err(f) => StepEvent::Fault(f),
        }
    }

    fn exec(&mut self, op: &Op, next: u32) -> Result<StepEvent, Fault> {
        let mut pc = next;
        match *op {
            Op::Nop => {}
            Op::Break(code) => {
                return Ok(StepEvent::Breakpoint { pc: self.pc, code });
            }
            Op::Syscall(n) => {
                self.pc = next;
                return Ok(StepEvent::Syscall { n });
            }
            Op::LoadImm { rd, imm } => self.set_reg(rd, imm as u32),
            Op::LoadUpper { rd, imm } => self.set_reg(rd, (imm as u32) << 16),
            Op::Mov { rd, rs } => {
                let v = self.reg(rs);
                self.set_reg(rd, v);
            }
            Op::Alu { op, rd, rs, rt } => {
                let v = alu(op, self.reg(rs), self.reg(rt))?;
                self.set_reg(rd, v);
            }
            Op::AluI { op, rd, rs, imm } => {
                // Logical immediates zero-extend (as MIPS andi/ori/xori do);
                // arithmetic immediates sign-extend.
                let immv = match op {
                    AluOp::And | AluOp::Or | AluOp::Xor => imm as u16 as u32,
                    _ => imm as i32 as u32,
                };
                let v = alu(op, self.reg(rs), immv)?;
                self.set_reg(rd, v);
            }
            Op::Load { size, signed, rd, base, off } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                let v = match (size, signed) {
                    (MemSize::B1, true) => self.mem.read_u8(addr)? as i8 as i32 as u32,
                    (MemSize::B1, false) => self.mem.read_u8(addr)? as u32,
                    (MemSize::B2, true) => self.mem.read_u16(addr)? as i16 as i32 as u32,
                    (MemSize::B2, false) => self.mem.read_u16(addr)? as u32,
                    (MemSize::B4, _) => self.mem.read_u32(addr)?,
                };
                self.set_reg(rd, v);
            }
            Op::Store { size, rs, base, off } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                let v = self.reg(rs);
                match size {
                    MemSize::B1 => self.mem.write_u8(addr, v as u8)?,
                    MemSize::B2 => self.mem.write_u16(addr, v as u16)?,
                    MemSize::B4 => self.mem.write_u32(addr, v)?,
                }
            }
            Op::FLoad { size, fd, base, off } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                let v = match size {
                    FltSize::F4 => self.mem.read_f32(addr)? as f64,
                    FltSize::F8 => self.mem.read_f64(addr)?,
                    FltSize::F10 => {
                        let b = self.mem.read_bytes(addr, 10)?;
                        let mut a = [0u8; 10];
                        a.copy_from_slice(b);
                        crate::f80::decode(&a)
                    }
                };
                self.set_freg(fd, v);
            }
            Op::FStore { size, fs, base, off } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                let v = self.freg(fs);
                match size {
                    FltSize::F4 => self.mem.write_f32(addr, v as f32)?,
                    FltSize::F8 => self.mem.write_f64(addr, v)?,
                    FltSize::F10 => {
                        let b = crate::f80::encode(v);
                        self.mem.write_bytes(addr, &b)?;
                    }
                }
            }
            Op::FAlu { op, fd, fs, ft } => {
                let (a, b) = (self.freg(fs), self.freg(ft));
                let v = match op {
                    crate::op::FaluOp::Add => a + b,
                    crate::op::FaluOp::Sub => a - b,
                    crate::op::FaluOp::Mul => a * b,
                    crate::op::FaluOp::Div => a / b,
                };
                self.set_freg(fd, v);
            }
            Op::FNeg { fd, fs } => self.set_freg(fd, -self.freg(fs)),
            Op::FMov { fd, fs } => self.set_freg(fd, self.freg(fs)),
            Op::CvtIF { fd, rs } => self.set_freg(fd, self.reg(rs) as i32 as f64),
            Op::CvtFI { rd, fs } => {
                let v = self.freg(fs);
                self.set_reg(rd, v.trunc() as i64 as u32);
            }
            Op::FCmp { cond, rd, fs, ft } => {
                let r = cond.eval_f(self.freg(fs), self.freg(ft));
                self.set_reg(rd, r as u32);
            }
            Op::Branch { cond, rs, rt, target } => {
                if cond.eval(self.reg(rs) as i32, self.reg(rt) as i32) {
                    pc = target;
                }
            }
            Op::Cmp { rs, rt } => self.cc = (self.reg(rs) as i32, self.reg(rt) as i32),
            Op::Tst { rs } => self.cc = (self.reg(rs) as i32, 0),
            Op::BranchCC { cond, target } => {
                if cond.eval(self.cc.0, self.cc.1) {
                    pc = target;
                }
            }
            Op::Jump { target } => pc = target,
            Op::JumpAndLink { target, link } => {
                self.set_reg(link, next);
                pc = target;
            }
            Op::JumpReg { rs } => pc = self.reg(rs),
            Op::Push { rs } => {
                let v = self.reg(rs);
                self.push32(v)?;
            }
            Op::Pop { rd } => {
                let v = self.pop32()?;
                self.set_reg(rd, v);
            }
            Op::Call { target } => {
                self.push32(next)?;
                pc = target;
            }
            Op::Ret => pc = self.pop32()?,
            Op::Link { fp, size } => {
                let old = self.reg(fp);
                self.push32(old)?;
                let sp = self.reg(self.sp());
                self.set_reg(fp, sp);
                let spr = self.sp();
                self.set_reg(spr, sp.wrapping_sub(size as u32));
            }
            Op::Unlink { fp } => {
                let fpv = self.reg(fp);
                let spr = self.sp();
                self.set_reg(spr, fpv);
                let old = self.pop32()?;
                self.set_reg(fp, old);
            }
            Op::SaveRegs { mask } => {
                for r in 0..16u8 {
                    if mask & (1 << r) != 0 {
                        let v = self.reg(r);
                        self.push32(v)?;
                    }
                }
            }
            Op::RestoreRegs { mask } => {
                for r in (0..16u8).rev() {
                    if mask & (1 << r) != 0 {
                        let v = self.pop32()?;
                        self.set_reg(r, v);
                    }
                }
            }
        }
        self.pc = pc;
        Ok(StepEvent::Continue)
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> Result<u32, Fault> {
    let (sa, sb) = (a as i32, b as i32);
    Ok(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                return Err(Fault::DivideByZero);
            }
            sa.wrapping_div(sb) as u32
        }
        AluOp::Rem => {
            if b == 0 {
                return Err(Fault::DivideByZero);
            }
            sa.wrapping_rem(sb) as u32
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => (sa >> (b & 31)) as u32,
        AluOp::Slt => (sa < sb) as u32,
        AluOp::Sltu => (a < b) as u32,
    })
}

/// Does `op` read integer register `r`? Used for load-delay hazard checks.
fn reads_reg(op: &Op, r: u8, data: &MachineData) -> bool {
    if data.zero_reg == Some(r) {
        return false;
    }
    match *op {
        Op::Mov { rs, .. } | Op::JumpReg { rs } | Op::Tst { rs } | Op::Push { rs } => rs == r,
        Op::Alu { rs, rt, .. } | Op::Branch { rs, rt, .. } | Op::Cmp { rs, rt } => {
            rs == r || rt == r
        }
        Op::AluI { rs, .. } | Op::CvtIF { rs, .. } => rs == r,
        Op::Load { base, .. } | Op::FLoad { base, .. } => base == r,
        Op::Store { rs, base, .. } => rs == r || base == r,
        Op::FStore { base, .. } => base == r,
        _ => false,
    }
}

/// The host services a target program can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// Terminate with the exit code in the syscall argument register.
    Exit,
    /// Print the argument register as a signed decimal.
    PutInt,
    /// Print the NUL-terminated string at the argument address.
    PutStr,
    /// Print the argument as one character.
    PutChar,
    /// Print floating-point register f0.
    PutFlt,
    /// Stop before `main` and wait for the debugger (the nub's "pause").
    Pause,
}

impl Service {
    /// Service number used in `Syscall` instructions.
    pub fn number(self) -> u8 {
        match self {
            Service::Exit => 0,
            Service::PutInt => 1,
            Service::PutStr => 2,
            Service::PutChar => 3,
            Service::PutFlt => 4,
            Service::Pause => 5,
        }
    }

    /// Inverse of [`Service::number`].
    pub fn from_number(n: u8) -> Option<Service> {
        Some(match n {
            0 => Service::Exit,
            1 => Service::PutInt,
            2 => Service::PutStr,
            3 => Service::PutChar,
            4 => Service::PutFlt,
            5 => Service::Pause,
            _ => return None,
        })
    }
}

/// Build a CPU with standard layout constants for tests.
pub fn test_cpu(arch: Arch, order: ByteOrder) -> Cpu {
    let mem = Memory::new(0x1000, 0x4_0000, order);
    let mut cpu = Cpu::new(arch, mem);
    cpu.pc = 0x1000;
    let sp = arch.data().sp;
    cpu.set_reg(sp, 0x1000 + 0x4_0000);
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Cond;

    /// Assemble ops at 0x1000 and run until breakpoint/fault/exit syscall.
    fn run(arch: Arch, ops: &[Op]) -> (Cpu, StepEvent) {
        let order = arch.data().default_order;
        let mut cpu = test_cpu(arch, order);
        let mut pc = cpu.pc;
        for op in ops {
            let bytes = encode::encode(arch, op, pc, order).expect("encodable");
            cpu.mem.write_bytes(pc, &bytes).unwrap();
            pc += bytes.len() as u32;
        }
        for _ in 0..10_000 {
            let ev = cpu.step();
            if ev != StepEvent::Continue {
                return (cpu, ev);
            }
        }
        panic!("did not stop");
    }

    #[test]
    fn arithmetic_on_all_targets() {
        for arch in Arch::ALL {
            let ops = [
                Op::LoadImm { rd: 1, imm: 6 },
                Op::LoadImm { rd: 2, imm: 7 },
                Op::Alu { op: AluOp::Mul, rd: 3, rs: 1, rt: 2 },
                Op::Syscall(Service::Exit.number()),
            ];
            let (cpu, ev) = run(arch, &ops);
            assert_eq!(ev, StepEvent::Syscall { n: 0 }, "{arch}");
            assert_eq!(cpu.reg(3), 42, "{arch}");
        }
    }

    #[test]
    fn divide_by_zero_faults_everywhere() {
        for arch in Arch::ALL {
            let ops = [
                Op::LoadImm { rd: 1, imm: 6 },
                Op::LoadImm { rd: 2, imm: 0 },
                Op::Alu { op: AluOp::Div, rd: 3, rs: 1, rt: 2 },
            ];
            let (cpu, ev) = run(arch, &ops);
            assert_eq!(ev, StepEvent::Fault(Fault::DivideByZero), "{arch}");
            // pc still addresses the faulting instruction.
            let (op, _) = cpu.decode_current().unwrap();
            assert!(matches!(op, Op::Alu { op: AluOp::Div, .. }), "{arch}");
        }
    }

    #[test]
    fn breakpoint_leaves_pc_at_trap() {
        for arch in Arch::ALL {
            let ops = [Op::Nop, Op::Break(if arch == Arch::Sparc { 1 } else { 0 })];
            let (cpu, ev) = run(arch, &ops);
            match ev {
                StepEvent::Breakpoint { pc, .. } => {
                    assert_eq!(pc, cpu.pc, "{arch}");
                    assert_eq!(pc, 0x1000 + arch.data().insn_unit as u32, "{arch}");
                }
                other => panic!("{arch}: {other:?}"),
            }
        }
    }

    #[test]
    fn null_dereference_faults() {
        for arch in Arch::ALL {
            let ops = [
                Op::LoadImm { rd: 1, imm: 0 },
                Op::Nop, // avoid the MIPS load-delay slot of the next load
                Op::Load { size: MemSize::B4, signed: true, rd: 2, base: 1, off: 0 },
            ];
            let (_, ev) = run(arch, &ops);
            assert_eq!(ev, StepEvent::Fault(Fault::BadAddress { addr: 0, write: false }), "{arch}");
        }
    }

    #[test]
    fn mips_branch_compares_registers() {
        let ops = [
            Op::LoadImm { rd: 1, imm: 3 },
            Op::LoadImm { rd: 2, imm: 5 },
            Op::Branch { cond: Cond::Lt, rs: 1, rt: 2, target: 0x1000 + 5 * 4 },
            Op::LoadImm { rd: 3, imm: 111 }, // skipped
            Op::Break(0),
            Op::LoadImm { rd: 3, imm: 222 },
            Op::Break(0),
        ];
        let (cpu, ev) = run(Arch::Mips, &ops);
        assert!(matches!(ev, StepEvent::Breakpoint { .. }));
        assert_eq!(cpu.reg(3), 222);
    }

    #[test]
    fn cc_branches_on_cisc_and_sparc() {
        for arch in [Arch::Sparc, Arch::M68k, Arch::Vax] {
            // if (3 < 5) r3 = 222 else r3 = 111
            let order = arch.data().default_order;
            let mut cpu = test_cpu(arch, order);
            let base = cpu.pc;
            // Lay out with a two-pass mini assembler.
            let ops = |target: u32| {
                vec![
                    Op::LoadImm { rd: 1, imm: 3 },
                    Op::LoadImm { rd: 2, imm: 5 },
                    Op::Cmp { rs: 1, rt: 2 },
                    Op::BranchCC { cond: Cond::Lt, target },
                    Op::LoadImm { rd: 3, imm: 111 },
                    Op::Break(if arch == Arch::Sparc { 1 } else { 0 }),
                    Op::LoadImm { rd: 3, imm: 222 },
                    Op::Break(if arch == Arch::Sparc { 1 } else { 0 }),
                ]
            };
            // First pass with dummy target to learn offsets.
            let dummy = ops(base);
            let mut offs = Vec::new();
            let mut pc = base;
            for op in &dummy {
                offs.push(pc);
                pc += encode::length(arch, op) as u32;
            }
            let target = offs[6];
            let real = ops(target);
            let mut pc = base;
            for op in &real {
                let bytes = encode::encode(arch, op, pc, order).unwrap();
                cpu.mem.write_bytes(pc, &bytes).unwrap();
                pc += bytes.len() as u32;
            }
            loop {
                match cpu.step() {
                    StepEvent::Continue => continue,
                    StepEvent::Breakpoint { .. } => break,
                    other => panic!("{arch}: {other:?}"),
                }
            }
            assert_eq!(cpu.reg(3), 222, "{arch}");
        }
    }

    #[test]
    fn cisc_call_ret_and_link() {
        for arch in [Arch::M68k, Arch::Vax] {
            let d = arch.data();
            let order = d.default_order;
            let mut cpu = test_cpu(arch, order);
            let base = cpu.pc;
            let fp = d.fp.unwrap();
            // main: call f; break.  f: link fp,#8; r1 = 7; unlk; ret
            let plan = |ftarget: u32| {
                vec![
                    Op::Call { target: ftarget },
                    Op::Break(0),
                    Op::Link { fp, size: 8 },
                    Op::LoadImm { rd: 1, imm: 7 },
                    Op::Unlink { fp },
                    Op::Ret,
                ]
            };
            let mut offs = Vec::new();
            let mut pc = base;
            for op in &plan(base) {
                offs.push(pc);
                pc += encode::length(arch, op) as u32;
            }
            let real = plan(offs[2]);
            let mut pc = base;
            for op in &real {
                let bytes = encode::encode(arch, op, pc, order).unwrap();
                cpu.mem.write_bytes(pc, &bytes).unwrap();
                pc += bytes.len() as u32;
            }
            let sp0 = cpu.reg(d.sp);
            loop {
                match cpu.step() {
                    StepEvent::Continue => continue,
                    StepEvent::Breakpoint { .. } => break,
                    other => panic!("{arch}: {other:?}"),
                }
            }
            assert_eq!(cpu.reg(1), 7, "{arch}");
            assert_eq!(cpu.reg(d.sp), sp0, "{arch}: stack balanced");
        }
    }

    #[test]
    fn save_restore_masks() {
        for arch in [Arch::M68k, Arch::Vax] {
            let ops = [
                Op::LoadImm { rd: 2, imm: 10 },
                Op::LoadImm { rd: 3, imm: 20 },
                Op::SaveRegs { mask: 0b1100 },
                Op::LoadImm { rd: 2, imm: 0 },
                Op::LoadImm { rd: 3, imm: 0 },
                Op::RestoreRegs { mask: 0b1100 },
                Op::Break(0),
            ];
            let (cpu, _) = run(arch, &ops);
            assert_eq!(cpu.reg(2), 10, "{arch}");
            assert_eq!(cpu.reg(3), 20, "{arch}");
        }
    }

    #[test]
    fn mips_load_delay_hazard_detected() {
        let ops = [
            Op::AluI { op: AluOp::Add, rd: 1, rs: 29, imm: -64 },
            Op::Store { size: MemSize::B4, rs: 29, base: 1, off: 0 },
            Op::Load { size: MemSize::B4, signed: true, rd: 2, base: 1, off: 0 },
            Op::Mov { rd: 3, rs: 2 }, // reads r2 in the delay slot!
        ];
        let (_, ev) = run(Arch::Mips, &ops);
        assert!(matches!(ev, StepEvent::Fault(Fault::LoadDelayHazard { reg: 2, .. })), "{ev:?}");
    }

    #[test]
    fn mips_load_delay_filled_with_nop_is_fine() {
        let ops = [
            Op::AluI { op: AluOp::Add, rd: 1, rs: 29, imm: -64 },
            Op::Store { size: MemSize::B4, rs: 29, base: 1, off: 0 },
            Op::Load { size: MemSize::B4, signed: true, rd: 2, base: 1, off: 0 },
            Op::Nop,
            Op::Mov { rd: 3, rs: 2 },
            Op::Break(0),
        ];
        let (cpu, ev) = run(Arch::Mips, &ops);
        assert!(matches!(ev, StepEvent::Breakpoint { .. }));
        assert_eq!(cpu.reg(3), cpu.reg(2));
    }

    #[test]
    fn zero_register_is_hardwired() {
        let ops = [
            Op::LoadImm { rd: 0, imm: 99 },
            Op::Mov { rd: 1, rs: 0 },
            Op::Break(0),
        ];
        let (cpu, _) = run(Arch::Mips, &ops);
        assert_eq!(cpu.reg(1), 0);
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn float_pipeline_and_f80() {
        // 68020: compute 2.5 * 4.0 via 80-bit spills.
        let d = Arch::M68k.data();
        let mut cpu = test_cpu(Arch::M68k, d.default_order);
        let base = cpu.pc;
        let scratch = 0x2000;
        let ops = vec![
            Op::LoadImm { rd: 1, imm: 5 },
            Op::CvtIF { fd: 0, rs: 1 }, // f0 = 5.0
            Op::LoadImm { rd: 2, imm: 2 },
            Op::CvtIF { fd: 1, rs: 2 }, // f1 = 2.0
            Op::FAlu { op: crate::op::FaluOp::Div, fd: 2, fs: 0, ft: 1 }, // 2.5
            Op::LoadImm { rd: 3, imm: scratch },
            Op::FStore { size: FltSize::F10, fs: 2, base: 3, off: 0 },
            Op::FLoad { size: FltSize::F10, fd: 3, base: 3, off: 0 },
            Op::LoadImm { rd: 4, imm: 4 },
            Op::CvtIF { fd: 4, rs: 4 },
            Op::FAlu { op: crate::op::FaluOp::Mul, fd: 5, fs: 3, ft: 4 },
            Op::CvtFI { rd: 5, fs: 5 },
            Op::Break(0),
        ];
        let mut pc = base;
        for op in &ops {
            let bytes = encode::encode(Arch::M68k, op, pc, d.default_order).unwrap();
            cpu.mem.write_bytes(pc, &bytes).unwrap();
            pc += bytes.len() as u32;
        }
        loop {
            match cpu.step() {
                StepEvent::Continue => continue,
                StepEvent::Breakpoint { .. } => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(cpu.fregs[2], 2.5);
        assert_eq!(cpu.fregs[3], 2.5);
        assert_eq!(cpu.reg(5), 10);
    }

    #[test]
    fn illegal_instruction_faults() {
        for arch in Arch::ALL {
            let order = arch.data().default_order;
            let mut cpu = test_cpu(arch, order);
            cpu.mem.write_bytes(0x1000, &[0xff, 0xff, 0xff, 0xff]).unwrap();
            let ev = cpu.step();
            assert_eq!(ev, StepEvent::Fault(Fault::IllegalInstruction { pc: 0x1000 }), "{arch}");
        }
    }
}
