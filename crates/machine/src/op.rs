//! The semantic operation set shared by all four simulated targets.
//!
//! Every target architecture encodes these operations in its own
//! machine-dependent byte format (see [`crate::encode`]); the execution
//! engine interprets decoded [`Op`]s uniformly. This split mirrors how the
//! reproduction isolates machine dependence: the *encodings*, byte orders,
//! instruction granularities, and calling conventions differ per target,
//! while the semantics are shared.

/// ALU operations (integer, register-register or register-immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition (wrapping, as hardware does).
    Add,
    /// Subtraction.
    Sub,
    /// Signed multiplication (low 32 bits).
    Mul,
    /// Signed division; divide by zero faults.
    Div,
    /// Signed remainder; divide by zero faults.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left logical (by rt & 31).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set-on-less-than, signed: rd = (rs < rt) as u32.
    Slt,
    /// Set-on-less-than, unsigned.
    Sltu,
}

/// Branch conditions, comparing two registers as signed 32-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
}

impl Cond {
    /// A stable small index for encoders.
    pub fn index(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Ge => 3,
            Cond::Le => 4,
            Cond::Gt => 5,
        }
    }

    /// Inverse of [`Cond::index`].
    pub fn from_index(i: u8) -> Option<Cond> {
        Some(match i {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Ge,
            4 => Cond::Le,
            5 => Cond::Gt,
            _ => return None,
        })
    }

    /// Evaluate the condition on two signed values.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }

    /// Evaluate on floats (for `FCmp`).
    pub fn eval_f(self, a: f64, b: f64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }

    /// The negated condition (used by code generators).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
        }
    }
}

impl AluOp {
    /// A stable small index for encoders.
    pub fn index(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Mul => 2,
            AluOp::Div => 3,
            AluOp::Rem => 4,
            AluOp::And => 5,
            AluOp::Or => 6,
            AluOp::Xor => 7,
            AluOp::Sll => 8,
            AluOp::Srl => 9,
            AluOp::Sra => 10,
            AluOp::Slt => 11,
            AluOp::Sltu => 12,
        }
    }

    /// Inverse of [`AluOp::index`].
    pub fn from_index(i: u8) -> Option<AluOp> {
        Some(match i {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::Div,
            4 => AluOp::Rem,
            5 => AluOp::And,
            6 => AluOp::Or,
            7 => AluOp::Xor,
            8 => AluOp::Sll,
            9 => AluOp::Srl,
            10 => AluOp::Sra,
            11 => AluOp::Slt,
            12 => AluOp::Sltu,
            _ => return None,
        })
    }
}

impl FaluOp {
    /// A stable small index for encoders.
    pub fn index(self) -> u8 {
        match self {
            FaluOp::Add => 0,
            FaluOp::Sub => 1,
            FaluOp::Mul => 2,
            FaluOp::Div => 3,
        }
    }

    /// Inverse of [`FaluOp::index`].
    pub fn from_index(i: u8) -> Option<FaluOp> {
        Some(match i {
            0 => FaluOp::Add,
            1 => FaluOp::Sub,
            2 => FaluOp::Mul,
            3 => FaluOp::Div,
            _ => return None,
        })
    }
}

/// Integer memory-access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSize {
    /// 8 bits.
    B1,
    /// 16 bits.
    B2,
    /// 32 bits.
    B4,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
        }
    }
}

/// Floating-point storage widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FltSize {
    /// IEEE single (4 bytes).
    F4,
    /// IEEE double (8 bytes).
    F8,
    /// 80-bit extended, 68020 only (10 bytes, x87 layout).
    F10,
}

impl FltSize {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            FltSize::F4 => 4,
            FltSize::F8 => 8,
            FltSize::F10 => 10,
        }
    }
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (IEEE semantics; no fault).
    Div,
}

/// A decoded instruction.
///
/// Register operands are indices into the integer register file (`rd`, `rs`,
/// `rt`, `base`) or the floating-point register file (`fd`, `fs`, `ft`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// No operation. The compiler plants one at every stopping point when
    /// compiling for debugging; the debugger overwrites them with `Break`.
    Nop,
    /// Breakpoint trap; `code` distinguishes planted breakpoints (ldb uses
    /// a single code) from compiled-in traps.
    Break(u8),
    /// Host call: `n` selects the service, the argument convention is
    /// per-architecture (see [`crate::arch::MachineData::syscall_arg_reg`]).
    Syscall(u8),
    /// rd = imm. RISC encoders require the value to fit 16 signed bits
    /// (larger constants pair `LoadUpper` with `AluI Or`); CISC encoders
    /// take the full 32 bits.
    LoadImm { rd: u8, imm: i32 },
    /// rd = imm << 16 (pairs with `AluI Or` to build 32-bit constants).
    LoadUpper { rd: u8, imm: u16 },
    /// rd = rs.
    Mov { rd: u8, rs: u8 },
    /// rd = rs `op` rt.
    Alu { op: AluOp, rd: u8, rs: u8, rt: u8 },
    /// rd = rs `op` imm.
    AluI { op: AluOp, rd: u8, rs: u8, imm: i16 },
    /// rd = mem[base + off], sign- or zero-extended from `size`.
    Load { size: MemSize, signed: bool, rd: u8, base: u8, off: i16 },
    /// mem[base + off] = rs (low `size` bytes).
    Store { size: MemSize, rs: u8, base: u8, off: i16 },
    /// fd = fmem[base + off].
    FLoad { size: FltSize, fd: u8, base: u8, off: i16 },
    /// fmem[base + off] = fs.
    FStore { size: FltSize, fs: u8, base: u8, off: i16 },
    /// fd = fs `op` ft.
    FAlu { op: FaluOp, fd: u8, fs: u8, ft: u8 },
    /// fd = (double) rs (signed int to float).
    CvtIF { fd: u8, rs: u8 },
    /// rd = (int) fs (truncating).
    CvtFI { rd: u8, fs: u8 },
    /// rd = (fs `cond` ft) as 0/1.
    FCmp { cond: Cond, rd: u8, fs: u8, ft: u8 },
    /// Negate: fd = -fs.
    FNeg { fd: u8, fs: u8 },
    /// fd = fs.
    FMov { fd: u8, fs: u8 },
    /// Conditional branch to absolute byte address `target`, comparing two
    /// registers directly (MIPS style).
    Branch { cond: Cond, rs: u8, rt: u8, target: u32 },
    /// Compare rs with rt, setting the condition codes (SPARC/68020/VAX
    /// style).
    Cmp { rs: u8, rt: u8 },
    /// Compare rs with zero, setting the condition codes.
    Tst { rs: u8 },
    /// Branch on the condition codes established by `Cmp`/`Tst`.
    BranchCC { cond: Cond, target: u32 },
    /// Unconditional jump to absolute byte address.
    Jump { target: u32 },
    /// Call: link register := return address, jump (RISC convention).
    JumpAndLink { target: u32, link: u8 },
    /// Indirect jump (returns on RISC; switch tables).
    JumpReg { rs: u8 },
    /// Push rs on the stack (CISC convention; sp is per-arch).
    Push { rs: u8 },
    /// Pop into rd.
    Pop { rd: u8 },
    /// Call: push return address, jump (CISC convention).
    Call { target: u32 },
    /// Return: pop return address, jump (CISC convention).
    Ret,
    /// `link fp,#size`: push fp; fp := sp; sp -= size (68020/VAX entry).
    Link { fp: u8, size: u16 },
    /// `unlk fp`: sp := fp; pop fp.
    Unlink { fp: u8 },
    /// Push the registers named in `mask` (bit i = register i), ascending.
    SaveRegs { mask: u16 },
    /// Pop the registers named in `mask`, descending.
    RestoreRegs { mask: u16 },
}

impl Op {
    /// Is this the no-op the compiler plants at stopping points?
    pub fn is_nop(self) -> bool {
        matches!(self, Op::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(MemSize::B1.bytes(), 1);
        assert_eq!(MemSize::B4.bytes(), 4);
        assert_eq!(FltSize::F10.bytes(), 10);
    }

    #[test]
    fn nop_detection() {
        assert!(Op::Nop.is_nop());
        assert!(!Op::Break(0).is_nop());
    }
}
