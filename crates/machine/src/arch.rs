//! Target-architecture descriptions.
//!
//! Each of the four targets is described by a [`MachineData`] value: the
//! machine-dependent *data* that machine-independent code is parameterized
//! by. The paper's interim breakpoint implementation, for instance, needs
//! exactly four machine-dependent items (Sec. 3): the bit patterns for
//! `break` and no-op, the type used to fetch and store instructions, and
//! the amount to advance the program counter after interpreting the no-op.
//! Those are [`MachineData::break_pattern`], [`MachineData::nop_pattern`],
//! [`MachineData::insn_unit`], and [`MachineData::pc_advance`].

use std::fmt;

/// Byte order of a target. The MIPS runs either way (the paper debugs both
/// little- and big-endian MIPS with the same code); the others are fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Least-significant byte first (VAX, little-endian MIPS).
    Little,
    /// Most-significant byte first (68020, SPARC, big-endian MIPS).
    Big,
}

/// The four target architectures of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// MIPS R3000-like: fixed 4-byte instructions, load delay slots, no
    /// frame pointer (frame sizes come from the runtime procedure table),
    /// either byte order.
    Mips,
    /// Motorola 68020-like: variable-length instructions, big-endian,
    /// frame pointer (`link`/`unlk`), register-save masks, 80-bit floats.
    M68k,
    /// SPARC-like: fixed 4-byte instructions, big-endian, frame pointer.
    Sparc,
    /// VAX-like: variable-length instructions (1-byte no-op!),
    /// little-endian, frame pointer, entry save masks.
    Vax,
}

impl Arch {
    /// All targets, in the order the paper's tables list them.
    pub const ALL: [Arch; 4] = [Arch::Mips, Arch::M68k, Arch::Sparc, Arch::Vax];

    /// The lowercase name used in symbol tables (`/architecture (sparc)`).
    pub fn name(self) -> &'static str {
        self.data().name
    }

    /// Parse an architecture name.
    pub fn from_name(s: &str) -> Option<Arch> {
        match s {
            "mips" => Some(Arch::Mips),
            "m68k" | "68020" => Some(Arch::M68k),
            "sparc" => Some(Arch::Sparc),
            "vax" => Some(Arch::Vax),
            _ => None,
        }
    }

    /// The machine-dependent data for this target.
    pub fn data(self) -> &'static MachineData {
        match self {
            Arch::Mips => &MIPS,
            Arch::M68k => &M68K,
            Arch::Sparc => &SPARC,
            Arch::Vax => &VAX,
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Layout of a *context*: the memory area in which the nub saves the state
/// of a stopped program (paper, Sec. 4.1/4.2). Offsets are relative to the
/// start of the context block in the target's data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextLayout {
    /// Offset of the saved program counter (4 bytes).
    pub pc_offset: u32,
    /// Offset of integer register 0; registers are 4 bytes each.
    pub reg_offset: u32,
    /// Number of integer registers saved.
    pub nregs: u8,
    /// Offset of floating-point register 0; registers are 8 bytes each.
    pub freg_offset: u32,
    /// Number of floating-point registers saved.
    pub nfregs: u8,
    /// Total context size in bytes.
    pub size: u32,
}

impl ContextLayout {
    const fn new(nregs: u8, nfregs: u8) -> ContextLayout {
        let pc_offset = 0;
        let reg_offset = 4;
        let freg_offset = reg_offset + nregs as u32 * 4;
        ContextLayout {
            pc_offset,
            reg_offset,
            nregs,
            freg_offset,
            nfregs,
            size: freg_offset + nfregs as u32 * 8,
        }
    }

    /// Offset of integer register `r` within the context.
    pub fn reg(&self, r: u8) -> u32 {
        debug_assert!(r < self.nregs);
        self.reg_offset + r as u32 * 4
    }

    /// Offset of floating-point register `f` within the context.
    pub fn freg(&self, f: u8) -> u32 {
        debug_assert!(f < self.nfregs);
        self.freg_offset + f as u32 * 8
    }
}

/// Machine-dependent data describing one target.
#[derive(Debug)]
pub struct MachineData {
    /// Which architecture this describes.
    pub arch: Arch,
    /// Lowercase name used in symbol tables and command lines.
    pub name: &'static str,
    /// Default byte order (MIPS can be overridden per image).
    pub default_order: ByteOrder,
    /// Instruction granularity in bytes: the type used to fetch and store
    /// instructions when planting breakpoints (4 = word, 2 = halfword,
    /// 1 = byte).
    pub insn_unit: u8,
    /// The no-op bit pattern, right-aligned in a word of `insn_unit` bytes.
    pub nop_pattern: u32,
    /// The breakpoint-trap bit pattern, same width as `nop_pattern`.
    pub break_pattern: u32,
    /// How far to advance the pc after "interpreting" the no-op out of line.
    pub pc_advance: u8,
    /// Number of integer registers.
    pub nregs: u8,
    /// Number of floating-point registers.
    pub nfregs: u8,
    /// Stack-pointer register index.
    pub sp: u8,
    /// Frame-pointer register index; `None` on the MIPS, which has no frame
    /// pointer (the debugger computes a *virtual* frame pointer instead).
    pub fp: Option<u8>,
    /// Link (return-address) register for RISC call conventions.
    pub ra: Option<u8>,
    /// Return-value register.
    pub rv: u8,
    /// Argument registers, in order (empty for stack-argument conventions).
    pub arg_regs: &'static [u8],
    /// Register holding the argument of a host call.
    pub syscall_arg_reg: u8,
    /// Hardwired-zero register, if the architecture has one (MIPS `zero`,
    /// SPARC `%g0`).
    pub zero_reg: Option<u8>,
    /// Callee-saved registers.
    pub callee_saved: &'static [u8],
    /// Does the hardware convention maintain a frame pointer?
    pub has_frame_pointer: bool,
    /// Register names, for disassembly and the register-space PostScript.
    pub reg_names: &'static [&'static str],
    /// Context layout used by this target's nub.
    pub ctx: ContextLayout,
}

impl MachineData {
    /// Render the nop pattern as bytes in the given order.
    pub fn nop_bytes(&self, order: ByteOrder) -> Vec<u8> {
        pattern_bytes(self.nop_pattern, self.insn_unit, order)
    }

    /// Render the break pattern as bytes in the given order.
    pub fn break_bytes(&self, order: ByteOrder) -> Vec<u8> {
        pattern_bytes(self.break_pattern, self.insn_unit, order)
    }

    /// The name of integer register `r`.
    pub fn reg_name(&self, r: u8) -> &'static str {
        self.reg_names.get(r as usize).copied().unwrap_or("?")
    }
}

fn pattern_bytes(pattern: u32, unit: u8, order: ByteOrder) -> Vec<u8> {
    let mut v = Vec::with_capacity(unit as usize);
    for i in 0..unit as u32 {
        let shift = match order {
            ByteOrder::Big => (unit as u32 - 1 - i) * 8,
            ByteOrder::Little => i * 8,
        };
        v.push((pattern >> shift) as u8);
    }
    v
}

/// MIPS register names (o32-style).
static MIPS_REGS: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp",
    "s8", "ra",
];

static SPARC_REGS: [&str; 32] = [
    "g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7", "o0", "o1", "o2", "o3", "o4", "o5", "sp",
    "o7", "l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7", "i0", "i1", "i2", "i3", "i4", "i5",
    "fp", "i7",
];

static M68K_REGS: [&str; 16] = [
    "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "a0", "a1", "a2", "a3", "a4", "a5", "a6",
    "a7",
];

static VAX_REGS: [&str; 16] = [
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "ap", "fp", "sp",
    "r15",
];

/// MIPS R3000-like target.
pub static MIPS: MachineData = MachineData {
    arch: Arch::Mips,
    name: "mips",
    default_order: ByteOrder::Big,
    insn_unit: 4,
    nop_pattern: 0x0000_0000,
    break_pattern: 0x0000_000d,
    pc_advance: 4,
    nregs: 32,
    nfregs: 16,
    sp: 29,
    fp: None, // no frame pointer: the defining MIPS idiosyncrasy
    ra: Some(31),
    rv: 2,
    arg_regs: &[4, 5, 6, 7],
    syscall_arg_reg: 4,
    zero_reg: Some(0),
    callee_saved: &[16, 17, 18, 19, 20, 21, 22, 23, 30],
    has_frame_pointer: false,
    reg_names: &MIPS_REGS,
    ctx: ContextLayout::new(32, 16),
};

/// Motorola 68020-like target.
pub static M68K: MachineData = MachineData {
    arch: Arch::M68k,
    name: "m68k",
    default_order: ByteOrder::Big,
    insn_unit: 2,
    nop_pattern: 0x4e71,
    break_pattern: 0x4e4f,
    pc_advance: 2,
    nregs: 16,
    nfregs: 8,
    sp: 15, // a7
    fp: Some(14), // a6
    ra: None, // return address lives on the stack
    rv: 0, // d0
    arg_regs: &[], // arguments pass on the stack
    syscall_arg_reg: 1, // d1
    zero_reg: None,
    callee_saved: &[2, 3, 4, 5, 6, 7, 10, 11, 12, 13], // d2-d7, a2-a5
    has_frame_pointer: true,
    reg_names: &M68K_REGS,
    ctx: ContextLayout::new(16, 8),
};

/// SPARC-like target (simplified: no register windows).
pub static SPARC: MachineData = MachineData {
    arch: Arch::Sparc,
    name: "sparc",
    default_order: ByteOrder::Big,
    insn_unit: 4,
    nop_pattern: 0x0100_0000,
    break_pattern: 0x91d0_2001,
    pc_advance: 4,
    nregs: 32,
    nfregs: 16,
    sp: 14, // %o6
    fp: Some(30), // %i6
    ra: Some(15), // %o7
    rv: 8, // %o0
    arg_regs: &[8, 9, 10, 11, 12, 13],
    syscall_arg_reg: 8,
    zero_reg: Some(0),
    callee_saved: &[16, 17, 18, 19, 20, 21, 22, 23], // %l0-%l7
    has_frame_pointer: true,
    reg_names: &SPARC_REGS,
    ctx: ContextLayout::new(32, 16),
};

/// VAX-like target.
pub static VAX: MachineData = MachineData {
    arch: Arch::Vax,
    name: "vax",
    default_order: ByteOrder::Little,
    insn_unit: 1,
    nop_pattern: 0x01,
    break_pattern: 0x03, // bpt
    pc_advance: 1,
    nregs: 16,
    nfregs: 8,
    sp: 14,
    fp: Some(13),
    ra: None, // return address lives on the stack
    rv: 0,
    arg_regs: &[], // arguments pass on the stack
    syscall_arg_reg: 1,
    zero_reg: None,
    callee_saved: &[2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
    has_frame_pointer: true,
    reg_names: &VAX_REGS,
    ctx: ContextLayout::new(16, 8),
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_targets_with_distinct_breakpoint_data() {
        // The interim breakpoint scheme is specified by four items of
        // machine-dependent data; check they really differ across targets.
        let units: Vec<u8> = Arch::ALL.iter().map(|a| a.data().insn_unit).collect();
        assert_eq!(units, vec![4, 2, 4, 1]);
        for a in Arch::ALL {
            let d = a.data();
            assert_ne!(d.nop_pattern, d.break_pattern, "{a}");
            assert_eq!(d.pc_advance, d.insn_unit, "{a}");
        }
    }

    #[test]
    fn mips_has_no_frame_pointer() {
        assert!(MIPS.fp.is_none());
        assert!(!MIPS.has_frame_pointer);
        assert!(SPARC.has_frame_pointer);
        assert!(M68K.has_frame_pointer);
        assert!(VAX.has_frame_pointer);
    }

    #[test]
    fn byte_order_rendering() {
        assert_eq!(MIPS.break_bytes(ByteOrder::Big), vec![0, 0, 0, 0x0d]);
        assert_eq!(MIPS.break_bytes(ByteOrder::Little), vec![0x0d, 0, 0, 0]);
        assert_eq!(M68K.nop_bytes(ByteOrder::Big), vec![0x4e, 0x71]);
        assert_eq!(VAX.nop_bytes(ByteOrder::Little), vec![0x01]);
    }

    #[test]
    fn context_layout_offsets() {
        let c = MIPS.ctx;
        assert_eq!(c.pc_offset, 0);
        assert_eq!(c.reg(0), 4);
        assert_eq!(c.reg(31), 4 + 31 * 4);
        assert_eq!(c.freg(0), 4 + 32 * 4);
        assert_eq!(c.size, 4 + 32 * 4 + 16 * 8);
    }

    #[test]
    fn names_roundtrip() {
        for a in Arch::ALL {
            assert_eq!(Arch::from_name(a.name()), Some(a));
        }
        assert_eq!(Arch::from_name("68020"), Some(Arch::M68k));
        assert_eq!(Arch::from_name("pdp11"), None);
    }

    #[test]
    fn register_names() {
        assert_eq!(MIPS.reg_name(29), "sp");
        assert_eq!(MIPS.reg_name(30), "s8");
        assert_eq!(SPARC.reg_name(30), "fp");
        assert_eq!(M68K.reg_name(14), "a6");
        assert_eq!(VAX.reg_name(13), "fp");
    }
}
