//! A disassembler: decoded operations rendered with the target's own
//! register names and conventions.

use crate::arch::{Arch, ByteOrder};
use crate::encode;
use crate::op::{AluOp, Cond, FltSize, MemSize, Op};

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Lt => "lt",
        Cond::Ge => "ge",
        Cond::Le => "le",
        Cond::Gt => "gt",
    }
}

fn msize(s: MemSize, signed: bool) -> &'static str {
    match (s, signed) {
        (MemSize::B1, true) => "b",
        (MemSize::B1, false) => "bu",
        (MemSize::B2, true) => "h",
        (MemSize::B2, false) => "hu",
        (MemSize::B4, _) => "w",
    }
}

fn fsize(s: FltSize) -> &'static str {
    match s {
        FltSize::F4 => "s",
        FltSize::F8 => "d",
        FltSize::F10 => "x",
    }
}

/// Render one operation in a target-flavored assembly syntax.
pub fn render(arch: Arch, op: &Op) -> String {
    let d = arch.data();
    let r = |i: u8| d.reg_name(i).to_string();
    match *op {
        Op::Nop => "nop".into(),
        Op::Break(c) => format!("break {c}"),
        Op::Syscall(n) => format!("syscall {n}"),
        Op::LoadImm { rd, imm } => format!("li {}, {imm}", r(rd)),
        Op::LoadUpper { rd, imm } => format!("lui {}, {imm:#x}", r(rd)),
        Op::Mov { rd, rs } => format!("move {}, {}", r(rd), r(rs)),
        Op::Alu { op, rd, rs, rt } => {
            format!("{} {}, {}, {}", alu_name(op), r(rd), r(rs), r(rt))
        }
        Op::AluI { op, rd, rs, imm } => {
            format!("{}i {}, {}, {imm}", alu_name(op), r(rd), r(rs))
        }
        Op::Load { size, signed, rd, base, off } => {
            format!("l{} {}, {off}({})", msize(size, signed), r(rd), r(base))
        }
        Op::Store { size, rs, base, off } => {
            format!("s{} {}, {off}({})", msize(size, true), r(rs), r(base))
        }
        Op::FLoad { size, fd, base, off } => {
            format!("l.{} f{fd}, {off}({})", fsize(size), r(base))
        }
        Op::FStore { size, fs, base, off } => {
            format!("s.{} f{fs}, {off}({})", fsize(size), r(base))
        }
        Op::FAlu { op, fd, fs, ft } => {
            let n = match op {
                crate::op::FaluOp::Add => "add",
                crate::op::FaluOp::Sub => "sub",
                crate::op::FaluOp::Mul => "mul",
                crate::op::FaluOp::Div => "div",
            };
            format!("{n}.d f{fd}, f{fs}, f{ft}")
        }
        Op::FNeg { fd, fs } => format!("neg.d f{fd}, f{fs}"),
        Op::FMov { fd, fs } => format!("mov.d f{fd}, f{fs}"),
        Op::CvtIF { fd, rs } => format!("cvt.d.w f{fd}, {}", r(rs)),
        Op::CvtFI { rd, fs } => format!("cvt.w.d {}, f{fs}", r(rd)),
        Op::FCmp { cond, rd, fs, ft } => {
            format!("c.{}.d {}, f{fs}, f{ft}", cond_name(cond), r(rd))
        }
        Op::Branch { cond, rs, rt, target } => {
            format!("b{} {}, {}, {target:#x}", cond_name(cond), r(rs), r(rt))
        }
        Op::Cmp { rs, rt } => format!("cmp {}, {}", r(rs), r(rt)),
        Op::Tst { rs } => format!("tst {}", r(rs)),
        Op::BranchCC { cond, target } => format!("b{} {target:#x}", cond_name(cond)),
        Op::Jump { target } => format!("j {target:#x}"),
        Op::JumpAndLink { target, link } => format!("jal {target:#x}  ; link {}", r(link)),
        Op::JumpReg { rs } => format!("jr {}", r(rs)),
        Op::Push { rs } => format!("push {}", r(rs)),
        Op::Pop { rd } => format!("pop {}", r(rd)),
        Op::Call { target } => format!("call {target:#x}"),
        Op::Ret => "ret".into(),
        Op::Link { fp, size } => format!("link {}, #{size}", r(fp)),
        Op::Unlink { fp } => format!("unlk {}", r(fp)),
        Op::SaveRegs { mask } => format!("movem.save {mask:#06x}"),
        Op::RestoreRegs { mask } => format!("movem.rest {mask:#06x}"),
    }
}

/// Disassemble a byte range: (address, length, text) per instruction.
/// Undecodable bytes come out as `.byte`/`.word` lines so the walk always
/// makes progress.
pub fn disassemble(
    arch: Arch,
    order: ByteOrder,
    bytes: &[u8],
    base: u32,
) -> Vec<(u32, u8, String)> {
    let d = arch.data();
    let mut out = Vec::new();
    let mut pc = base;
    let mut i = 0usize;
    while i < bytes.len() {
        match encode::decode(arch, &bytes[i..], pc, order) {
            Some((op, len)) => {
                out.push((pc, len, render(arch, &op)));
                i += len as usize;
                pc += len as u32;
            }
            None => {
                let step = d.insn_unit.min((bytes.len() - i) as u8).max(1);
                out.push((pc, step, format!(".byte {:02x?}", &bytes[i..i + step as usize])));
                i += step as usize;
                pc += step as u32;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_target_register_names() {
        let op = Op::AluI { op: AluOp::Add, rd: 29, rs: 29, imm: -32 };
        assert_eq!(render(Arch::Mips, &op), "addi sp, sp, -32");
        let op = Op::Link { fp: 14, size: 24 };
        assert_eq!(render(Arch::M68k, &op), "link a6, #24");
        assert_eq!(render(Arch::Vax, &Op::Ret), "ret");
    }

    #[test]
    fn disassembles_encoded_streams() {
        for arch in Arch::ALL {
            let order = arch.data().default_order;
            let ops = [
                Op::LoadImm { rd: 1, imm: 42 },
                Op::Nop,
                Op::Syscall(0),
            ];
            let mut bytes = Vec::new();
            let mut pc = 0x1000;
            for op in &ops {
                let b = encode::encode(arch, op, pc, order).unwrap();
                pc += b.len() as u32;
                bytes.extend(b);
            }
            let dis = disassemble(arch, order, &bytes, 0x1000);
            assert_eq!(dis.len(), 3, "{arch}: {dis:?}");
            assert!(dis[0].2.starts_with("li"), "{arch}: {dis:?}");
            assert_eq!(dis[1].2, "nop", "{arch}");
        }
    }

    #[test]
    fn junk_bytes_do_not_stall() {
        let dis = disassemble(Arch::Vax, ByteOrder::Little, &[0xff, 0xfe, 0x01], 0);
        assert_eq!(dis.len(), 3);
        assert_eq!(dis[2].2, "nop");
    }
}
