//! Bit-exact machine checkpoints.
//!
//! A [`Snapshot`] captures everything that determines a simulated
//! machine's future: the full CPU register file (integer, floating,
//! pc, condition codes, the MIPS load-delay pipeline state), the
//! retired-step count, the dirty memory pages (clean pages are all-zero
//! by the [`crate::memory::Memory`] invariant, so they need no bytes),
//! the accumulated host-call output, and the exit status. Restoring a
//! snapshot puts the machine into a state from which execution proceeds
//! *identically* — the determinism contract the debugger's reverse
//! execution is built on.
//!
//! The serialized form ([`Snapshot::to_bytes`] / [`Snapshot::from_bytes`])
//! is a little-endian binary record designed for wire transfer: the
//! decoder bounds-checks every length field against the bytes actually
//! present before allocating, in the same discipline as the nub protocol
//! codec.

use crate::arch::{Arch, ByteOrder};
use crate::machine::Machine;
use crate::memory::PAGE_SIZE;

/// Serialized-format magic: "LDBS" plus a format version byte.
const MAGIC: &[u8; 4] = b"LDBS";
const VERSION: u8 = 1;

/// Errors from snapshot decode/restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the record did.
    Truncated,
    /// Wrong magic or unsupported version.
    BadMagic,
    /// A field held an impossible value (named for diagnostics).
    BadField(&'static str),
    /// The snapshot does not describe this machine (arch, byte order, or
    /// memory geometry differs).
    Mismatch(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic/version)"),
            SnapshotError::BadField(w) => write!(f, "snapshot field out of range: {w}"),
            SnapshotError::Mismatch(w) => write!(f, "snapshot does not fit this machine: {w}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A complete, restorable capture of one machine's state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Which target this snapshot came from.
    pub arch: Arch,
    /// The memory byte order (MIPS runs either way).
    pub order: ByteOrder,
    /// Program counter.
    pub pc: u32,
    /// Integer register file.
    pub regs: [u32; 32],
    /// Floating register file (restored bit-exactly).
    pub fregs: [f64; 16],
    /// Condition codes.
    pub cc: (i32, i32),
    /// MIPS load-delay pipeline state.
    pub pending_load: Option<u8>,
    /// Retired-instruction count at capture time — the snapshot's
    /// position on the execution timeline.
    pub steps: u64,
    /// Lowest mapped address.
    pub mem_base: u32,
    /// Mapped size in bytes.
    pub mem_len: u32,
    /// Dirty pages, ascending by index; the last page may be partial.
    pub pages: Vec<(u32, Vec<u8>)>,
    /// Host-call output accumulated so far.
    pub output: String,
    /// Exit status, if the program had already exited.
    pub exited: Option<i32>,
}

impl Snapshot {
    /// Capture the machine's current state.
    pub fn capture(m: &Machine) -> Snapshot {
        let mem = &m.cpu.mem;
        let pages = mem.dirty_pages().into_iter().map(|p| (p, mem.page(p).to_vec())).collect();
        Snapshot {
            arch: m.cpu.arch,
            order: mem.order(),
            pc: m.cpu.pc,
            regs: m.cpu.regs,
            fregs: m.cpu.fregs,
            cc: m.cpu.cc,
            pending_load: m.cpu.pending_load(),
            steps: m.cpu.steps,
            mem_base: mem.base(),
            mem_len: mem.limit() - mem.base(),
            pages,
            output: m.output.clone(),
            exited: m.exited,
        }
    }

    /// Restore the machine to exactly the captured state.
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] if the snapshot was taken on a machine
    /// with different architecture, byte order, or memory geometry;
    /// [`SnapshotError::BadField`] for a corrupt page image.
    pub fn restore(&self, m: &mut Machine) -> Result<(), SnapshotError> {
        if self.arch != m.cpu.arch {
            return Err(SnapshotError::Mismatch("architecture"));
        }
        let mem = &m.cpu.mem;
        if self.order != mem.order() {
            return Err(SnapshotError::Mismatch("byte order"));
        }
        if self.mem_base != mem.base() || self.mem_len != mem.limit() - mem.base() {
            return Err(SnapshotError::Mismatch("memory geometry"));
        }
        m.cpu.mem.restore_pages(&self.pages).map_err(|_| SnapshotError::BadField("pages"))?;
        m.cpu.pc = self.pc;
        m.cpu.regs = self.regs;
        m.cpu.fregs = self.fregs;
        m.cpu.cc = self.cc;
        m.cpu.set_pending_load(self.pending_load);
        m.cpu.steps = self.steps;
        m.output = self.output.clone();
        m.exited = self.exited;
        Ok(())
    }

    /// Serialize to the little-endian wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(256 + self.pages.len() * (PAGE_SIZE as usize + 8));
        b.extend_from_slice(MAGIC);
        b.push(VERSION);
        b.push(arch_code(self.arch));
        b.push(match self.order {
            ByteOrder::Little => 0,
            ByteOrder::Big => 1,
        });
        b.push(self.pending_load.unwrap_or(0xff));
        b.extend_from_slice(&self.pc.to_le_bytes());
        b.extend_from_slice(&(self.cc.0).to_le_bytes());
        b.extend_from_slice(&(self.cc.1).to_le_bytes());
        b.extend_from_slice(&self.steps.to_le_bytes());
        for r in &self.regs {
            b.extend_from_slice(&r.to_le_bytes());
        }
        for f in &self.fregs {
            b.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        match self.exited {
            None => b.push(0),
            Some(s) => {
                b.push(1);
                b.extend_from_slice(&s.to_le_bytes());
            }
        }
        b.extend_from_slice(&(self.output.len() as u32).to_le_bytes());
        b.extend_from_slice(self.output.as_bytes());
        b.extend_from_slice(&self.mem_base.to_le_bytes());
        b.extend_from_slice(&self.mem_len.to_le_bytes());
        b.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for (idx, data) in &self.pages {
            b.extend_from_slice(&idx.to_le_bytes());
            b.extend_from_slice(&(data.len() as u32).to_le_bytes());
            b.extend_from_slice(data);
        }
        b
    }

    /// Decode the wire form. Every length is validated against the bytes
    /// actually present before any allocation.
    ///
    /// # Errors
    /// [`SnapshotError`] for truncated or corrupt input.
    pub fn from_bytes(b: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut c = Cursor { b, pos: 0 };
        if c.take(5)? != [MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION] {
            return Err(SnapshotError::BadMagic);
        }
        let arch = arch_from_code(c.u8()?).ok_or(SnapshotError::BadField("arch"))?;
        let order = match c.u8()? {
            0 => ByteOrder::Little,
            1 => ByteOrder::Big,
            _ => return Err(SnapshotError::BadField("order")),
        };
        let pending_load = match c.u8()? {
            0xff => None,
            r if r < 32 => Some(r),
            _ => return Err(SnapshotError::BadField("pending_load")),
        };
        let pc = c.u32()?;
        let cc = (c.u32()? as i32, c.u32()? as i32);
        let steps = c.u64()?;
        let mut regs = [0u32; 32];
        for r in &mut regs {
            *r = c.u32()?;
        }
        let mut fregs = [0f64; 16];
        for f in &mut fregs {
            *f = f64::from_bits(c.u64()?);
        }
        let exited = match c.u8()? {
            0 => None,
            1 => Some(c.u32()? as i32),
            _ => return Err(SnapshotError::BadField("exited")),
        };
        let out_len = c.u32()? as usize;
        let output = String::from_utf8(c.take(out_len)?.to_vec())
            .map_err(|_| SnapshotError::BadField("output"))?;
        let mem_base = c.u32()?;
        let mem_len = c.u32()?;
        let npages = c.u32()?;
        if u64::from(npages) > u64::from(mem_len.div_ceil(PAGE_SIZE)) {
            return Err(SnapshotError::BadField("page count"));
        }
        let mut pages = Vec::with_capacity(npages as usize);
        let mut last: Option<u32> = None;
        for _ in 0..npages {
            let idx = c.u32()?;
            if last.is_some_and(|l| idx <= l) {
                return Err(SnapshotError::BadField("page order"));
            }
            last = Some(idx);
            let len = c.u32()?;
            if len > PAGE_SIZE {
                return Err(SnapshotError::BadField("page size"));
            }
            pages.push((idx, c.take(len as usize)?.to_vec()));
        }
        if c.pos != b.len() {
            return Err(SnapshotError::BadField("trailing bytes"));
        }
        Ok(Snapshot {
            arch,
            order,
            pc,
            regs,
            fregs,
            cc,
            pending_load,
            steps,
            mem_base,
            mem_len,
            pages,
            output,
            exited,
        })
    }
}

fn arch_code(a: Arch) -> u8 {
    match a {
        Arch::Mips => 0,
        Arch::M68k => 1,
        Arch::Sparc => 2,
        Arch::Vax => 3,
    }
}

fn arch_from_code(c: u8) -> Option<Arch> {
    Some(match c {
        0 => Arch::Mips,
        1 => Arch::M68k,
        2 => Arch::Sparc,
        3 => Arch::Vax,
        _ => return None,
    })
}

/// A bounds-checking byte reader: check-before-slice, never allocates
/// ahead of the data it has.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.b.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{test_cpu, StepEvent};
    use crate::memory::Memory;

    /// A machine over a tiny hand-built program: a counting loop that
    /// stores to memory, so stepping dirties both registers and pages.
    fn test_machine(arch: Arch, order: ByteOrder) -> Machine {
        Machine { cpu: test_cpu(arch, order), output: String::new(), exited: None }
    }

    /// Run `n` single steps, ignoring traps (the test programs have none).
    fn step_n(m: &mut Machine, n: u64) {
        for _ in 0..n {
            match m.cpu.step() {
                StepEvent::Continue | StepEvent::Breakpoint { .. } | StepEvent::Syscall { .. } => {}
                StepEvent::Fault(f) => panic!("unexpected fault: {f}"),
            }
        }
    }

    /// Write a small loop program at the pc using the arch encoder:
    /// nops are universal, so a nop sled is the simplest deterministic
    /// program every target can run.
    fn write_nop_sled(m: &mut Machine, len: u32) {
        let d = m.cpu.arch.data();
        let nops = d.nop_bytes(m.cpu.mem.order());
        let mut addr = m.cpu.pc;
        for _ in 0..len {
            m.cpu.mem.write_bytes(addr, &nops).unwrap();
            addr += nops.len() as u32;
        }
    }

    fn all_configs() -> Vec<(Arch, ByteOrder)> {
        vec![
            (Arch::Mips, ByteOrder::Big),
            (Arch::Mips, ByteOrder::Little),
            (Arch::M68k, ByteOrder::Big),
            (Arch::Sparc, ByteOrder::Big),
            (Arch::Vax, ByteOrder::Little),
        ]
    }

    #[test]
    fn capture_restore_is_bit_identical_per_arch() {
        for (arch, order) in all_configs() {
            let mut m = test_machine(arch, order);
            write_nop_sled(&mut m, 64);
            m.cpu.set_reg(2, 0x1234_5678);
            m.cpu.set_freg(1, -0.125);
            m.cpu.cc = (-3, 7);
            step_n(&mut m, 10);
            let snap = Snapshot::capture(&m);
            // Diverge: run further, scribble on registers and memory.
            step_n(&mut m, 20);
            m.cpu.set_reg(3, 99);
            m.cpu.set_freg(2, 1.5);
            m.cpu.mem.write_u32(0x2000, 0xdead).unwrap();
            m.output.push_str("junk");
            snap.restore(&mut m).unwrap();
            let again = Snapshot::capture(&m);
            assert_eq!(snap, again, "{arch}/{order:?}: restore not bit-identical");
            assert_eq!(snap.to_bytes(), again.to_bytes(), "{arch}/{order:?}: bytes differ");
            assert_eq!(m.cpu.steps, 10, "{arch}/{order:?}: step clock not restored");
        }
    }

    #[test]
    fn restored_machine_replays_identically() {
        for (arch, order) in all_configs() {
            let mut m = test_machine(arch, order);
            write_nop_sled(&mut m, 64);
            step_n(&mut m, 5);
            let snap = Snapshot::capture(&m);
            step_n(&mut m, 17);
            let end = Snapshot::capture(&m);
            snap.restore(&mut m).unwrap();
            step_n(&mut m, 17);
            assert_eq!(
                Snapshot::capture(&m).to_bytes(),
                end.to_bytes(),
                "{arch}/{order:?}: replay diverged"
            );
        }
    }

    #[test]
    fn serialization_round_trips() {
        for (arch, order) in all_configs() {
            let mut m = test_machine(arch, order);
            write_nop_sled(&mut m, 8);
            m.output.push_str("hello\n");
            step_n(&mut m, 2);
            m.cpu.set_pending_load(Some(4));
            let snap = Snapshot::capture(&m);
            let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            assert_eq!(snap, decoded);
        }
    }

    #[test]
    fn nan_payloads_survive() {
        let mut m = test_machine(Arch::Sparc, ByteOrder::Big);
        m.cpu.fregs[3] = f64::from_bits(0x7ff8_dead_beef_0001);
        let snap = Snapshot::capture(&m);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.fregs[3].to_bits(), 0x7ff8_dead_beef_0001);
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert_eq!(Snapshot::from_bytes(b""), Err(SnapshotError::Truncated));
        assert_eq!(Snapshot::from_bytes(b"XXXXX"), Err(SnapshotError::BadMagic));
        let m = test_machine(Arch::Vax, ByteOrder::Little);
        let good = Snapshot::capture(&m).to_bytes();
        // Truncation anywhere is an error, never a panic.
        for cut in [5, 10, good.len() / 2, good.len() - 1] {
            assert!(Snapshot::from_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }
        // A lying page count is caught before allocation.
        let mut lying = good.clone();
        let n = lying.len();
        lying[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Snapshot::from_bytes(&lying).is_err());
        // Trailing garbage is rejected.
        let mut tail = good.clone();
        tail.push(0);
        assert_eq!(Snapshot::from_bytes(&tail), Err(SnapshotError::BadField("trailing bytes")));
    }

    #[test]
    fn restore_rejects_wrong_machine() {
        let m_sparc = test_machine(Arch::Sparc, ByteOrder::Big);
        let snap = Snapshot::capture(&m_sparc);
        let mut m_vax = test_machine(Arch::Vax, ByteOrder::Little);
        assert_eq!(snap.restore(&mut m_vax), Err(SnapshotError::Mismatch("architecture")));
        let mut m_small = Machine {
            cpu: crate::cpu::Cpu::new(Arch::Sparc, Memory::new(0x1000, 0x100, ByteOrder::Big)),
            output: String::new(),
            exited: None,
        };
        assert_eq!(snap.restore(&mut m_small), Err(SnapshotError::Mismatch("memory geometry")));
    }
}
