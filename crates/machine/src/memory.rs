//! Target memory: a flat byte array with byte-order-aware accessors.
//!
//! Addresses below [`Memory::base`] are unmapped, so null-pointer
//! dereferences fault — faulting programs are a workload the paper's nub
//! must handle (it catches the fault and waits for a debugger).

use std::fmt;

use crate::arch::ByteOrder;

/// Granularity of dirty tracking: the snapshot machinery captures memory
/// as the set of pages written since creation, so a mostly-untouched
/// address space costs almost nothing to checkpoint.
pub const PAGE_SIZE: u32 = 4096;

/// A memory fault or execution fault raised by the simulated CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Access to an unmapped address.
    BadAddress {
        /// The offending address.
        addr: u32,
        /// Was this a store?
        write: bool,
    },
    /// Integer division (or remainder) by zero.
    DivideByZero,
    /// Undecodable instruction bytes.
    IllegalInstruction {
        /// Program counter of the bad instruction.
        pc: u32,
    },
    /// A MIPS load-delay hazard: the instruction after a load read the
    /// loaded register (the assembler/scheduler must prevent this).
    LoadDelayHazard {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The register read too early.
        reg: u8,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::BadAddress { addr, write: true } => write!(f, "bad address (store) {addr:#x}"),
            Fault::BadAddress { addr, write: false } => write!(f, "bad address (load) {addr:#x}"),
            Fault::DivideByZero => write!(f, "integer divide by zero"),
            Fault::IllegalInstruction { pc } => write!(f, "illegal instruction at {pc:#x}"),
            Fault::LoadDelayHazard { pc, reg } => {
                write!(f, "load delay hazard at {pc:#x} on register {reg}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// Flat target memory.
///
/// Every mutation funnels through [`Memory::write_bytes`], which marks
/// the touched 4 KiB pages in a dirty bitmap. Because a fresh memory is
/// all zeroes, the invariant *clean page ⇔ all-zero page* holds, and a
/// snapshot only has to carry the dirty pages ([`Memory::dirty_pages`] /
/// [`Memory::restore_pages`]).
#[derive(Clone)]
pub struct Memory {
    base: u32,
    bytes: Vec<u8>,
    order: ByteOrder,
    /// One bit per page, set when any byte of the page has been written.
    dirty: Vec<u64>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Memory {{ base: {:#x}, size: {:#x}, order: {:?} }}",
            self.base,
            self.bytes.len(),
            self.order
        )
    }
}

impl Memory {
    /// Memory covering `[base, base + size)`.
    pub fn new(base: u32, size: u32, order: ByteOrder) -> Memory {
        let pages = (size as usize).div_ceil(PAGE_SIZE as usize);
        Memory { base, bytes: vec![0; size as usize], order, dirty: vec![0; pages.div_ceil(64)] }
    }

    /// Lowest mapped address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the highest mapped address.
    pub fn limit(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// The byte order used for multi-byte accesses.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// The raw contents, `base()`-relative (for core dumps).
    pub fn contents(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuild a memory from dumped contents. Every page is conservatively
    /// marked dirty: a dump carries no history, so nothing can be assumed
    /// zero.
    pub fn from_contents(base: u32, bytes: Vec<u8>, order: ByteOrder) -> Memory {
        let pages = bytes.len().div_ceil(PAGE_SIZE as usize);
        let mut dirty = vec![u64::MAX; pages.div_ceil(64)];
        // Clear the bits past the last page so dirty_pages never reports
        // pages outside the mapped range.
        if let Some(last) = dirty.last_mut() {
            let used = pages % 64;
            if used != 0 {
                *last = (1u64 << used) - 1;
            }
        }
        Memory { base, bytes, order, dirty }
    }

    /// Number of pages (the last one may be partial).
    fn page_count(&self) -> u32 {
        (self.bytes.len() as u32).div_ceil(PAGE_SIZE)
    }

    /// Mark every page overlapping `[i, i + len)` (byte offsets) dirty.
    fn mark_dirty(&mut self, i: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = i / PAGE_SIZE as usize;
        let last = (i + len - 1) / PAGE_SIZE as usize;
        for p in first..=last {
            self.dirty[p / 64] |= 1u64 << (p % 64);
        }
    }

    /// Indices of every page written since creation (or the last
    /// [`Memory::restore_pages`]), in ascending order.
    pub fn dirty_pages(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for p in 0..self.page_count() {
            if self.dirty[p as usize / 64] & (1u64 << (p % 64)) != 0 {
                out.push(p);
            }
        }
        out
    }

    /// The bytes of page `idx` (shorter than [`PAGE_SIZE`] for a partial
    /// final page). Panics on an out-of-range index.
    pub fn page(&self, idx: u32) -> &[u8] {
        let start = idx as usize * PAGE_SIZE as usize;
        let end = (start + PAGE_SIZE as usize).min(self.bytes.len());
        &self.bytes[start..end]
    }

    /// Restore the memory contents to exactly the state captured as a
    /// dirty-page image: pages in `pages` get those bytes, every other
    /// page returns to all-zero (its initial state), and the dirty bitmap
    /// is rebuilt to cover exactly the restored pages — so a snapshot of
    /// the restored memory is bit-identical to the original snapshot.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] for an out-of-range page index or a page
    /// image whose length does not match that page.
    pub fn restore_pages(&mut self, pages: &[(u32, Vec<u8>)]) -> Result<(), Fault> {
        let npages = self.page_count();
        for (idx, data) in pages {
            let addr = self.base.wrapping_add(idx.wrapping_mul(PAGE_SIZE));
            if *idx >= npages || data.len() != self.page(*idx).len() {
                return Err(Fault::BadAddress { addr, write: true });
            }
        }
        // Zero the pages that are dirty now but absent from the image.
        let incoming: std::collections::HashSet<u32> = pages.iter().map(|(i, _)| *i).collect();
        for p in self.dirty_pages() {
            if !incoming.contains(&p) {
                let start = p as usize * PAGE_SIZE as usize;
                let end = (start + PAGE_SIZE as usize).min(self.bytes.len());
                self.bytes[start..end].fill(0);
            }
        }
        for (idx, data) in pages {
            let start = *idx as usize * PAGE_SIZE as usize;
            self.bytes[start..start + data.len()].copy_from_slice(data);
        }
        self.dirty.fill(0);
        for (idx, _) in pages {
            self.dirty[*idx as usize / 64] |= 1u64 << (idx % 64);
        }
        Ok(())
    }

    fn index(&self, addr: u32, len: u32, write: bool) -> Result<usize, Fault> {
        if addr < self.base || addr.wrapping_add(len) > self.limit() || addr.checked_add(len).is_none()
        {
            return Err(Fault::BadAddress { addr, write });
        }
        Ok((addr - self.base) as usize)
    }

    /// Read `len` bytes starting at `addr`.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Fault> {
        let i = self.index(addr, len, false)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Write raw bytes starting at `addr`.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), Fault> {
        let i = self.index(addr, data.len() as u32, true)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        self.mark_dirty(i, data.len());
        Ok(())
    }

    /// Read a byte.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_u8(&self, addr: u32) -> Result<u8, Fault> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Read a halfword in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_u16(&self, addr: u32) -> Result<u16, Fault> {
        let b = self.read_bytes(addr, 2)?;
        Ok(match self.order {
            ByteOrder::Big => u16::from_be_bytes([b[0], b[1]]),
            ByteOrder::Little => u16::from_le_bytes([b[0], b[1]]),
        })
    }

    /// Read a word in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_u32(&self, addr: u32) -> Result<u32, Fault> {
        let b = self.read_bytes(addr, 4)?;
        Ok(match self.order {
            ByteOrder::Big => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            ByteOrder::Little => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        })
    }

    /// Write a byte.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), Fault> {
        self.write_bytes(addr, &[v])
    }

    /// Write a halfword in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), Fault> {
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        self.write_bytes(addr, &b)
    }

    /// Write a word in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), Fault> {
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        self.write_bytes(addr, &b)
    }

    /// Read an IEEE single.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_f32(&self, addr: u32) -> Result<f32, Fault> {
        Ok(f32::from_bits(self.read_u32(addr)?))
    }

    /// Read an IEEE double (two words, most significant first in big-endian
    /// order, least significant first in little-endian order).
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_f64(&self, addr: u32) -> Result<f64, Fault> {
        let b = self.read_bytes(addr, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(match self.order {
            ByteOrder::Big => f64::from_be_bytes(a),
            ByteOrder::Little => f64::from_le_bytes(a),
        })
    }

    /// Write an IEEE single.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_f32(&mut self, addr: u32, v: f32) -> Result<(), Fault> {
        self.write_u32(addr, v.to_bits())
    }

    /// Write an IEEE double.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_f64(&mut self, addr: u32, v: f64) -> Result<(), Fault> {
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        self.write_bytes(addr, &b)
    }

    /// Read a NUL-terminated string (for host calls like `putstr`).
    ///
    /// # Errors
    /// [`Fault::BadAddress`] if the string runs off the mapped range.
    pub fn read_cstr(&self, addr: u32) -> Result<String, Fault> {
        let mut s = Vec::new();
        let mut a = addr;
        loop {
            let b = self.read_u8(a)?;
            if b == 0 {
                break;
            }
            s.push(b);
            a = a.wrapping_add(1);
        }
        Ok(String::from_utf8_lossy(&s).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_order_round_trips() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let mut m = Memory::new(0x1000, 0x100, order);
            m.write_u32(0x1000, 0xDEADBEEF).unwrap();
            assert_eq!(m.read_u32(0x1000).unwrap(), 0xDEADBEEF);
            m.write_u16(0x1010, 0x1234).unwrap();
            assert_eq!(m.read_u16(0x1010).unwrap(), 0x1234);
            m.write_f64(0x1020, -2.5).unwrap();
            assert_eq!(m.read_f64(0x1020).unwrap(), -2.5);
            m.write_f32(0x1030, 0.5).unwrap();
            assert_eq!(m.read_f32(0x1030).unwrap(), 0.5);
        }
    }

    #[test]
    fn byte_orders_differ_in_memory() {
        let mut be = Memory::new(0, 16, ByteOrder::Big);
        let mut le = Memory::new(0, 16, ByteOrder::Little);
        be.write_u32(0, 0x01020304).unwrap();
        le.write_u32(0, 0x01020304).unwrap();
        assert_eq!(be.read_bytes(0, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(le.read_bytes(0, 4).unwrap(), &[4, 3, 2, 1]);
    }

    #[test]
    fn null_page_faults() {
        let m = Memory::new(0x1000, 0x100, ByteOrder::Big);
        assert_eq!(m.read_u32(0), Err(Fault::BadAddress { addr: 0, write: false }));
        assert_eq!(m.read_u32(0xfff), Err(Fault::BadAddress { addr: 0xfff, write: false }));
    }

    #[test]
    fn limit_faults() {
        let mut m = Memory::new(0x1000, 0x10, ByteOrder::Big);
        assert!(m.read_u32(0x100c).is_ok());
        assert!(m.read_u32(0x100d).is_err());
        assert_eq!(
            m.write_u32(0x1010, 0),
            Err(Fault::BadAddress { addr: 0x1010, write: true })
        );
        // Wrap-around is a fault, not a panic.
        assert!(m.read_u32(u32::MAX - 1).is_err());
    }

    #[test]
    fn cstr_reading() {
        let mut m = Memory::new(0, 32, ByteOrder::Little);
        m.write_bytes(4, b"fib\0").unwrap();
        assert_eq!(m.read_cstr(4).unwrap(), "fib");
        assert_eq!(m.read_cstr(7).unwrap(), "");
    }

    #[test]
    fn dirty_pages_track_writes() {
        let mut m = Memory::new(0x1000, 4 * PAGE_SIZE + 100, ByteOrder::Big);
        assert!(m.dirty_pages().is_empty());
        m.write_u32(0x1000, 1).unwrap();
        assert_eq!(m.dirty_pages(), vec![0]);
        // A write spanning a page boundary dirties both pages.
        m.write_bytes(0x1000 + PAGE_SIZE * 2 - 2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.dirty_pages(), vec![0, 1, 2]);
        // The partial final page is addressable too.
        m.write_u8(0x1000 + PAGE_SIZE * 4 + 99, 7).unwrap();
        assert_eq!(m.dirty_pages(), vec![0, 1, 2, 4]);
        assert_eq!(m.page(4).len(), 100);
        // A failed write marks nothing.
        let before = m.dirty_pages();
        assert!(m.write_u32(0x1000 + PAGE_SIZE * 3 + 98, 0).is_ok());
        assert!(m.write_u32(0, 0).is_err());
        assert_ne!(m.dirty_pages(), before);
        assert_eq!(m.dirty_pages(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn restore_pages_round_trips() {
        let mut m = Memory::new(0x1000, 3 * PAGE_SIZE, ByteOrder::Little);
        m.write_u32(0x1000 + 8, 0xAABBCCDD).unwrap();
        m.write_u32(0x1000 + PAGE_SIZE + 4, 0x11223344).unwrap();
        let image: Vec<(u32, Vec<u8>)> =
            m.dirty_pages().iter().map(|&p| (p, m.page(p).to_vec())).collect();
        let golden = m.contents().to_vec();
        // Diverge: touch a third page and overwrite a captured one.
        m.write_u32(0x1000 + 2 * PAGE_SIZE, 0xFFFF_FFFF).unwrap();
        m.write_u32(0x1000 + 8, 0).unwrap();
        assert_ne!(m.contents(), &golden[..]);
        m.restore_pages(&image).unwrap();
        assert_eq!(m.contents(), &golden[..], "restore must be bit-identical");
        assert_eq!(m.dirty_pages(), vec![0, 1], "dirty set must match the image");
    }

    #[test]
    fn clean_pages_are_all_zero() {
        // The invariant restore_pages relies on: an untouched page reads
        // as zeroes, so dropping it from a snapshot loses nothing.
        let mut m = Memory::new(0, 2 * PAGE_SIZE, ByteOrder::Big);
        m.write_u32(PAGE_SIZE, 5).unwrap();
        assert_eq!(m.dirty_pages(), vec![1]);
        assert!(m.page(0).iter().all(|&b| b == 0));
    }

    #[test]
    fn restore_pages_rejects_bad_images() {
        let mut m = Memory::new(0, 2 * PAGE_SIZE, ByteOrder::Big);
        assert!(m.restore_pages(&[(9, vec![0; PAGE_SIZE as usize])]).is_err());
        assert!(m.restore_pages(&[(0, vec![0; 7])]).is_err());
    }

    #[test]
    fn from_contents_marks_everything_dirty() {
        let m = Memory::from_contents(0, vec![1; PAGE_SIZE as usize * 2 + 5], ByteOrder::Big);
        assert_eq!(m.dirty_pages(), vec![0, 1, 2]);
    }

    #[test]
    fn fault_display() {
        assert_eq!(Fault::DivideByZero.to_string(), "integer divide by zero");
        assert!(Fault::BadAddress { addr: 0x10, write: true }.to_string().contains("store"));
    }
}
