//! Target memory: a flat byte array with byte-order-aware accessors.
//!
//! Addresses below [`Memory::base`] are unmapped, so null-pointer
//! dereferences fault — faulting programs are a workload the paper's nub
//! must handle (it catches the fault and waits for a debugger).

use std::fmt;

use crate::arch::ByteOrder;

/// A memory fault or execution fault raised by the simulated CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Access to an unmapped address.
    BadAddress {
        /// The offending address.
        addr: u32,
        /// Was this a store?
        write: bool,
    },
    /// Integer division (or remainder) by zero.
    DivideByZero,
    /// Undecodable instruction bytes.
    IllegalInstruction {
        /// Program counter of the bad instruction.
        pc: u32,
    },
    /// A MIPS load-delay hazard: the instruction after a load read the
    /// loaded register (the assembler/scheduler must prevent this).
    LoadDelayHazard {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The register read too early.
        reg: u8,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::BadAddress { addr, write: true } => write!(f, "bad address (store) {addr:#x}"),
            Fault::BadAddress { addr, write: false } => write!(f, "bad address (load) {addr:#x}"),
            Fault::DivideByZero => write!(f, "integer divide by zero"),
            Fault::IllegalInstruction { pc } => write!(f, "illegal instruction at {pc:#x}"),
            Fault::LoadDelayHazard { pc, reg } => {
                write!(f, "load delay hazard at {pc:#x} on register {reg}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// Flat target memory.
#[derive(Clone)]
pub struct Memory {
    base: u32,
    bytes: Vec<u8>,
    order: ByteOrder,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Memory {{ base: {:#x}, size: {:#x}, order: {:?} }}",
            self.base,
            self.bytes.len(),
            self.order
        )
    }
}

impl Memory {
    /// Memory covering `[base, base + size)`.
    pub fn new(base: u32, size: u32, order: ByteOrder) -> Memory {
        Memory { base, bytes: vec![0; size as usize], order }
    }

    /// Lowest mapped address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the highest mapped address.
    pub fn limit(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// The byte order used for multi-byte accesses.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// The raw contents, `base()`-relative (for core dumps).
    pub fn contents(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuild a memory from dumped contents.
    pub fn from_contents(base: u32, bytes: Vec<u8>, order: ByteOrder) -> Memory {
        Memory { base, bytes, order }
    }

    fn index(&self, addr: u32, len: u32, write: bool) -> Result<usize, Fault> {
        if addr < self.base || addr.wrapping_add(len) > self.limit() || addr.checked_add(len).is_none()
        {
            return Err(Fault::BadAddress { addr, write });
        }
        Ok((addr - self.base) as usize)
    }

    /// Read `len` bytes starting at `addr`.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Fault> {
        let i = self.index(addr, len, false)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Write raw bytes starting at `addr`.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), Fault> {
        let i = self.index(addr, data.len() as u32, true)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a byte.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_u8(&self, addr: u32) -> Result<u8, Fault> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Read a halfword in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_u16(&self, addr: u32) -> Result<u16, Fault> {
        let b = self.read_bytes(addr, 2)?;
        Ok(match self.order {
            ByteOrder::Big => u16::from_be_bytes([b[0], b[1]]),
            ByteOrder::Little => u16::from_le_bytes([b[0], b[1]]),
        })
    }

    /// Read a word in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_u32(&self, addr: u32) -> Result<u32, Fault> {
        let b = self.read_bytes(addr, 4)?;
        Ok(match self.order {
            ByteOrder::Big => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            ByteOrder::Little => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        })
    }

    /// Write a byte.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), Fault> {
        self.write_bytes(addr, &[v])
    }

    /// Write a halfword in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), Fault> {
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        self.write_bytes(addr, &b)
    }

    /// Write a word in the target byte order.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), Fault> {
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        self.write_bytes(addr, &b)
    }

    /// Read an IEEE single.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_f32(&self, addr: u32) -> Result<f32, Fault> {
        Ok(f32::from_bits(self.read_u32(addr)?))
    }

    /// Read an IEEE double (two words, most significant first in big-endian
    /// order, least significant first in little-endian order).
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn read_f64(&self, addr: u32) -> Result<f64, Fault> {
        let b = self.read_bytes(addr, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(match self.order {
            ByteOrder::Big => f64::from_be_bytes(a),
            ByteOrder::Little => f64::from_le_bytes(a),
        })
    }

    /// Write an IEEE single.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_f32(&mut self, addr: u32, v: f32) -> Result<(), Fault> {
        self.write_u32(addr, v.to_bits())
    }

    /// Write an IEEE double.
    ///
    /// # Errors
    /// [`Fault::BadAddress`] outside the mapped range.
    pub fn write_f64(&mut self, addr: u32, v: f64) -> Result<(), Fault> {
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        self.write_bytes(addr, &b)
    }

    /// Read a NUL-terminated string (for host calls like `putstr`).
    ///
    /// # Errors
    /// [`Fault::BadAddress`] if the string runs off the mapped range.
    pub fn read_cstr(&self, addr: u32) -> Result<String, Fault> {
        let mut s = Vec::new();
        let mut a = addr;
        loop {
            let b = self.read_u8(a)?;
            if b == 0 {
                break;
            }
            s.push(b);
            a = a.wrapping_add(1);
        }
        Ok(String::from_utf8_lossy(&s).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_order_round_trips() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let mut m = Memory::new(0x1000, 0x100, order);
            m.write_u32(0x1000, 0xDEADBEEF).unwrap();
            assert_eq!(m.read_u32(0x1000).unwrap(), 0xDEADBEEF);
            m.write_u16(0x1010, 0x1234).unwrap();
            assert_eq!(m.read_u16(0x1010).unwrap(), 0x1234);
            m.write_f64(0x1020, -2.5).unwrap();
            assert_eq!(m.read_f64(0x1020).unwrap(), -2.5);
            m.write_f32(0x1030, 0.5).unwrap();
            assert_eq!(m.read_f32(0x1030).unwrap(), 0.5);
        }
    }

    #[test]
    fn byte_orders_differ_in_memory() {
        let mut be = Memory::new(0, 16, ByteOrder::Big);
        let mut le = Memory::new(0, 16, ByteOrder::Little);
        be.write_u32(0, 0x01020304).unwrap();
        le.write_u32(0, 0x01020304).unwrap();
        assert_eq!(be.read_bytes(0, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(le.read_bytes(0, 4).unwrap(), &[4, 3, 2, 1]);
    }

    #[test]
    fn null_page_faults() {
        let m = Memory::new(0x1000, 0x100, ByteOrder::Big);
        assert_eq!(m.read_u32(0), Err(Fault::BadAddress { addr: 0, write: false }));
        assert_eq!(m.read_u32(0xfff), Err(Fault::BadAddress { addr: 0xfff, write: false }));
    }

    #[test]
    fn limit_faults() {
        let mut m = Memory::new(0x1000, 0x10, ByteOrder::Big);
        assert!(m.read_u32(0x100c).is_ok());
        assert!(m.read_u32(0x100d).is_err());
        assert_eq!(
            m.write_u32(0x1010, 0),
            Err(Fault::BadAddress { addr: 0x1010, write: true })
        );
        // Wrap-around is a fault, not a panic.
        assert!(m.read_u32(u32::MAX - 1).is_err());
    }

    #[test]
    fn cstr_reading() {
        let mut m = Memory::new(0, 32, ByteOrder::Little);
        m.write_bytes(4, b"fib\0").unwrap();
        assert_eq!(m.read_cstr(4).unwrap(), "fib");
        assert_eq!(m.read_cstr(7).unwrap(), "");
    }

    #[test]
    fn fault_display() {
        assert_eq!(Fault::DivideByZero.to_string(), "integer divide by zero");
        assert!(Fault::BadAddress { addr: 0x10, write: true }.to_string().contains("store"));
    }
}
