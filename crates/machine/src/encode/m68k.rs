//! 68020-like instruction encoding: variable-length, big-endian, built from
//! 2-byte opwords plus extension words. The no-op is `0x4e71` (the real
//! 68000 NOP) and the breakpoint trap is `0x4e4f` (`trap #15`); `unlk` and
//! `rts` also use their real opcodes. Register fields pack two 4-bit
//! register numbers per byte (16 registers: d0-d7 are 0-7, a0-a7 are 8-15).
//! Supports 80-bit extended floating point.

use super::EncodeError;
use crate::arch::Arch;
use crate::op::{AluOp, Cond, FaluOp, FltSize, MemSize, Op};

fn err(reason: impl Into<String>) -> EncodeError {
    EncodeError { arch: Arch::M68k, reason: reason.into() }
}

const NOP: u16 = 0x4e71;
const BREAK: u16 = 0x4e4f; // trap #15
const TRAP_BASE: u16 = 0x4e40; // trap #0..#14 are host calls
const RTS: u16 = 0x4e75;
const LINK_BASE: u16 = 0x4e50; // +An
const UNLK_BASE: u16 = 0x4e58; // +An

// Opword classes (first byte).
const C_MOV: u8 = 0x20;
const C_ALUR: u8 = 0x22;
const C_ALUI: u8 = 0x24;
const C_LI: u8 = 0x26;
const C_LOAD: u8 = 0x28;
const C_STORE: u8 = 0x2a;
const C_FLOAD: u8 = 0x2c;
const C_FSTORE: u8 = 0x2e;
const C_FALU: u8 = 0x30;
const C_FMISC: u8 = 0x32;
const C_FCMP: u8 = 0x34;
const C_CMP: u8 = 0x36;
const C_TST: u8 = 0x38;
const C_BCC: u8 = 0x3a;
const C_JMP: u8 = 0x3c;
const C_CALL: u8 = 0x3e;
const C_PUSH: u8 = 0x40;
const C_POP: u8 = 0x42;
const C_SAVEM: u8 = 0x44;
const C_RESTM: u8 = 0x46;
const C_JMPR: u8 = 0x48;

fn pack(hi: u8, lo: u8) -> u8 {
    debug_assert!(hi < 16 && lo < 16);
    (hi << 4) | (lo & 0xf)
}

fn mem_size_code(size: MemSize, signed: bool) -> u8 {
    match (size, signed) {
        (MemSize::B1, true) => 0,
        (MemSize::B1, false) => 1,
        (MemSize::B2, true) => 2,
        (MemSize::B2, false) => 3,
        (MemSize::B4, _) => 4,
    }
}

fn mem_size_from(code: u8) -> Option<(MemSize, bool)> {
    Some(match code {
        0 => (MemSize::B1, true),
        1 => (MemSize::B1, false),
        2 => (MemSize::B2, true),
        3 => (MemSize::B2, false),
        4 => (MemSize::B4, true),
        _ => return None,
    })
}

fn flt_size_code(s: FltSize) -> u8 {
    match s {
        FltSize::F4 => 0,
        FltSize::F8 => 1,
        FltSize::F10 => 2,
    }
}

fn flt_size_from(code: u8) -> Option<FltSize> {
    Some(match code {
        0 => FltSize::F4,
        1 => FltSize::F8,
        2 => FltSize::F10,
        _ => return None,
    })
}

/// Encoded length of `op` in bytes (fixed per operation kind).
pub fn length(op: &Op) -> u8 {
    match op {
        Op::Nop | Op::Break(_) | Op::Syscall(_) | Op::Ret => 2,
        Op::Mov { .. } | Op::Cmp { .. } | Op::Tst { .. } => 2,
        Op::Push { .. } | Op::Pop { .. } | Op::JumpReg { .. } | Op::Unlink { .. } => 2,
        Op::Alu { .. } | Op::FAlu { .. } => 4,
        Op::FNeg { .. } | Op::FMov { .. } | Op::CvtIF { .. } | Op::CvtFI { .. } => 4,
        Op::FCmp { .. } | Op::BranchCC { .. } | Op::Link { .. } => 4,
        Op::SaveRegs { .. } | Op::RestoreRegs { .. } => 4,
        Op::Load { .. } | Op::Store { .. } | Op::FLoad { .. } | Op::FStore { .. } => 6,
        Op::LoadImm { .. } | Op::Jump { .. } | Op::Call { .. } => 6,
        Op::AluI { .. } => 8,
        _ => 0,
    }
}

/// Encode one operation at `pc` (big-endian).
///
/// # Errors
/// RISC-only operations (`Branch`, `JumpAndLink`, `LoadUpper`) and
/// out-of-range displacements.
pub fn encode(op: &Op, pc: u32) -> Result<Vec<u8>, EncodeError> {
    let mut b: Vec<u8> = Vec::with_capacity(8);
    let opword = |b: &mut Vec<u8>, w: u16| b.extend_from_slice(&w.to_be_bytes());
    match *op {
        Op::Nop => opword(&mut b, NOP),
        Op::Break(code) => {
            if code != 0 {
                return Err(err("the 68020 breakpoint is trap #15 (code 0)"));
            }
            opword(&mut b, BREAK);
        }
        Op::Syscall(n) => {
            if n >= 15 {
                return Err(err("host calls use trap #0..#14"));
            }
            opword(&mut b, TRAP_BASE | n as u16);
        }
        Op::Ret => opword(&mut b, RTS),
        Op::Link { fp, size } => {
            if !(8..16).contains(&fp) {
                return Err(err("link requires an address register"));
            }
            opword(&mut b, LINK_BASE | (fp - 8) as u16);
            b.extend_from_slice(&size.to_be_bytes());
        }
        Op::Unlink { fp } => {
            if !(8..16).contains(&fp) {
                return Err(err("unlk requires an address register"));
            }
            opword(&mut b, UNLK_BASE | (fp - 8) as u16);
        }
        Op::Mov { rd, rs } => b.extend_from_slice(&[C_MOV, pack(rd, rs)]),
        Op::Alu { op, rd, rs, rt } => {
            b.extend_from_slice(&[C_ALUR, pack(rd, rs), op.index(), rt]);
        }
        Op::AluI { op, rd, rs, imm } => {
            b.extend_from_slice(&[C_ALUI, pack(rd, rs), op.index(), 0]);
            b.extend_from_slice(&(imm as i32).to_be_bytes());
        }
        Op::LoadImm { rd, imm } => {
            b.extend_from_slice(&[C_LI, pack(rd, 0)]);
            b.extend_from_slice(&imm.to_be_bytes());
        }
        Op::Load { size, signed, rd, base, off } => {
            b.extend_from_slice(&[C_LOAD, pack(rd, base), mem_size_code(size, signed), 0]);
            b.extend_from_slice(&off.to_be_bytes());
        }
        Op::Store { size, rs, base, off } => {
            b.extend_from_slice(&[C_STORE, pack(rs, base), mem_size_code(size, true), 0]);
            b.extend_from_slice(&off.to_be_bytes());
        }
        Op::FLoad { size, fd, base, off } => {
            b.extend_from_slice(&[C_FLOAD, pack(fd, base), flt_size_code(size), 0]);
            b.extend_from_slice(&off.to_be_bytes());
        }
        Op::FStore { size, fs, base, off } => {
            b.extend_from_slice(&[C_FSTORE, pack(fs, base), flt_size_code(size), 0]);
            b.extend_from_slice(&off.to_be_bytes());
        }
        Op::FAlu { op, fd, fs, ft } => {
            b.extend_from_slice(&[C_FALU, pack(fd, fs), op.index(), ft]);
        }
        Op::FNeg { fd, fs } => b.extend_from_slice(&[C_FMISC, pack(fd, fs), 0, 0]),
        Op::FMov { fd, fs } => b.extend_from_slice(&[C_FMISC, pack(fd, fs), 3, 0]),
        Op::CvtIF { fd, rs } => b.extend_from_slice(&[C_FMISC, pack(fd, rs), 1, 0]),
        Op::CvtFI { rd, fs } => b.extend_from_slice(&[C_FMISC, pack(rd, fs), 2, 0]),
        Op::FCmp { cond, rd, fs, ft } => {
            b.extend_from_slice(&[C_FCMP, pack(rd, fs), cond.index(), ft]);
        }
        Op::Cmp { rs, rt } => b.extend_from_slice(&[C_CMP, pack(rs, rt)]),
        Op::Tst { rs } => b.extend_from_slice(&[C_TST, pack(rs, 0)]),
        Op::BranchCC { cond, target } => {
            b.extend_from_slice(&[C_BCC, cond.index()]);
            let disp = target.wrapping_sub(pc.wrapping_add(4)) as i32;
            let disp =
                i16::try_from(disp).map_err(|_| err(format!("branch displacement {disp}")))?;
            b.extend_from_slice(&disp.to_be_bytes());
        }
        Op::Jump { target } => {
            b.extend_from_slice(&[C_JMP, 0]);
            b.extend_from_slice(&target.to_be_bytes());
        }
        Op::Call { target } => {
            b.extend_from_slice(&[C_CALL, 0]);
            b.extend_from_slice(&target.to_be_bytes());
        }
        Op::Push { rs } => b.extend_from_slice(&[C_PUSH, pack(rs, 0)]),
        Op::Pop { rd } => b.extend_from_slice(&[C_POP, pack(rd, 0)]),
        Op::SaveRegs { mask } => {
            b.extend_from_slice(&[C_SAVEM, 0]);
            b.extend_from_slice(&mask.to_be_bytes());
        }
        Op::RestoreRegs { mask } => {
            b.extend_from_slice(&[C_RESTM, 0]);
            b.extend_from_slice(&mask.to_be_bytes());
        }
        Op::JumpReg { rs } => b.extend_from_slice(&[C_JMPR, pack(rs, 0)]),
        Op::Branch { .. } => return Err(err("the 68020 branches on condition codes")),
        Op::JumpAndLink { .. } => return Err(err("the 68020 calls push the return address")),
        Op::LoadUpper { .. } => return Err(err("the 68020 loads 32-bit immediates directly")),
    }
    Ok(b)
}

fn be16(b: &[u8], i: usize) -> Option<i16> {
    Some(i16::from_be_bytes([*b.get(i)?, *b.get(i + 1)?]))
}

fn be32(b: &[u8], i: usize) -> Option<u32> {
    Some(u32::from_be_bytes([*b.get(i)?, *b.get(i + 1)?, *b.get(i + 2)?, *b.get(i + 3)?]))
}

/// Decode the instruction at `pc`. Returns `None` for illegal instructions.
pub fn decode(bytes: &[u8], pc: u32) -> Option<(Op, u8)> {
    let w = u16::from_be_bytes([*bytes.first()?, *bytes.get(1)?]);
    // Fixed 0x4exx family first (real 68000 opcodes).
    match w {
        NOP => return Some((Op::Nop, 2)),
        BREAK => return Some((Op::Break(0), 2)),
        RTS => return Some((Op::Ret, 2)),
        _ => {}
    }
    if (TRAP_BASE..TRAP_BASE + 15).contains(&w) {
        return Some((Op::Syscall((w - TRAP_BASE) as u8), 2));
    }
    if (LINK_BASE..LINK_BASE + 8).contains(&w) {
        let size = be16(bytes, 2)? as u16;
        return Some((Op::Link { fp: (w - LINK_BASE) as u8 + 8, size }, 4));
    }
    if (UNLK_BASE..UNLK_BASE + 8).contains(&w) {
        return Some((Op::Unlink { fp: (w - UNLK_BASE) as u8 + 8 }, 2));
    }
    let class = bytes[0];
    let hi = bytes[1] >> 4;
    let lo = bytes[1] & 0xf;
    let op = match class {
        C_MOV => (Op::Mov { rd: hi, rs: lo }, 2),
        C_ALUR => (
            Op::Alu { op: AluOp::from_index(*bytes.get(2)?)?, rd: hi, rs: lo, rt: *bytes.get(3)? },
            4,
        ),
        C_ALUI => (
            Op::AluI {
                op: AluOp::from_index(*bytes.get(2)?)?,
                rd: hi,
                rs: lo,
                imm: i16::try_from(be32(bytes, 4)? as i32).ok()?,
            },
            8,
        ),
        C_LI => {
            let imm = be32(bytes, 2)? as i32;
            (Op::LoadImm { rd: hi, imm }, 6)
        }
        C_LOAD => {
            let (size, signed) = mem_size_from(*bytes.get(2)?)?;
            (Op::Load { size, signed, rd: hi, base: lo, off: be16(bytes, 4)? }, 6)
        }
        C_STORE => {
            let (size, _) = mem_size_from(*bytes.get(2)?)?;
            (Op::Store { size, rs: hi, base: lo, off: be16(bytes, 4)? }, 6)
        }
        C_FLOAD => (
            Op::FLoad { size: flt_size_from(*bytes.get(2)?)?, fd: hi, base: lo, off: be16(bytes, 4)? },
            6,
        ),
        C_FSTORE => (
            Op::FStore { size: flt_size_from(*bytes.get(2)?)?, fs: hi, base: lo, off: be16(bytes, 4)? },
            6,
        ),
        C_FALU => (
            Op::FAlu { op: FaluOp::from_index(*bytes.get(2)?)?, fd: hi, fs: lo, ft: *bytes.get(3)? },
            4,
        ),
        C_FMISC => match *bytes.get(2)? {
            0 => (Op::FNeg { fd: hi, fs: lo }, 4),
            1 => (Op::CvtIF { fd: hi, rs: lo }, 4),
            2 => (Op::CvtFI { rd: hi, fs: lo }, 4),
            3 => (Op::FMov { fd: hi, fs: lo }, 4),
            _ => return None,
        },
        C_FCMP => (
            Op::FCmp { cond: Cond::from_index(*bytes.get(2)?)?, rd: hi, fs: lo, ft: *bytes.get(3)? },
            4,
        ),
        C_CMP => (Op::Cmp { rs: hi, rt: lo }, 2),
        C_TST => (Op::Tst { rs: hi }, 2),
        C_BCC => {
            let cond = Cond::from_index(bytes[1])?;
            let disp = be16(bytes, 2)? as i32;
            (Op::BranchCC { cond, target: pc.wrapping_add(4).wrapping_add(disp as u32) }, 4)
        }
        C_JMP => (Op::Jump { target: be32(bytes, 2)? }, 6),
        C_CALL => (Op::Call { target: be32(bytes, 2)? }, 6),
        C_PUSH => (Op::Push { rs: hi }, 2),
        C_POP => (Op::Pop { rd: hi }, 2),
        C_SAVEM => (Op::SaveRegs { mask: be16(bytes, 2)? as u16 }, 4),
        C_RESTM => (Op::RestoreRegs { mask: be16(bytes, 2)? as u16 }, 4),
        C_JMPR => (Op::JumpReg { rs: hi }, 2),
        _ => return None,
    };
    Some(op)
}
