//! SPARC-like instruction encoding: fixed 4-byte big-endian words with a
//! SPARC-flavored twist — comparisons set condition codes (`Cmp` + `Bcc`)
//! rather than comparing registers in the branch. The no-op is
//! `0x01000000` (`sethi 0,%g0`) and the breakpoint trap is `0x91d02001`
//! (`ta 1`), the patterns named in ldb's SPARC breakpoint data.

use super::word::*;
use super::EncodeError;
use crate::arch::{Arch, ByteOrder};
use crate::op::{AluOp, Cond, FltSize, MemSize, Op};

fn err(reason: impl Into<String>) -> EncodeError {
    EncodeError { arch: Arch::Sparc, reason: reason.into() }
}

const NOP_WORD: u32 = 0x0100_0000;
const TRAP_BASE: u32 = 0x91d0_2000; // opcode 36 region; +code = ta code
const OP_TRAP: u32 = 36;
const SYSCALL_BIT: u32 = 0x100;

const OP_JMP: u32 = 1;
const OP_CALL: u32 = 2;
const OP_BCC_BASE: u32 = 3; // +Cond::index, 3..=8
const OP_CMP: u32 = 9;
const OP_ALU_BASE: u32 = 10; // +AluOp::index, 10..=22
const OP_ALUI_BASE: u32 = 23; // +AluOp::index, 23..=35; 36 is the trap region
const OP_LI: u32 = 37;
const OP_SETHI: u32 = 38;
const OP_MOV: u32 = 39;
const OP_LB: u32 = 40;
const OP_LBU: u32 = 41;
const OP_LH: u32 = 42;
const OP_LHU: u32 = 43;
const OP_LW: u32 = 44;
const OP_SB: u32 = 45;
const OP_SH: u32 = 46;
const OP_SW: u32 = 47;
const OP_LDF: u32 = 48;
const OP_LDDF: u32 = 49;
const OP_STF: u32 = 50;
const OP_STDF: u32 = 51;
const OP_FALU_BASE: u32 = 52; // +FaluOp::index, 52..=55
const OP_FMISC: u32 = 56; // funct: 0 FNeg, 1 CvtIF, 2 CvtFI
const OP_FCMP: u32 = 57; // funct: Cond::index
const OP_JMPL: u32 = 58; // jump register

/// Encode one operation.
///
/// # Errors
/// CISC operations, register-comparing branches (the SPARC uses condition
/// codes), and out-of-range displacements.
pub fn encode(op: &Op, pc: u32, order: ByteOrder) -> Result<Vec<u8>, EncodeError> {
    let w = match *op {
        Op::Nop => NOP_WORD,
        Op::Break(code) => TRAP_BASE | code as u32,
        Op::Syscall(n) => TRAP_BASE | SYSCALL_BIT | n as u32,
        Op::Jump { target } => j_type(OP_JMP, target),
        Op::JumpAndLink { target, link } => {
            if link != 15 {
                return Err(err("call links through %o7 (r15) only"));
            }
            j_type(OP_CALL, target)
        }
        Op::JumpReg { rs } => r_type(OP_JMPL, rs, 0, 0, 0),
        Op::BranchCC { cond, target } => {
            let disp = branch_disp(pc, target).map_err(err)?;
            i_type(OP_BCC_BASE + cond.index() as u32, 0, 0, disp)
        }
        Op::Cmp { rs, rt } => r_type(OP_CMP, rs, rt, 0, 0),
        Op::Alu { op, rd, rs, rt } => r_type(OP_ALU_BASE + op.index() as u32, rs, rt, rd, 0),
        Op::AluI { op, rd, rs, imm } => i_type(OP_ALUI_BASE + op.index() as u32, rs, rd, imm),
        Op::LoadImm { rd, imm } => {
            let imm = i16::try_from(imm).map_err(|_| err(format!("set {imm} needs sethi/or")))?;
            i_type(OP_LI, 0, rd, imm)
        }
        Op::LoadUpper { rd, imm } => i_type(OP_SETHI, 0, rd, imm as i16),
        Op::Mov { rd, rs } => r_type(OP_MOV, rs, 0, rd, 0),
        Op::Load { size, signed, rd, base, off } => {
            let opc = match (size, signed) {
                (MemSize::B1, true) => OP_LB,
                (MemSize::B1, false) => OP_LBU,
                (MemSize::B2, true) => OP_LH,
                (MemSize::B2, false) => OP_LHU,
                (MemSize::B4, _) => OP_LW,
            };
            i_type(opc, base, rd, off)
        }
        Op::Store { size, rs, base, off } => {
            let opc = match size {
                MemSize::B1 => OP_SB,
                MemSize::B2 => OP_SH,
                MemSize::B4 => OP_SW,
            };
            i_type(opc, base, rs, off)
        }
        Op::FLoad { size, fd, base, off } => {
            let opc = match size {
                FltSize::F4 => OP_LDF,
                FltSize::F8 => OP_LDDF,
                FltSize::F10 => return Err(err("no 80-bit floats on the SPARC")),
            };
            i_type(opc, base, fd, off)
        }
        Op::FStore { size, fs, base, off } => {
            let opc = match size {
                FltSize::F4 => OP_STF,
                FltSize::F8 => OP_STDF,
                FltSize::F10 => return Err(err("no 80-bit floats on the SPARC")),
            };
            i_type(opc, base, fs, off)
        }
        Op::FAlu { op, fd, fs, ft } => r_type(OP_FALU_BASE + op.index() as u32, fs, ft, fd, 0),
        Op::FNeg { fd, fs } => r_type(OP_FMISC, fs, 0, fd, 0),
        Op::FMov { fd, fs } => r_type(OP_FMISC, fs, 0, fd, 3),
        Op::CvtIF { fd, rs } => r_type(OP_FMISC, rs, 0, fd, 1),
        Op::CvtFI { rd, fs } => r_type(OP_FMISC, fs, 0, rd, 2),
        Op::FCmp { cond, rd, fs, ft } => r_type(OP_FCMP, fs, ft, rd, cond.index() as u32),
        Op::Branch { .. } => {
            return Err(err("the SPARC branches on condition codes; use Cmp + BranchCC"))
        }
        Op::Tst { .. } => return Err(err("use Cmp against %g0 instead of Tst")),
        Op::Push { .. }
        | Op::Pop { .. }
        | Op::Call { .. }
        | Op::Ret
        | Op::Link { .. }
        | Op::Unlink { .. }
        | Op::SaveRegs { .. }
        | Op::RestoreRegs { .. } => return Err(err("CISC operation on a RISC target")),
    };
    Ok(to_bytes(w, order))
}

/// Decode the word at `pc`. Returns `None` for illegal instructions.
pub fn decode(bytes: &[u8], pc: u32, order: ByteOrder) -> Option<(Op, u8)> {
    let w = from_bytes(bytes, order)?;
    if w == NOP_WORD {
        return Some((Op::Nop, 4));
    }
    let (opc, rs, rt, rd, funct) = fields(w);
    let op = match opc {
        OP_TRAP => {
            if w & SYSCALL_BIT != 0 {
                Op::Syscall((w & 0xff) as u8)
            } else if w & 0xffff_ff00 == TRAP_BASE {
                Op::Break((w & 0xff) as u8)
            } else {
                return None;
            }
        }
        OP_JMP => Op::Jump { target: jump_target(w) },
        OP_CALL => Op::JumpAndLink { target: jump_target(w), link: 15 },
        OP_JMPL => Op::JumpReg { rs },
        OP_CMP => Op::Cmp { rs, rt },
        OP_LI => Op::LoadImm { rd: rt, imm: imm16(w) as i32 },
        OP_SETHI => Op::LoadUpper { rd: rt, imm: imm16(w) as u16 },
        OP_MOV => Op::Mov { rd, rs },
        OP_LB => Op::Load { size: MemSize::B1, signed: true, rd: rt, base: rs, off: imm16(w) },
        OP_LBU => Op::Load { size: MemSize::B1, signed: false, rd: rt, base: rs, off: imm16(w) },
        OP_LH => Op::Load { size: MemSize::B2, signed: true, rd: rt, base: rs, off: imm16(w) },
        OP_LHU => Op::Load { size: MemSize::B2, signed: false, rd: rt, base: rs, off: imm16(w) },
        OP_LW => Op::Load { size: MemSize::B4, signed: true, rd: rt, base: rs, off: imm16(w) },
        OP_SB => Op::Store { size: MemSize::B1, rs: rt, base: rs, off: imm16(w) },
        OP_SH => Op::Store { size: MemSize::B2, rs: rt, base: rs, off: imm16(w) },
        OP_SW => Op::Store { size: MemSize::B4, rs: rt, base: rs, off: imm16(w) },
        OP_LDF => Op::FLoad { size: FltSize::F4, fd: rt, base: rs, off: imm16(w) },
        OP_LDDF => Op::FLoad { size: FltSize::F8, fd: rt, base: rs, off: imm16(w) },
        OP_STF => Op::FStore { size: FltSize::F4, fs: rt, base: rs, off: imm16(w) },
        OP_STDF => Op::FStore { size: FltSize::F8, fs: rt, base: rs, off: imm16(w) },
        OP_FMISC => match funct {
            0 => Op::FNeg { fd: rd, fs: rs },
            1 => Op::CvtIF { fd: rd, rs },
            2 => Op::CvtFI { rd, fs: rs },
            3 => Op::FMov { fd: rd, fs: rs },
            _ => return None,
        },
        OP_FCMP => Op::FCmp { cond: Cond::from_index(funct as u8)?, rd, fs: rs, ft: rt },
        o if (OP_BCC_BASE..OP_BCC_BASE + 6).contains(&o) => Op::BranchCC {
            cond: Cond::from_index((o - OP_BCC_BASE) as u8)?,
            target: branch_target(pc, imm16(w)),
        },
        o if (OP_ALU_BASE..OP_ALU_BASE + 13).contains(&o) => {
            Op::Alu { op: AluOp::from_index((o - OP_ALU_BASE) as u8)?, rd, rs, rt }
        }
        o if (OP_ALUI_BASE..OP_ALUI_BASE + 13).contains(&o) => Op::AluI {
            op: AluOp::from_index((o - OP_ALUI_BASE) as u8)?,
            rd: rt,
            rs,
            imm: imm16(w),
        },
        o if (OP_FALU_BASE..OP_FALU_BASE + 4).contains(&o) => Op::FAlu {
            op: crate::op::FaluOp::from_index((o - OP_FALU_BASE) as u8)?,
            fd: rd,
            fs: rs,
            ft: rt,
        },
        _ => return None,
    };
    Some((op, 4))
}
