//! Instruction encoding and decoding, one module per target.
//!
//! These modules are the machine-dependent heart of the simulated targets:
//! each defines its own byte format, and only the four bit patterns the
//! debugger needs (no-op and breakpoint, per architecture) are exported as
//! data through [`crate::arch::MachineData`]. The encoders are used by the
//! compiler's assemblers; the decoders by the CPU.

pub mod m68k;
pub mod mips;
pub mod sparc;
pub mod vax;

use crate::arch::{Arch, ByteOrder};
use crate::op::Op;

/// An encoding failure: the operation does not exist on the target, or an
/// operand does not fit its field.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeError {
    /// Which target rejected the operation.
    pub arch: Arch,
    /// Why.
    pub reason: String,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: cannot encode: {}", self.arch, self.reason)
    }
}

impl std::error::Error for EncodeError {}

/// Encode `op` at address `pc` for `arch`, in the image byte order.
///
/// # Errors
/// [`EncodeError`] when the target has no encoding for `op` or a field
/// overflows (e.g. a branch displacement beyond ±32K words).
pub fn encode(arch: Arch, op: &Op, pc: u32, order: ByteOrder) -> Result<Vec<u8>, EncodeError> {
    match arch {
        Arch::Mips => mips::encode(op, pc, order),
        Arch::Sparc => sparc::encode(op, pc, order),
        Arch::M68k => m68k::encode(op, pc),
        Arch::Vax => vax::encode(op, pc),
    }
}

/// Decode the instruction at `pc` from `bytes` (which start at `pc`).
/// Returns the operation and its encoded length. `None` means an illegal
/// instruction.
pub fn decode(arch: Arch, bytes: &[u8], pc: u32, order: ByteOrder) -> Option<(Op, u8)> {
    match arch {
        Arch::Mips => mips::decode(bytes, pc, order),
        Arch::Sparc => sparc::decode(bytes, pc, order),
        Arch::M68k => m68k::decode(bytes, pc),
        Arch::Vax => vax::decode(bytes, pc),
    }
}

/// The encoded length of `op` on `arch`, without needing resolved targets
/// (lengths are fixed per operation kind; the assembler uses this for
/// layout before branch targets are known).
pub fn length(arch: Arch, op: &Op) -> u8 {
    match arch {
        Arch::Mips | Arch::Sparc => 4,
        Arch::M68k => m68k::length(op),
        Arch::Vax => vax::length(op),
    }
}

/// Helpers shared by the two fixed-word targets: 6-bit opcode, 5-bit
/// register fields, 16-bit immediate, 26-bit jump target.
pub(crate) mod word {
    use crate::arch::ByteOrder;

    pub fn r_type(op: u32, rs: u8, rt: u8, rd: u8, funct: u32) -> u32 {
        (op << 26) | ((rs as u32) << 21) | ((rt as u32) << 16) | ((rd as u32) << 11) | (funct & 0x7ff)
    }

    pub fn i_type(op: u32, rs: u8, rt: u8, imm: i16) -> u32 {
        (op << 26) | ((rs as u32) << 21) | ((rt as u32) << 16) | (imm as u16 as u32)
    }

    pub fn j_type(op: u32, target: u32) -> u32 {
        debug_assert_eq!(target % 4, 0);
        (op << 26) | ((target / 4) & 0x03ff_ffff)
    }

    pub fn fields(w: u32) -> (u32, u8, u8, u8, u32) {
        (
            w >> 26,
            ((w >> 21) & 31) as u8,
            ((w >> 16) & 31) as u8,
            ((w >> 11) & 31) as u8,
            w & 0x7ff,
        )
    }

    pub fn imm16(w: u32) -> i16 {
        (w & 0xffff) as u16 as i16
    }

    pub fn jump_target(w: u32) -> u32 {
        (w & 0x03ff_ffff) * 4
    }

    /// Branch displacement: signed word count relative to the next
    /// instruction.
    pub fn branch_disp(pc: u32, target: u32) -> Result<i16, String> {
        let delta = target.wrapping_sub(pc.wrapping_add(4)) as i32;
        if delta % 4 != 0 {
            return Err(format!("misaligned branch target {target:#x}"));
        }
        let words = delta / 4;
        i16::try_from(words).map_err(|_| format!("branch displacement {words} out of range"))
    }

    pub fn branch_target(pc: u32, imm: i16) -> u32 {
        pc.wrapping_add(4).wrapping_add((imm as i32 * 4) as u32)
    }

    pub fn to_bytes(w: u32, order: ByteOrder) -> Vec<u8> {
        match order {
            ByteOrder::Big => w.to_be_bytes().to_vec(),
            ByteOrder::Little => w.to_le_bytes().to_vec(),
        }
    }

    pub fn from_bytes(b: &[u8], order: ByteOrder) -> Option<u32> {
        if b.len() < 4 {
            return None;
        }
        Some(match order {
            ByteOrder::Big => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            ByteOrder::Little => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, Cond, FaluOp, FltSize, MemSize, Op};

    /// Every op each backend emits must round-trip through encode/decode on
    /// the architectures that support it.
    fn roundtrip(arch: Arch, order: ByteOrder, ops: &[Op]) {
        let mut pc = 0x1000u32;
        for op in ops {
            let bytes = encode(arch, op, pc, order)
                .unwrap_or_else(|e| panic!("{arch}: encode {op:?}: {e}"));
            assert_eq!(bytes.len(), length(arch, op) as usize, "{arch}: length of {op:?}");
            let (dec, len) = decode(arch, &bytes, pc, order)
                .unwrap_or_else(|| panic!("{arch}: decode {op:?} from {bytes:02x?}"));
            assert_eq!(len as usize, bytes.len(), "{arch}: {op:?}");
            assert_eq!(&dec, op, "{arch}: round-trip");
            pc += len as u32;
        }
    }

    fn common_ops() -> Vec<Op> {
        vec![
            Op::Nop,
            Op::Syscall(3),
            Op::LoadImm { rd: 5, imm: -42 },
            Op::Mov { rd: 3, rs: 7 },
            Op::Alu { op: AluOp::Add, rd: 1, rs: 2, rt: 3 },
            Op::Alu { op: AluOp::Div, rd: 4, rs: 5, rt: 6 },
            Op::Alu { op: AluOp::Sra, rd: 7, rs: 1, rt: 2 },
            Op::AluI { op: AluOp::Add, rd: 1, rs: 2, imm: -4 },
            Op::AluI { op: AluOp::Sll, rd: 1, rs: 2, imm: 3 },
            Op::Load { size: MemSize::B4, signed: true, rd: 2, base: 14, off: -8 },
            Op::Load { size: MemSize::B1, signed: false, rd: 2, base: 14, off: 100 },
            Op::Load { size: MemSize::B2, signed: true, rd: 2, base: 14, off: 2 },
            Op::Store { size: MemSize::B4, rs: 2, base: 14, off: 12 },
            Op::Store { size: MemSize::B1, rs: 2, base: 14, off: -1 },
            Op::FLoad { size: FltSize::F8, fd: 1, base: 14, off: 16 },
            Op::FStore { size: FltSize::F4, fs: 1, base: 14, off: -16 },
            Op::FAlu { op: FaluOp::Mul, fd: 1, fs: 2, ft: 3 },
            Op::FNeg { fd: 1, fs: 2 },
            Op::CvtIF { fd: 1, rs: 2 },
            Op::CvtFI { rd: 2, fs: 1 },
            Op::FCmp { cond: Cond::Lt, rd: 3, fs: 1, ft: 2 },
            Op::Jump { target: 0x2000 },
            Op::JumpReg { rs: 9 },
        ]
    }

    #[test]
    fn mips_roundtrip() {
        let mut ops = common_ops();
        ops.extend([
            Op::Break(0),
            Op::LoadUpper { rd: 3, imm: 0xdead },
            Op::Branch { cond: Cond::Lt, rs: 1, rt: 2, target: 0x1100 },
            Op::Branch { cond: Cond::Eq, rs: 0, rt: 2, target: 0xf00 },
            Op::JumpAndLink { target: 0x3000, link: 31 },
        ]);
        for order in [ByteOrder::Big, ByteOrder::Little] {
            roundtrip(Arch::Mips, order, &ops);
        }
    }

    #[test]
    fn sparc_roundtrip() {
        let mut ops = common_ops();
        ops.extend([
            Op::Break(1),
            Op::LoadUpper { rd: 3, imm: 0xbeef },
            Op::Cmp { rs: 1, rt: 2 },
            Op::BranchCC { cond: Cond::Ge, target: 0x1400 },
            Op::JumpAndLink { target: 0x3000, link: 15 },
        ]);
        roundtrip(Arch::Sparc, ByteOrder::Big, &ops);
    }

    fn cisc_extra() -> Vec<Op> {
        vec![
            Op::Break(0),
            Op::Cmp { rs: 1, rt: 2 },
            Op::Tst { rs: 3 },
            Op::BranchCC { cond: Cond::Ne, target: 0x1200 },
            Op::Push { rs: 5 },
            Op::Pop { rd: 6 },
            Op::Call { target: 0x2345 },
            Op::Ret,
            Op::Link { fp: 14, size: 24 },
            Op::Unlink { fp: 14 },
            Op::SaveRegs { mask: 0b0000_1100_1111_0000 },
            Op::RestoreRegs { mask: 0b0000_1100_1111_0000 },
        ]
    }

    #[test]
    fn m68k_roundtrip() {
        let mut ops = common_ops();
        ops.extend(cisc_extra());
        ops.push(Op::FLoad { size: FltSize::F10, fd: 2, base: 14, off: -20 });
        roundtrip(Arch::M68k, ByteOrder::Big, &ops);
    }

    #[test]
    fn vax_roundtrip() {
        let mut ops = common_ops();
        ops.extend(cisc_extra());
        roundtrip(Arch::Vax, ByteOrder::Little, &ops);
    }

    #[test]
    fn nop_and_break_patterns_match_machine_data() {
        // The debugger plants breakpoints from MachineData patterns alone;
        // the decoders must agree with them.
        for arch in Arch::ALL {
            let d = arch.data();
            let order = d.default_order;
            let nop = d.nop_bytes(order);
            let (op, len) = decode(arch, &nop, 0x1000, order).expect("nop decodes");
            assert_eq!(op, Op::Nop, "{arch}");
            assert_eq!(len, d.insn_unit, "{arch}");
            let brk = d.break_bytes(order);
            let (op, _) = decode(arch, &brk, 0x1000, order).expect("break decodes");
            assert!(matches!(op, Op::Break(_)), "{arch}: {op:?}");
        }
    }

    #[test]
    fn mips_nop_also_decodes_little_endian() {
        let d = Arch::Mips.data();
        let nop = d.nop_bytes(ByteOrder::Little);
        let (op, _) = decode(Arch::Mips, &nop, 0, ByteOrder::Little).unwrap();
        assert_eq!(op, Op::Nop);
        let brk = d.break_bytes(ByteOrder::Little);
        let (op, _) = decode(Arch::Mips, &brk, 0, ByteOrder::Little).unwrap();
        assert_eq!(op, Op::Break(0));
    }

    #[test]
    fn risc_rejects_cisc_ops() {
        assert!(encode(Arch::Mips, &Op::Push { rs: 1 }, 0, ByteOrder::Big).is_err());
        assert!(encode(Arch::Sparc, &Op::Ret, 0, ByteOrder::Big).is_err());
        assert!(encode(Arch::Mips, &Op::Link { fp: 30, size: 8 }, 0, ByteOrder::Big).is_err());
    }

    #[test]
    fn branch_displacement_overflow_is_an_error() {
        let far = Op::Branch { cond: Cond::Eq, rs: 0, rt: 0, target: 0x40_0000 };
        assert!(encode(Arch::Mips, &far, 0, ByteOrder::Big).is_err());
    }

    #[test]
    fn truncated_bytes_decode_to_none() {
        for arch in Arch::ALL {
            assert_eq!(decode(arch, &[], 0, arch.data().default_order), None);
        }
        assert_eq!(decode(Arch::Mips, &[0, 0], 0, ByteOrder::Big), None);
    }
}
