//! VAX-like instruction encoding: variable-length, little-endian, 1-byte
//! opcodes. The no-op is the single byte `0x01` and the breakpoint trap is
//! `0x03` (`bpt`) — the real VAX opcodes, and the reason the VAX is the
//! target where "the type used to fetch and store instructions" is a byte.
//! `ret` is the real `0x04`.

use super::EncodeError;
use crate::arch::Arch;
use crate::op::{AluOp, Cond, FaluOp, FltSize, MemSize, Op};

fn err(reason: impl Into<String>) -> EncodeError {
    EncodeError { arch: Arch::Vax, reason: reason.into() }
}

const O_NOP: u8 = 0x01;
const O_BPT: u8 = 0x03;
const O_RET: u8 = 0x04;
const O_JMP: u8 = 0x05;
const O_CALL: u8 = 0x06;
const O_JMPR: u8 = 0x07;
const O_MOV: u8 = 0x10;
const O_LI: u8 = 0x11;
const O_ALUR: u8 = 0x12;
const O_ALUI: u8 = 0x13;
const O_LOAD: u8 = 0x14;
const O_STORE: u8 = 0x15;
const O_FLOAD: u8 = 0x16;
const O_FSTORE: u8 = 0x17;
const O_FALU: u8 = 0x18;
const O_FMISC: u8 = 0x19;
const O_FCMP: u8 = 0x1a;
const O_CMP: u8 = 0x1b;
const O_TST: u8 = 0x1c;
const O_BCC_BASE: u8 = 0x20; // +Cond::index, 0x20..=0x25
const O_PUSH: u8 = 0x30;
const O_POP: u8 = 0x31;
const O_LINK: u8 = 0x32;
const O_UNLINK: u8 = 0x33;
const O_SAVEM: u8 = 0x34;
const O_RESTM: u8 = 0x35;
const O_SYSCALL: u8 = 0x36;

fn mem_size_code(size: MemSize, signed: bool) -> u8 {
    match (size, signed) {
        (MemSize::B1, true) => 0,
        (MemSize::B1, false) => 1,
        (MemSize::B2, true) => 2,
        (MemSize::B2, false) => 3,
        (MemSize::B4, _) => 4,
    }
}

fn mem_size_from(code: u8) -> Option<(MemSize, bool)> {
    Some(match code {
        0 => (MemSize::B1, true),
        1 => (MemSize::B1, false),
        2 => (MemSize::B2, true),
        3 => (MemSize::B2, false),
        4 => (MemSize::B4, true),
        _ => return None,
    })
}

/// Encoded length of `op` in bytes.
pub fn length(op: &Op) -> u8 {
    match op {
        Op::Nop | Op::Break(_) | Op::Ret => 1,
        Op::Syscall(_) | Op::JumpReg { .. } | Op::Tst { .. } => 2,
        Op::Push { .. } | Op::Pop { .. } | Op::Unlink { .. } => 2,
        Op::Mov { .. } | Op::Cmp { .. } | Op::BranchCC { .. } => 3,
        Op::SaveRegs { .. } | Op::RestoreRegs { .. } => 3,
        Op::Link { .. } | Op::FNeg { .. } | Op::FMov { .. } | Op::CvtIF { .. } | Op::CvtFI { .. } => 4,
        Op::Jump { .. } | Op::Call { .. } | Op::Alu { .. } | Op::FAlu { .. } => 5,
        Op::FCmp { .. } => 5,
        Op::LoadImm { .. } | Op::Load { .. } | Op::Store { .. } => 6,
        Op::FLoad { .. } | Op::FStore { .. } => 6,
        Op::AluI { .. } => 8,
        _ => 0,
    }
}

/// Encode one operation at `pc` (little-endian).
///
/// # Errors
/// RISC-only operations and out-of-range displacements.
pub fn encode(op: &Op, pc: u32) -> Result<Vec<u8>, EncodeError> {
    let mut b: Vec<u8> = Vec::with_capacity(8);
    match *op {
        Op::Nop => b.push(O_NOP),
        Op::Break(code) => {
            if code != 0 {
                return Err(err("bpt carries no code"));
            }
            b.push(O_BPT);
        }
        Op::Ret => b.push(O_RET),
        Op::Syscall(n) => b.extend_from_slice(&[O_SYSCALL, n]),
        Op::Jump { target } => {
            b.push(O_JMP);
            b.extend_from_slice(&target.to_le_bytes());
        }
        Op::Call { target } => {
            b.push(O_CALL);
            b.extend_from_slice(&target.to_le_bytes());
        }
        Op::JumpReg { rs } => b.extend_from_slice(&[O_JMPR, rs]),
        Op::Mov { rd, rs } => b.extend_from_slice(&[O_MOV, rd, rs]),
        Op::LoadImm { rd, imm } => {
            b.extend_from_slice(&[O_LI, rd]);
            b.extend_from_slice(&imm.to_le_bytes());
        }
        Op::Alu { op, rd, rs, rt } => b.extend_from_slice(&[O_ALUR, op.index(), rd, rs, rt]),
        Op::AluI { op, rd, rs, imm } => {
            b.extend_from_slice(&[O_ALUI, op.index(), rd, rs]);
            b.extend_from_slice(&(imm as i32).to_le_bytes());
        }
        Op::Load { size, signed, rd, base, off } => {
            b.extend_from_slice(&[O_LOAD, mem_size_code(size, signed), rd, base]);
            b.extend_from_slice(&off.to_le_bytes());
        }
        Op::Store { size, rs, base, off } => {
            b.extend_from_slice(&[O_STORE, mem_size_code(size, true), rs, base]);
            b.extend_from_slice(&off.to_le_bytes());
        }
        Op::FLoad { size, fd, base, off } => {
            let sz = match size {
                FltSize::F4 => 0,
                FltSize::F8 => 1,
                FltSize::F10 => return Err(err("no 80-bit floats on the VAX")),
            };
            b.extend_from_slice(&[O_FLOAD, sz, fd, base]);
            b.extend_from_slice(&off.to_le_bytes());
        }
        Op::FStore { size, fs, base, off } => {
            let sz = match size {
                FltSize::F4 => 0,
                FltSize::F8 => 1,
                FltSize::F10 => return Err(err("no 80-bit floats on the VAX")),
            };
            b.extend_from_slice(&[O_FSTORE, sz, fs, base]);
            b.extend_from_slice(&off.to_le_bytes());
        }
        Op::FAlu { op, fd, fs, ft } => b.extend_from_slice(&[O_FALU, op.index(), fd, fs, ft]),
        Op::FNeg { fd, fs } => b.extend_from_slice(&[O_FMISC, 0, fd, fs]),
        Op::FMov { fd, fs } => b.extend_from_slice(&[O_FMISC, 3, fd, fs]),
        Op::CvtIF { fd, rs } => b.extend_from_slice(&[O_FMISC, 1, fd, rs]),
        Op::CvtFI { rd, fs } => b.extend_from_slice(&[O_FMISC, 2, rd, fs]),
        Op::FCmp { cond, rd, fs, ft } => {
            b.extend_from_slice(&[O_FCMP, cond.index(), rd, fs, ft]);
        }
        Op::Cmp { rs, rt } => b.extend_from_slice(&[O_CMP, rs, rt]),
        Op::Tst { rs } => b.extend_from_slice(&[O_TST, rs]),
        Op::BranchCC { cond, target } => {
            b.push(O_BCC_BASE + cond.index());
            let disp = target.wrapping_sub(pc.wrapping_add(3)) as i32;
            let disp =
                i16::try_from(disp).map_err(|_| err(format!("branch displacement {disp}")))?;
            b.extend_from_slice(&disp.to_le_bytes());
        }
        Op::Push { rs } => b.extend_from_slice(&[O_PUSH, rs]),
        Op::Pop { rd } => b.extend_from_slice(&[O_POP, rd]),
        Op::Link { fp, size } => {
            b.extend_from_slice(&[O_LINK, fp]);
            b.extend_from_slice(&size.to_le_bytes());
        }
        Op::Unlink { fp } => b.extend_from_slice(&[O_UNLINK, fp]),
        Op::SaveRegs { mask } => {
            b.push(O_SAVEM);
            b.extend_from_slice(&mask.to_le_bytes());
        }
        Op::RestoreRegs { mask } => {
            b.push(O_RESTM);
            b.extend_from_slice(&mask.to_le_bytes());
        }
        Op::Branch { .. } => return Err(err("the VAX branches on condition codes")),
        Op::JumpAndLink { .. } => return Err(err("the VAX calls push the return address")),
        Op::LoadUpper { .. } => return Err(err("the VAX loads 32-bit immediates directly")),
    }
    Ok(b)
}

fn le16(b: &[u8], i: usize) -> Option<i16> {
    Some(i16::from_le_bytes([*b.get(i)?, *b.get(i + 1)?]))
}

fn le32(b: &[u8], i: usize) -> Option<u32> {
    Some(u32::from_le_bytes([*b.get(i)?, *b.get(i + 1)?, *b.get(i + 2)?, *b.get(i + 3)?]))
}

/// Decode the instruction at `pc`. Returns `None` for illegal instructions.
pub fn decode(bytes: &[u8], pc: u32) -> Option<(Op, u8)> {
    let opc = *bytes.first()?;
    let op = match opc {
        O_NOP => (Op::Nop, 1),
        O_BPT => (Op::Break(0), 1),
        O_RET => (Op::Ret, 1),
        O_SYSCALL => (Op::Syscall(*bytes.get(1)?), 2),
        O_JMP => (Op::Jump { target: le32(bytes, 1)? }, 5),
        O_CALL => (Op::Call { target: le32(bytes, 1)? }, 5),
        O_JMPR => (Op::JumpReg { rs: *bytes.get(1)? }, 2),
        O_MOV => (Op::Mov { rd: *bytes.get(1)?, rs: *bytes.get(2)? }, 3),
        O_LI => (Op::LoadImm { rd: *bytes.get(1)?, imm: le32(bytes, 2)? as i32 }, 6),
        O_ALUR => (
            Op::Alu {
                op: AluOp::from_index(*bytes.get(1)?)?,
                rd: *bytes.get(2)?,
                rs: *bytes.get(3)?,
                rt: *bytes.get(4)?,
            },
            5,
        ),
        O_ALUI => (
            Op::AluI {
                op: AluOp::from_index(*bytes.get(1)?)?,
                rd: *bytes.get(2)?,
                rs: *bytes.get(3)?,
                imm: i16::try_from(le32(bytes, 4)? as i32).ok()?,
            },
            8,
        ),
        O_LOAD => {
            let (size, signed) = mem_size_from(*bytes.get(1)?)?;
            (
                Op::Load { size, signed, rd: *bytes.get(2)?, base: *bytes.get(3)?, off: le16(bytes, 4)? },
                6,
            )
        }
        O_STORE => {
            let (size, _) = mem_size_from(*bytes.get(1)?)?;
            (Op::Store { size, rs: *bytes.get(2)?, base: *bytes.get(3)?, off: le16(bytes, 4)? }, 6)
        }
        O_FLOAD => {
            let size = if *bytes.get(1)? == 0 { FltSize::F4 } else { FltSize::F8 };
            (Op::FLoad { size, fd: *bytes.get(2)?, base: *bytes.get(3)?, off: le16(bytes, 4)? }, 6)
        }
        O_FSTORE => {
            let size = if *bytes.get(1)? == 0 { FltSize::F4 } else { FltSize::F8 };
            (Op::FStore { size, fs: *bytes.get(2)?, base: *bytes.get(3)?, off: le16(bytes, 4)? }, 6)
        }
        O_FALU => (
            Op::FAlu {
                op: FaluOp::from_index(*bytes.get(1)?)?,
                fd: *bytes.get(2)?,
                fs: *bytes.get(3)?,
                ft: *bytes.get(4)?,
            },
            5,
        ),
        O_FMISC => match *bytes.get(1)? {
            0 => (Op::FNeg { fd: *bytes.get(2)?, fs: *bytes.get(3)? }, 4),
            1 => (Op::CvtIF { fd: *bytes.get(2)?, rs: *bytes.get(3)? }, 4),
            2 => (Op::CvtFI { rd: *bytes.get(2)?, fs: *bytes.get(3)? }, 4),
            3 => (Op::FMov { fd: *bytes.get(2)?, fs: *bytes.get(3)? }, 4),
            _ => return None,
        },
        O_FCMP => (
            Op::FCmp {
                cond: Cond::from_index(*bytes.get(1)?)?,
                rd: *bytes.get(2)?,
                fs: *bytes.get(3)?,
                ft: *bytes.get(4)?,
            },
            5,
        ),
        O_CMP => (Op::Cmp { rs: *bytes.get(1)?, rt: *bytes.get(2)? }, 3),
        O_TST => (Op::Tst { rs: *bytes.get(1)? }, 2),
        o if (O_BCC_BASE..O_BCC_BASE + 6).contains(&o) => {
            let disp = le16(bytes, 1)? as i32;
            (
                Op::BranchCC {
                    cond: Cond::from_index(o - O_BCC_BASE)?,
                    target: pc.wrapping_add(3).wrapping_add(disp as u32),
                },
                3,
            )
        }
        O_PUSH => (Op::Push { rs: *bytes.get(1)? }, 2),
        O_POP => (Op::Pop { rd: *bytes.get(1)? }, 2),
        O_LINK => (Op::Link { fp: *bytes.get(1)?, size: le16(bytes, 2)? as u16 }, 4),
        O_UNLINK => (Op::Unlink { fp: *bytes.get(1)? }, 2),
        O_SAVEM => (Op::SaveRegs { mask: le16(bytes, 1)? as u16 }, 3),
        O_RESTM => (Op::RestoreRegs { mask: le16(bytes, 1)? as u16 }, 3),
        _ => return None,
    };
    Some(op)
}
