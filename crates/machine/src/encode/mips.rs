//! MIPS-like instruction encoding: fixed 4-byte words, MIPS-flavored field
//! layout (6-bit opcode, 5-bit registers, 16-bit immediates). The canonical
//! no-op is the all-zero word (`sll zero,zero,0`) and the breakpoint trap is
//! `0x0000000d` (`break 0`), exactly the patterns ldb's breakpoint data
//! names for the MIPS. Works in either byte order.

use super::word::*;
use super::EncodeError;
use crate::arch::{Arch, ByteOrder};
use crate::op::{AluOp, Cond, FltSize, MemSize, Op};

fn err(reason: impl Into<String>) -> EncodeError {
    EncodeError { arch: Arch::Mips, reason: reason.into() }
}

// Special-opcode (0) funct codes.
const F_JR: u32 = 0x08;
const F_SYSCALL: u32 = 0x0c;
const F_BREAK: u32 = 0x0d;
const F_MOV: u32 = 0x10;
const F_FBASE: u32 = 0x30; // FAdd..FDiv, FNeg, CvtIF, CvtFI at 0x30..0x36
const F_FCMP: u32 = 0x38; // +cond index

fn alu_funct(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0x20,
        AluOp::Sub => 0x22,
        AluOp::Mul => 0x18,
        AluOp::Div => 0x1a,
        AluOp::Rem => 0x1b,
        AluOp::And => 0x24,
        AluOp::Or => 0x25,
        AluOp::Xor => 0x26,
        AluOp::Sll => 0x04,
        AluOp::Srl => 0x06,
        AluOp::Sra => 0x07,
        AluOp::Slt => 0x2a,
        AluOp::Sltu => 0x2b,
    }
}

fn alu_from_funct(f: u32) -> Option<AluOp> {
    Some(match f {
        0x20 => AluOp::Add,
        0x22 => AluOp::Sub,
        0x18 => AluOp::Mul,
        0x1a => AluOp::Div,
        0x1b => AluOp::Rem,
        0x24 => AluOp::And,
        0x25 => AluOp::Or,
        0x26 => AluOp::Xor,
        0x04 => AluOp::Sll,
        0x06 => AluOp::Srl,
        0x07 => AluOp::Sra,
        0x2a => AluOp::Slt,
        0x2b => AluOp::Sltu,
        _ => return None,
    })
}

// Primary opcodes.
const OP_J: u32 = 2;
const OP_JAL: u32 = 3;
const OP_ALUI_BASE: u32 = 9; // +AluOp::index
const OP_LUI: u32 = 25;
const OP_LI: u32 = 26;
const OP_LB: u32 = 32;
const OP_LH: u32 = 33;
const OP_LW: u32 = 35;
const OP_LBU: u32 = 36;
const OP_LHU: u32 = 37;
const OP_SB: u32 = 40;
const OP_SH: u32 = 41;
const OP_SW: u32 = 43;
const OP_LWC1: u32 = 49;
const OP_LDC1: u32 = 53;
const OP_SWC1: u32 = 57;
const OP_SDC1: u32 = 61;

fn branch_op(c: Cond) -> u32 {
    match c {
        Cond::Eq => 4,
        Cond::Ne => 5,
        Cond::Lt => 6,
        Cond::Ge => 7,
        Cond::Le => 28,
        Cond::Gt => 29,
    }
}

fn branch_cond(op: u32) -> Option<Cond> {
    Some(match op {
        4 => Cond::Eq,
        5 => Cond::Ne,
        6 => Cond::Lt,
        7 => Cond::Ge,
        28 => Cond::Le,
        29 => Cond::Gt,
        _ => return None,
    })
}

/// Encode one operation.
///
/// # Errors
/// Operations foreign to a RISC target (`Push`, `Link`, ...), `JumpAndLink`
/// with a link register other than `ra`, and out-of-range displacements.
pub fn encode(op: &Op, pc: u32, order: ByteOrder) -> Result<Vec<u8>, EncodeError> {
    let w = match *op {
        Op::Nop => 0,
        Op::Break(code) => ((code as u32) << 6) | F_BREAK,
        Op::Syscall(n) => ((n as u32) << 6) | F_SYSCALL,
        Op::JumpReg { rs } => r_type(0, rs, 0, 0, F_JR),
        Op::Mov { rd, rs } => r_type(0, rs, 0, rd, F_MOV),
        Op::Alu { op, rd, rs, rt } => r_type(0, rs, rt, rd, alu_funct(op)),
        Op::FAlu { op, fd, fs, ft } => r_type(0, fs, ft, fd, F_FBASE + op.index() as u32),
        Op::FNeg { fd, fs } => r_type(0, fs, 0, fd, F_FBASE + 4),
        Op::FMov { fd, fs } => r_type(0, fs, 0, fd, F_FBASE + 7),
        Op::CvtIF { fd, rs } => r_type(0, rs, 0, fd, F_FBASE + 5),
        Op::CvtFI { rd, fs } => r_type(0, fs, 0, rd, F_FBASE + 6),
        Op::FCmp { cond, rd, fs, ft } => r_type(0, fs, ft, rd, F_FCMP + cond.index() as u32),
        Op::AluI { op, rd, rs, imm } => i_type(OP_ALUI_BASE + op.index() as u32, rs, rd, imm),
        Op::LoadImm { rd, imm } => {
            let imm = i16::try_from(imm).map_err(|_| err(format!("li {imm} needs lui/ori")))?;
            i_type(OP_LI, 0, rd, imm)
        }
        Op::LoadUpper { rd, imm } => i_type(OP_LUI, 0, rd, imm as i16),
        Op::Load { size, signed, rd, base, off } => {
            let opc = match (size, signed) {
                (MemSize::B1, true) => OP_LB,
                (MemSize::B1, false) => OP_LBU,
                (MemSize::B2, true) => OP_LH,
                (MemSize::B2, false) => OP_LHU,
                (MemSize::B4, _) => OP_LW,
            };
            i_type(opc, base, rd, off)
        }
        Op::Store { size, rs, base, off } => {
            let opc = match size {
                MemSize::B1 => OP_SB,
                MemSize::B2 => OP_SH,
                MemSize::B4 => OP_SW,
            };
            i_type(opc, base, rs, off)
        }
        Op::FLoad { size, fd, base, off } => {
            let opc = match size {
                FltSize::F4 => OP_LWC1,
                FltSize::F8 => OP_LDC1,
                FltSize::F10 => return Err(err("no 80-bit floats on the MIPS")),
            };
            i_type(opc, base, fd, off)
        }
        Op::FStore { size, fs, base, off } => {
            let opc = match size {
                FltSize::F4 => OP_SWC1,
                FltSize::F8 => OP_SDC1,
                FltSize::F10 => return Err(err("no 80-bit floats on the MIPS")),
            };
            i_type(opc, base, fs, off)
        }
        Op::Branch { cond, rs, rt, target } => {
            let disp = branch_disp(pc, target).map_err(err)?;
            i_type(branch_op(cond), rs, rt, disp)
        }
        Op::Jump { target } => j_type(OP_J, target),
        Op::JumpAndLink { target, link } => {
            if link != 31 {
                return Err(err("jal links through ra (r31) only"));
            }
            j_type(OP_JAL, target)
        }
        Op::Cmp { .. } | Op::Tst { .. } | Op::BranchCC { .. } => {
            return Err(err("the MIPS compares registers in branches, not condition codes"))
        }
        Op::Push { .. }
        | Op::Pop { .. }
        | Op::Call { .. }
        | Op::Ret
        | Op::Link { .. }
        | Op::Unlink { .. }
        | Op::SaveRegs { .. }
        | Op::RestoreRegs { .. } => return Err(err("CISC operation on a RISC target")),
    };
    Ok(to_bytes(w, order))
}

/// Decode the word at `pc`. Returns `None` for illegal instructions.
pub fn decode(bytes: &[u8], pc: u32, order: ByteOrder) -> Option<(Op, u8)> {
    let w = from_bytes(bytes, order)?;
    let (opc, rs, rt, rd, _funct) = fields(w);
    let op = match opc {
        0 => {
            if w == 0 {
                Op::Nop
            } else {
                let funct = w & 0x3f;
                let code = ((w >> 6) & 0xff) as u8;
                match funct {
                    F_BREAK => Op::Break(code),
                    F_SYSCALL => Op::Syscall(code),
                    F_JR => Op::JumpReg { rs },
                    F_MOV => Op::Mov { rd, rs },
                    f if f == F_FBASE + 4 => Op::FNeg { fd: rd, fs: rs },
                    f if f == F_FBASE + 7 => Op::FMov { fd: rd, fs: rs },
                    f if f == F_FBASE + 5 => Op::CvtIF { fd: rd, rs },
                    f if f == F_FBASE + 6 => Op::CvtFI { rd, fs: rs },
                    f if (F_FBASE..F_FBASE + 4).contains(&f) => Op::FAlu {
                        op: crate::op::FaluOp::from_index((f - F_FBASE) as u8)?,
                        fd: rd,
                        fs: rs,
                        ft: rt,
                    },
                    f if (F_FCMP..F_FCMP + 6).contains(&f) => Op::FCmp {
                        cond: Cond::from_index((f - F_FCMP) as u8)?,
                        rd,
                        fs: rs,
                        ft: rt,
                    },
                    f => Op::Alu { op: alu_from_funct(f)?, rd, rs, rt },
                }
            }
        }
        OP_J => Op::Jump { target: jump_target(w) },
        OP_JAL => Op::JumpAndLink { target: jump_target(w), link: 31 },
        OP_LUI => Op::LoadUpper { rd: rt, imm: imm16(w) as u16 },
        OP_LI => Op::LoadImm { rd: rt, imm: imm16(w) as i32 },
        OP_LB => Op::Load { size: MemSize::B1, signed: true, rd: rt, base: rs, off: imm16(w) },
        OP_LBU => Op::Load { size: MemSize::B1, signed: false, rd: rt, base: rs, off: imm16(w) },
        OP_LH => Op::Load { size: MemSize::B2, signed: true, rd: rt, base: rs, off: imm16(w) },
        OP_LHU => Op::Load { size: MemSize::B2, signed: false, rd: rt, base: rs, off: imm16(w) },
        OP_LW => Op::Load { size: MemSize::B4, signed: true, rd: rt, base: rs, off: imm16(w) },
        OP_SB => Op::Store { size: MemSize::B1, rs: rt, base: rs, off: imm16(w) },
        OP_SH => Op::Store { size: MemSize::B2, rs: rt, base: rs, off: imm16(w) },
        OP_SW => Op::Store { size: MemSize::B4, rs: rt, base: rs, off: imm16(w) },
        OP_LWC1 => Op::FLoad { size: FltSize::F4, fd: rt, base: rs, off: imm16(w) },
        OP_LDC1 => Op::FLoad { size: FltSize::F8, fd: rt, base: rs, off: imm16(w) },
        OP_SWC1 => Op::FStore { size: FltSize::F4, fs: rt, base: rs, off: imm16(w) },
        OP_SDC1 => Op::FStore { size: FltSize::F8, fs: rt, base: rs, off: imm16(w) },
        o if branch_cond(o).is_some() => Op::Branch {
            cond: branch_cond(o)?,
            rs,
            rt,
            target: branch_target(pc, imm16(w)),
        },
        o if (OP_ALUI_BASE..OP_ALUI_BASE + 13).contains(&o) => Op::AluI {
            op: AluOp::from_index((o - OP_ALUI_BASE) as u8)?,
            rd: rt,
            rs,
            imm: imm16(w),
        },
        _ => return None,
    };
    Some((op, 4))
}
