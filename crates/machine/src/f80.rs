//! 80-bit extended-precision floating point (68020/x87 layout).
//!
//! The 68020 nub needs assembly to fetch and store 80-bit floating-point
//! values (paper, Sec. 4.3); in this reproduction the equivalent is the
//! conversion between the host's `f64` and the 10-byte extended format:
//! 1 sign bit, 15 exponent bits (bias 16383), and a 64-bit significand with
//! an *explicit* integer bit.

/// Encode an `f64` as 10 bytes of 80-bit extended precision, big-endian
/// (sign/exponent first), as the 68020 stores it.
pub fn encode(v: f64) -> [u8; 10] {
    let bits = v.to_bits();
    let sign = (bits >> 63) as u16;
    let exp64 = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & 0xf_ffff_ffff_ffff;

    let (exp80, mantissa): (u16, u64) = if exp64 == 0x7ff {
        // Inf / NaN.
        (0x7fff, (1u64 << 63) | (frac << 11))
    } else if exp64 == 0 {
        if frac == 0 {
            (0, 0) // ±0
        } else {
            // Subnormal double: normalize into the explicit-integer-bit form.
            let shift = frac.leading_zeros() - 11; // bits above the 52-bit field
            let mant = frac << (shift + 11);
            let e = -1022 - (shift as i32) + 16383;
            (e as u16, mant)
        }
    } else {
        // Normal: explicit integer bit 1, then the 52 fraction bits.
        let e = exp64 - 1023 + 16383;
        (e as u16, (1u64 << 63) | (frac << 11))
    };

    let se = (sign << 15) | exp80;
    let mut out = [0u8; 10];
    out[0..2].copy_from_slice(&se.to_be_bytes());
    out[2..10].copy_from_slice(&mantissa.to_be_bytes());
    out
}

/// Decode 10 bytes of 80-bit extended precision into an `f64` (rounding by
/// truncation of the extra significand bits).
pub fn decode(b: &[u8; 10]) -> f64 {
    let se = u16::from_be_bytes([b[0], b[1]]);
    let mantissa = u64::from_be_bytes([b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9]]);
    let sign = (se >> 15) as u64;
    let exp80 = (se & 0x7fff) as i32;

    if exp80 == 0 && mantissa == 0 {
        return f64::from_bits(sign << 63);
    }
    if exp80 == 0x7fff {
        let frac = (mantissa << 1) >> 12; // drop explicit integer bit
        let bits = (sign << 63) | (0x7ffu64 << 52) | frac;
        return f64::from_bits(bits);
    }
    // Normalize in case the explicit integer bit is 0 (unnormal values).
    let (exp80, mantissa) = if mantissa >> 63 == 0 {
        let lz = mantissa.leading_zeros() as i32;
        (exp80 - lz, mantissa << lz)
    } else {
        (exp80, mantissa)
    };
    let exp64 = exp80 - 16383 + 1023;
    if exp64 >= 0x7ff {
        return f64::from_bits((sign << 63) | (0x7ffu64 << 52)); // overflow -> inf
    }
    if exp64 <= 0 {
        // Would be subnormal (or zero) as a double.
        let shift = 12 - exp64;
        if shift >= 64 {
            return f64::from_bits(sign << 63);
        }
        let frac = mantissa >> shift;
        return f64::from_bits((sign << 63) | frac);
    }
    let frac = (mantissa << 1) >> 12;
    f64::from_bits((sign << 63) | ((exp64 as u64) << 52) | frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_round_trips() {
        for v in [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            2.5,
            -std::f64::consts::PI,
            1e300,
            -1e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            4503599627370495.5,
        ] {
            let enc = encode(v);
            let dec = decode(&enc);
            assert_eq!(dec.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn negative_zero_keeps_sign() {
        let d = decode(&encode(-0.0));
        assert!(d == 0.0 && d.is_sign_negative());
    }

    #[test]
    fn infinities_and_nan() {
        assert_eq!(decode(&encode(f64::INFINITY)), f64::INFINITY);
        assert_eq!(decode(&encode(f64::NEG_INFINITY)), f64::NEG_INFINITY);
        assert!(decode(&encode(f64::NAN)).is_nan());
    }

    #[test]
    fn subnormal_doubles_round_trip() {
        let tiny = f64::from_bits(0x0000_0000_0000_0001);
        assert_eq!(decode(&encode(tiny)).to_bits(), tiny.to_bits());
        let sub = f64::from_bits(0x000f_ffff_ffff_ffff);
        assert_eq!(decode(&encode(sub)).to_bits(), sub.to_bits());
    }

    #[test]
    fn explicit_integer_bit_present_for_normals() {
        let e = encode(1.0);
        // First mantissa byte must have the top (integer) bit set.
        assert_eq!(e[2] & 0x80, 0x80);
        // 1.0: exponent field = 16383.
        let se = u16::from_be_bytes([e[0], e[1]]);
        assert_eq!(se, 16383);
    }
}
