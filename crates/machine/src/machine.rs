//! A whole target machine: CPU + loaded image + host services.
//!
//! The [`Machine`] is the "hardware plus OS" substrate under the nub: it
//! runs the program, delivers host calls (our stand-ins for the C library's
//! output routines), and surfaces breakpoint traps and faults as events —
//! the "signals" the nub's handler receives.

use crate::arch::Arch;
use crate::cpu::{Cpu, Service, StepEvent};
use crate::image::Image;
use crate::memory::Fault;

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunEvent {
    /// Hit a breakpoint trap; pc addresses the trap instruction.
    Breakpoint {
        /// Address of the trap.
        pc: u32,
        /// Trap code.
        code: u8,
    },
    /// A fault (the "signal" the nub catches); pc addresses the faulting
    /// instruction.
    Fault(Fault),
    /// The program called the exit service.
    Exited(i32),
    /// The program executed the nub's pause call (before `main`); the pc
    /// addresses the next instruction.
    Paused {
        /// Program counter after the pause.
        pc: u32,
    },
    /// The step budget ran out (probably a runaway loop).
    StepLimit,
}

/// A running (or stopped) target machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Processor state and memory.
    pub cpu: Cpu,
    /// Everything the program printed through host calls.
    pub output: String,
    /// Set once the program exits.
    pub exited: Option<i32>,
}

impl Machine {
    /// Load an image: build memory, point the pc at the entry, set up the
    /// stack pointer.
    pub fn load(image: &Image) -> Machine {
        let mem = image.build_memory();
        let mut cpu = Cpu::new(image.arch, mem);
        cpu.pc = image.entry;
        let sp = image.arch.data().sp;
        cpu.set_reg(sp, image.stack_top);
        if let Some(fp) = image.arch.data().fp {
            cpu.set_reg(fp, image.stack_top);
        }
        Machine { cpu, output: String::new(), exited: None }
    }

    /// The target architecture.
    pub fn arch(&self) -> Arch {
        self.cpu.arch
    }

    /// Execute until a breakpoint, fault, exit, or `max_steps` retired
    /// instructions. Host calls are serviced internally.
    pub fn run(&mut self, max_steps: u64) -> RunEvent {
        if let Some(code) = self.exited {
            return RunEvent::Exited(code);
        }
        for _ in 0..max_steps {
            match self.cpu.step() {
                StepEvent::Continue => {}
                StepEvent::Breakpoint { pc, code } => return RunEvent::Breakpoint { pc, code },
                StepEvent::Fault(f) => return RunEvent::Fault(f),
                StepEvent::Syscall { n } => match self.service(n) {
                    Some(ev) => return ev,
                    None => continue,
                },
            }
        }
        RunEvent::StepLimit
    }

    /// Perform one host call. Returns an event for `exit`, `None` to keep
    /// running.
    fn service(&mut self, n: u8) -> Option<RunEvent> {
        let arg_reg = self.cpu.data().syscall_arg_reg;
        let arg = self.cpu.reg(arg_reg);
        match Service::from_number(n) {
            Some(Service::Exit) => {
                self.exited = Some(arg as i32);
                Some(RunEvent::Exited(arg as i32))
            }
            Some(Service::PutInt) => {
                self.output.push_str(&(arg as i32).to_string());
                None
            }
            Some(Service::PutStr) => match self.cpu.mem.read_cstr(arg) {
                Ok(s) => {
                    self.output.push_str(&s);
                    None
                }
                Err(f) => Some(RunEvent::Fault(f)),
            },
            Some(Service::PutChar) => {
                self.output.push((arg as u8) as char);
                None
            }
            Some(Service::Pause) => Some(RunEvent::Paused { pc: self.cpu.pc }),
            Some(Service::PutFlt) => {
                let v = self.cpu.fregs[0];
                // %g-style printing, close enough to printf("%g").
                if v == v.trunc() && v.abs() < 1e15 {
                    self.output.push_str(&format!("{v:.0}"));
                } else {
                    self.output.push_str(&format!("{v}"));
                }
                None
            }
            None => Some(RunEvent::Fault(Fault::IllegalInstruction {
                pc: self.cpu.pc.wrapping_sub(self.cpu.data().insn_unit as u32),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ByteOrder;
    use crate::encode;
    use crate::image::{Image, CODE_BASE};
    use crate::op::Op;

    fn tiny_image(arch: Arch, ops: &[Op]) -> Image {
        let order = arch.data().default_order;
        let mut code = Vec::new();
        let mut pc = CODE_BASE;
        for op in ops {
            let b = encode::encode(arch, op, pc, order).unwrap();
            pc += b.len() as u32;
            code.extend(b);
        }
        Image {
            arch,
            order,
            code,
            code_base: CODE_BASE,
            data: b"hi\0".to_vec(),
            data_base: 0x4000,
            bss_size: 0,
            entry: CODE_BASE,
            stack_top: 0x10000,
            symbols: vec![],
        }
    }

    #[test]
    fn hello_runs_on_every_target() {
        for arch in Arch::ALL {
            let a = arch.data().syscall_arg_reg;
            let img = tiny_image(
                arch,
                &[
                    Op::LoadImm { rd: a, imm: 0x4000 },
                    Op::Syscall(Service::PutStr.number()),
                    Op::LoadImm { rd: a, imm: 0 },
                    Op::Syscall(Service::Exit.number()),
                ],
            );
            let mut m = Machine::load(&img);
            assert_eq!(m.run(1000), RunEvent::Exited(0), "{arch}");
            assert_eq!(m.output, "hi", "{arch}");
            // A machine that exited stays exited.
            assert_eq!(m.run(1000), RunEvent::Exited(0), "{arch}");
        }
    }

    #[test]
    fn put_int_formats_signed() {
        let arch = Arch::Vax;
        let a = arch.data().syscall_arg_reg;
        let img = tiny_image(
            arch,
            &[
                Op::LoadImm { rd: a, imm: -7 },
                Op::Syscall(Service::PutInt.number()),
                Op::Syscall(Service::Exit.number()),
            ],
        );
        let mut m = Machine::load(&img);
        m.run(100);
        assert_eq!(m.output, "-7");
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let img = tiny_image(Arch::Mips, &[Op::Jump { target: CODE_BASE }]);
        let mut m = Machine::load(&img);
        assert_eq!(m.run(100), RunEvent::StepLimit);
    }

    #[test]
    fn unknown_service_faults() {
        let img = tiny_image(Arch::Vax, &[Op::Syscall(9)]);
        let mut m = Machine::load(&img);
        assert!(matches!(m.run(10), RunEvent::Fault(_)));
    }

    #[test]
    fn big_and_little_mips_print_the_same() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let arch = Arch::Mips;
            let a = arch.data().syscall_arg_reg;
            let mut img = tiny_image(
                arch,
                &[
                    Op::LoadImm { rd: a, imm: 1234 },
                    Op::Syscall(Service::PutInt.number()),
                    Op::Syscall(Service::Exit.number()),
                ],
            );
            // Re-encode for the requested order.
            let mut code = Vec::new();
            let mut pc = CODE_BASE;
            for op in [
                Op::LoadImm { rd: a, imm: 1234 },
                Op::Syscall(Service::PutInt.number()),
                Op::Syscall(Service::Exit.number()),
            ] {
                let b = encode::encode(arch, &op, pc, order).unwrap();
                pc += b.len() as u32;
                code.extend(b);
            }
            img.code = code;
            img.order = order;
            let mut m = Machine::load(&img);
            m.run(100);
            assert_eq!(m.output, "1234");
        }
    }
}
