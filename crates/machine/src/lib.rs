//! Simulated target architectures for the ldb reproduction.
//!
//! The paper debugs real MIPS R3000, Motorola 68020, SPARC, and VAX
//! machines; this crate supplies simulated stand-ins that differ in exactly
//! the dimensions the paper's retargetability story depends on:
//!
//! * **byte order** — VAX (and optionally MIPS) little-endian, the rest
//!   big-endian;
//! * **instruction granularity** — 4-byte words (MIPS, SPARC), 2-byte
//!   halfwords (68020), single bytes (VAX): "the type used to fetch and
//!   store instructions" in the breakpoint data;
//! * **no-op and breakpoint patterns** — the real machines' encodings
//!   (`0x0000000d`, `0x4e4f`, `0x91d02001`, `0x03`);
//! * **frame conventions** — frame pointers with `link`/`unlk` and save
//!   masks (68020, VAX), a frame pointer register (SPARC), or *no frame
//!   pointer at all* plus a runtime procedure table (MIPS);
//! * **pipeline hazards** — MIPS load delay slots, which the compiler's
//!   scheduler must fill (or pad with no-ops, the cost the paper measures).
//!
//! # Examples
//! ```
//! use ldb_machine::{Arch, ByteOrder};
//!
//! let d = Arch::Mips.data();
//! assert_eq!(d.break_bytes(ByteOrder::Big), vec![0, 0, 0, 0x0d]);
//! assert!(d.fp.is_none()); // the MIPS has no frame pointer
//! ```

pub mod arch;
pub mod core;
pub mod cpu;
pub mod disas;
pub mod encode;
pub mod f80;
pub mod image;
pub mod machine;
pub mod memory;
pub mod op;
pub mod snapshot;

pub use arch::{Arch, ByteOrder, ContextLayout, MachineData};
pub use cpu::{Cpu, Service, StepEvent};
pub use image::{Image, Rpt, RptEntry, SymKind, Symbol, CODE_BASE, STACK_SIZE};
pub use machine::{Machine, RunEvent};
pub use memory::{Fault, Memory, PAGE_SIZE};
pub use op::{AluOp, Cond, FaluOp, FltSize, MemSize, Op};
pub use snapshot::{Snapshot, SnapshotError};
