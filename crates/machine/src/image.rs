//! Linked executable images and the MIPS runtime procedure table.
//!
//! An [`Image`] is what `ldb-cc`'s linker produces and what the nub loads:
//! code and data segments, an entry point, and a symbol table (the input to
//! the `nm`-style loader-table generator). On the MIPS, the linker also
//! serializes a *runtime procedure table* into the data segment — the
//! structure ldb's MIPS linker interface reads from the target address
//! space to learn procedure addresses and frame sizes, because the MIPS has
//! no frame pointer (paper, Sec. 4.3).

use crate::arch::{Arch, ByteOrder};
use crate::memory::{Fault, Memory};

/// Default load address of the code segment.
pub const CODE_BASE: u32 = 0x1000;
/// Default size reserved for the stack.
pub const STACK_SIZE: u32 = 0x1_0000;

/// Symbol kinds, mirroring what `nm` distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymKind {
    /// Code (nm `T`).
    Text,
    /// Initialized data (nm `D`).
    Data,
    /// Zero-initialized data (nm `B`).
    Bss,
    /// A private (compilation-unit-local) symbol (nm lowercase).
    Private,
}

impl SymKind {
    /// The letter `nm` prints for this kind.
    pub fn nm_letter(self) -> char {
        match self {
            SymKind::Text => 'T',
            SymKind::Data => 'D',
            SymKind::Bss => 'B',
            SymKind::Private => 'd',
        }
    }
}

/// A linker symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    /// Symbol name (with the leading underscore convention applied by the
    /// compiler driver).
    pub name: String,
    /// Absolute address.
    pub addr: u32,
    /// What the symbol labels.
    pub kind: SymKind,
}

/// A linked, loadable program.
#[derive(Debug, Clone)]
pub struct Image {
    /// Target architecture.
    pub arch: Arch,
    /// Byte order the program was compiled for.
    pub order: ByteOrder,
    /// Code bytes, loaded at [`Image::code_base`].
    pub code: Vec<u8>,
    /// Load address of the code segment.
    pub code_base: u32,
    /// Initialized data bytes, loaded at [`Image::data_base`].
    pub data: Vec<u8>,
    /// Load address of the data segment.
    pub data_base: u32,
    /// Extra zeroed space after the data segment (bss).
    pub bss_size: u32,
    /// Entry point (the nub's startup code, which then calls `main`).
    pub entry: u32,
    /// Initial stack pointer (top of the address space).
    pub stack_top: u32,
    /// The symbol table, as `nm` would list it.
    pub symbols: Vec<Symbol>,
}

impl Image {
    /// Find a symbol's address by name.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.iter().find(|s| s.name == name).map(|s| s.addr)
    }

    /// Build the target memory for this image: code and data copied in,
    /// bss zeroed, the rest of the address space available up to
    /// [`Image::stack_top`].
    pub fn build_memory(&self) -> Memory {
        let mut mem = Memory::new(self.code_base, self.stack_top - self.code_base, self.order);
        mem.write_bytes(self.code_base, &self.code).expect("code fits");
        mem.write_bytes(self.data_base, &self.data).expect("data fits");
        mem
    }
}

/// One entry of the MIPS runtime procedure table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RptEntry {
    /// Procedure start address.
    pub proc_addr: u32,
    /// Frame size in bytes (the debugger adds this to sp to obtain the
    /// virtual frame pointer).
    pub frame_size: u32,
    /// Offset from the frame top at which the return address was saved
    /// (`u32::MAX` for leaf procedures that never save it).
    pub ra_save_offset: u32,
    /// Mask of callee-saved registers this procedure saves.
    pub save_mask: u32,
    /// Offset from the frame top of the first saved register.
    pub save_offset: u32,
}

/// The runtime procedure table: serialized into the MIPS data segment at
/// the `__rpt` symbol, and read back by ldb through the nub.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rpt {
    /// Entries sorted by procedure address.
    pub entries: Vec<RptEntry>,
}

impl Rpt {
    /// Serialized size in bytes: a count word plus five words per entry.
    pub fn byte_size(&self) -> u32 {
        4 + self.entries.len() as u32 * 20
    }

    /// Serialize into target memory at `addr`.
    ///
    /// # Errors
    /// Propagates memory faults (the linker sizes the area, so none occur
    /// in practice).
    pub fn write_to(&self, mem: &mut Memory, addr: u32) -> Result<(), Fault> {
        mem.write_u32(addr, self.entries.len() as u32)?;
        let mut a = addr + 4;
        for e in &self.entries {
            mem.write_u32(a, e.proc_addr)?;
            mem.write_u32(a + 4, e.frame_size)?;
            mem.write_u32(a + 8, e.ra_save_offset)?;
            mem.write_u32(a + 12, e.save_mask)?;
            mem.write_u32(a + 16, e.save_offset)?;
            a += 20;
        }
        Ok(())
    }

    /// Serialize to bytes in the given order (for the linker, which lays
    /// out the data segment before memory exists).
    pub fn to_bytes(&self, order: ByteOrder) -> Vec<u8> {
        let mut mem = Memory::new(0, self.byte_size(), order);
        self.write_to(&mut mem, 0).expect("sized exactly");
        mem.read_bytes(0, self.byte_size()).expect("sized exactly").to_vec()
    }

    /// Read a table back from target memory (this is what ldb's MIPS linker
    /// interface does, via nub fetches).
    ///
    /// # Errors
    /// Memory faults, or a count too large to be believable (corrupt
    /// table).
    pub fn read_from(
        read_u32: &mut dyn FnMut(u32) -> Result<u32, Fault>,
        addr: u32,
    ) -> Result<Rpt, Fault> {
        let n = read_u32(addr)?;
        // The count word comes from target memory, which may be corrupt:
        // a believable table has at most a few thousand procedures, and
        // rejecting early keeps a hostile count from turning one lookup
        // into hundreds of thousands of wire fetches.
        if n > 4096 {
            return Err(Fault::BadAddress { addr, write: false });
        }
        let mut entries = Vec::with_capacity(n as usize);
        let mut a = addr + 4;
        for _ in 0..n {
            entries.push(RptEntry {
                proc_addr: read_u32(a)?,
                frame_size: read_u32(a + 4)?,
                ra_save_offset: read_u32(a + 8)?,
                save_mask: read_u32(a + 12)?,
                save_offset: read_u32(a + 16)?,
            });
            a += 20;
        }
        // `lookup` assumes the entries are sorted by address; a table
        // read out of hostile memory must prove it.
        if entries.windows(2).any(|w| w[0].proc_addr > w[1].proc_addr) {
            return Err(Fault::BadAddress { addr, write: false });
        }
        Ok(Rpt { entries })
    }

    /// The entry covering `pc`: the last entry whose address is `<= pc`.
    pub fn lookup(&self, pc: u32) -> Option<&RptEntry> {
        let mut found = None;
        for e in &self.entries {
            if e.proc_addr <= pc {
                found = Some(e);
            } else {
                break;
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rpt {
        Rpt {
            entries: vec![
                RptEntry { proc_addr: 0x1000, frame_size: 32, ra_save_offset: 4, save_mask: 0, save_offset: 0 },
                RptEntry { proc_addr: 0x1100, frame_size: 64, ra_save_offset: 8, save_mask: 0x30000, save_offset: 16 },
                RptEntry { proc_addr: 0x1400, frame_size: 0, ra_save_offset: u32::MAX, save_mask: 0, save_offset: 0 },
            ],
        }
    }

    #[test]
    fn rpt_round_trips_through_target_memory() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let rpt = sample();
            let mut mem = Memory::new(0x4000, 0x1000, order);
            rpt.write_to(&mut mem, 0x4100).unwrap();
            let back =
                Rpt::read_from(&mut |a| mem.read_u32(a), 0x4100).unwrap();
            assert_eq!(back, rpt);
        }
    }

    #[test]
    fn rpt_lookup_by_pc() {
        let rpt = sample();
        assert_eq!(rpt.lookup(0x0fff), None);
        assert_eq!(rpt.lookup(0x1000).unwrap().frame_size, 32);
        assert_eq!(rpt.lookup(0x10ff).unwrap().frame_size, 32);
        assert_eq!(rpt.lookup(0x1100).unwrap().frame_size, 64);
        assert_eq!(rpt.lookup(0x9000).unwrap().frame_size, 0);
    }

    #[test]
    fn rpt_rejects_corrupt_count() {
        let mem = Memory::new(0, 16, ByteOrder::Big);
        // Count word reads as 0 here; write a huge one.
        let mut mem2 = mem.clone();
        mem2.write_u32(0, 999_999_999).unwrap();
        assert!(Rpt::read_from(&mut |a| mem2.read_u32(a), 0).is_err());
    }

    #[test]
    fn image_memory_layout() {
        let img = Image {
            arch: Arch::Vax,
            order: ByteOrder::Little,
            code: vec![1, 2, 3],
            code_base: CODE_BASE,
            data: vec![9, 9],
            data_base: 0x2000,
            bss_size: 16,
            entry: CODE_BASE,
            stack_top: 0x8000,
            symbols: vec![Symbol { name: "_main".into(), addr: 0x1004, kind: SymKind::Text }],
        };
        let mem = img.build_memory();
        assert_eq!(mem.read_u8(0x1000).unwrap(), 1);
        assert_eq!(mem.read_u8(0x2001).unwrap(), 9);
        assert_eq!(img.symbol("_main"), Some(0x1004));
        assert_eq!(img.symbol("_none"), None);
        assert_eq!(SymKind::Text.nm_letter(), 'T');
    }
}
