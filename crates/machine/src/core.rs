//! Core dumps: the complete state of a simulated machine in a flat,
//! little-endian file, written when an *undebugged* target faults (UNIX
//! `core` semantics) and reloaded for post-mortem debugging. The format
//! is hand-coded like the nub's wire protocol — no serialization crate,
//! so a core written by any build reads back in any other.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "LDBCORE1"                     8-byte magic
//! arch            u8             index into Arch::ALL
//! order           u8             0 = little, 1 = big
//! sig             u8             fault signal number
//! pad             u8
//! code            u32            fault code (address or pc)
//! context         u32            the nub's context-block address
//! pc              u32
//! cc              i32, i32       condition-code pair
//! steps           u64            retired instructions
//! regs            32 x u32
//! fregs           16 x u64       IEEE bits
//! mem base        u32
//! mem len         u32            followed by that many bytes
//! output len      u32            followed by that many bytes (UTF-8)
//! ```

use crate::cpu::Cpu;
use crate::machine::Machine;
use crate::memory::Memory;
use crate::{Arch, ByteOrder};

/// Magic prefix identifying an ldb core file (and its format version).
pub const MAGIC: &[u8; 8] = b"LDBCORE1";

/// Why a core file failed to load.
#[derive(Debug)]
pub enum CoreError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends before a field it promises.
    Truncated,
    /// A field holds a value outside its domain.
    BadField(&'static str),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadMagic => write!(f, "not an ldb core file"),
            CoreError::Truncated => write!(f, "core file is truncated"),
            CoreError::BadField(name) => write!(f, "core file has a bad {name} field"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Serialize a faulted machine (plus the signal that killed it).
#[must_use]
pub fn write_core(m: &Machine, sig: u8, code: u32, context: u32) -> Vec<u8> {
    let mem = &m.cpu.mem;
    let contents = mem.contents();
    let mut out = Vec::with_capacity(64 + 32 * 4 + 16 * 8 + contents.len() + m.output.len());
    out.extend_from_slice(MAGIC);
    let arch_idx = Arch::ALL.iter().position(|a| *a == m.cpu.arch).unwrap_or(0) as u8;
    out.push(arch_idx);
    out.push(match mem.order() {
        ByteOrder::Little => 0,
        ByteOrder::Big => 1,
    });
    out.push(sig);
    out.push(0);
    out.extend_from_slice(&code.to_le_bytes());
    out.extend_from_slice(&context.to_le_bytes());
    out.extend_from_slice(&m.cpu.pc.to_le_bytes());
    out.extend_from_slice(&m.cpu.cc.0.to_le_bytes());
    out.extend_from_slice(&m.cpu.cc.1.to_le_bytes());
    out.extend_from_slice(&m.cpu.steps.to_le_bytes());
    for r in &m.cpu.regs {
        out.extend_from_slice(&r.to_le_bytes());
    }
    for f in &m.cpu.fregs {
        out.extend_from_slice(&f.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&mem.base().to_le_bytes());
    out.extend_from_slice(&(contents.len() as u32).to_le_bytes());
    out.extend_from_slice(contents);
    out.extend_from_slice(&(m.output.len() as u32).to_le_bytes());
    out.extend_from_slice(m.output.as_bytes());
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self.at.checked_add(n).ok_or(CoreError::Truncated)?;
        if end > self.buf.len() {
            return Err(CoreError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Rebuild the machine from a core image; also returns the killing
/// signal, its code, and the nub context address.
///
/// # Errors
/// [`CoreError`] when the bytes are not a well-formed core file.
pub fn read_core(bytes: &[u8]) -> Result<(Machine, u8, u32, u32), CoreError> {
    let mut r = Reader { buf: bytes, at: 0 };
    if r.take(8)? != MAGIC {
        return Err(CoreError::BadMagic);
    }
    let arch = *Arch::ALL
        .get(r.u8()? as usize)
        .ok_or(CoreError::BadField("architecture"))?;
    let order = match r.u8()? {
        0 => ByteOrder::Little,
        1 => ByteOrder::Big,
        _ => return Err(CoreError::BadField("byte order")),
    };
    let sig = r.u8()?;
    let _pad = r.u8()?;
    let code = r.u32()?;
    let context = r.u32()?;
    let pc = r.u32()?;
    let cc = (r.u32()? as i32, r.u32()? as i32);
    let steps = r.u64()?;
    let mut regs = [0u32; 32];
    for reg in &mut regs {
        *reg = r.u32()?;
    }
    let mut fregs = [0f64; 16];
    for f in &mut fregs {
        *f = f64::from_bits(r.u64()?);
    }
    let base = r.u32()?;
    let len = r.u32()? as usize;
    let contents = r.take(len)?.to_vec();
    let olen = r.u32()? as usize;
    let output = String::from_utf8_lossy(r.take(olen)?).into_owned();
    let mem = Memory::from_contents(base, contents, order);
    let mut cpu = Cpu::new(arch, mem);
    cpu.pc = pc;
    cpu.cc = cc;
    cpu.steps = steps;
    cpu.regs = regs;
    cpu.fregs = fregs;
    Ok((Machine { cpu, output, exited: None }, sig, code, context))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_machine() -> Machine {
        // A minimal hand-built image is overkill; build memory directly.
        let mem = Memory::from_contents(0x1000, vec![0xAB; 0x100], ByteOrder::Big);
        let mut cpu = Cpu::new(Arch::Sparc, mem);
        cpu.pc = 0x1010;
        cpu.regs[3] = 0xDEAD_BEEF;
        cpu.fregs[2] = -2.5;
        cpu.cc = (-1, 7);
        cpu.steps = 42;
        Machine { cpu, output: "partial output\n".into(), exited: None }
    }

    #[test]
    fn roundtrips_every_field() {
        let m = tiny_machine();
        let bytes = write_core(&m, 11, 0x2004, 0x10f0);
        let (back, sig, code, context) = read_core(&bytes).unwrap();
        assert_eq!(sig, 11);
        assert_eq!(code, 0x2004);
        assert_eq!(context, 0x10f0);
        assert_eq!(back.cpu.arch, Arch::Sparc);
        assert_eq!(back.cpu.pc, 0x1010);
        assert_eq!(back.cpu.regs[3], 0xDEAD_BEEF);
        assert_eq!(back.cpu.fregs[2], -2.5);
        assert_eq!(back.cpu.cc, (-1, 7));
        assert_eq!(back.cpu.steps, 42);
        assert_eq!(back.cpu.mem.base(), 0x1000);
        assert_eq!(back.cpu.mem.contents(), m.cpu.mem.contents());
        assert_eq!(back.cpu.mem.order(), ByteOrder::Big);
        assert_eq!(back.output, "partial output\n");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(read_core(b"not a core"), Err(CoreError::BadMagic)));
        let m = tiny_machine();
        let bytes = write_core(&m, 11, 0, 0);
        for cut in [9, 20, 60, bytes.len() - 1] {
            assert!(
                matches!(read_core(&bytes[..cut]), Err(CoreError::Truncated)),
                "cut at {cut}"
            );
        }
        let mut bad = bytes.clone();
        bad[8] = 9; // arch index out of range
        assert!(matches!(read_core(&bad), Err(CoreError::BadField("architecture"))));
    }
}
