//! Robustness: the scanner and interpreter must never panic, whatever the
//! input — errors are the contract (`stopped` relies on it).

use ldb_postscript::{Interp, Scanner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn scanner_is_total(src in "\\PC{0,200}") {
        let mut sc = Scanner::from_str(src.as_str());
        for _ in 0..1000 {
            match sc.next_token() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn interpreter_never_panics_on_text(src in "\\PC{0,120}") {
        let mut i = Interp::new();
        let _ = i.run_stopped(&src);
    }

    #[test]
    fn interpreter_never_panics_on_tokeny_soup(
        src in "(?:[0-9]{1,3}|add|sub|mul|idiv|dup|pop|exch|roll|index|copy|def|begin|end|dict|get|put|exec|if|ifelse|for|repeat|exit|stop|stopped|cvx|cvs|array|aload|astore|forall|\\[|\\]|<<|>>|\\{|\\}|\\(x\\)|/nm| ){1,60}"
    ) {
        let mut i = Interp::new();
        let _ = i.run_stopped(&src);
    }

    #[test]
    fn scanned_numbers_roundtrip(n in any::<i32>()) {
        let mut sc = Scanner::from_str(format!("{n}"));
        let t = sc.next_token().unwrap().unwrap();
        prop_assert_eq!(t.as_int().unwrap(), n as i64);
    }

    #[test]
    fn string_escapes_roundtrip(s in "[a-z()\\\\ \n\t]{0,40}") {
        // Emit with the emitter's escaping rules, scan back.
        let mut quoted = String::from("(");
        for c in s.chars() {
            match c {
                '(' => quoted.push_str("\\("),
                ')' => quoted.push_str("\\)"),
                '\\' => quoted.push_str("\\\\"),
                '\n' => quoted.push_str("\\n"),
                '\t' => quoted.push_str("\\t"),
                other => quoted.push(other),
            }
        }
        quoted.push(')');
        let mut sc = Scanner::from_str(quoted);
        let t = sc.next_token().unwrap().unwrap();
        let got = t.as_string().unwrap();
        prop_assert_eq!(got.as_ref(), s.as_str());
    }
}

/// Deep but bounded recursion errors cleanly.
#[test]
fn deep_nesting_is_a_clean_error() {
    let mut i = Interp::new();
    let src = format!("{}1{}", "{".repeat(3000), "}".repeat(3000));
    let _ = i.run_stopped(&src);
    let deep = format!("{}1", "[ ".repeat(5000));
    let _ = i.run_stopped(&deep);
}
