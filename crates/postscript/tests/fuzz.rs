//! Robustness: the scanner and interpreter must never panic, whatever the
//! input — errors are the contract (`stopped` relies on it).

use ldb_postscript::{Budget, Interp, Scanner};
use proptest::prelude::*;

/// A real cc-emitted symbol table (the artifact the debugger actually
/// consumes), generated once and shared by the mutation targets below.
fn real_table() -> &'static str {
    use std::sync::OnceLock;
    static TABLE: OnceLock<String> = OnceLock::new();
    TABLE.get_or_init(|| {
        let src = "static int calls;\nint clamp(int v) { calls++; if (v > 9) return 9; return v; }\nint main(void) { int i; for (i = 0; i < 5; i++) printf(\"%d \", clamp(i * 3)); return 0; }\n";
        let c = ldb_cc::driver::compile(
            "fuzz.c",
            src,
            ldb_machine::Arch::Mips,
            ldb_cc::driver::CompileOpts::default(),
        )
        .expect("fuzz corpus compiles");
        let symtab =
            ldb_cc::pssym::emit(&c.unit, &c.funcs, c.arch, ldb_cc::pssym::PsMode::Deferred);
        ldb_cc::nm::loader_table_for(&c.linked.image, &symtab)
    })
}

/// The budget every mutated table runs under. Tight enough that runaway
/// mutants die in milliseconds, loose enough that many mutants still get
/// deep into the table before faulting.
const FUZZ_BUDGET: Budget =
    Budget { max_fuel: 200_000, max_alloc: 8 << 20, max_operands: 1 << 16 };

/// An interpreter with the machine-dependent names the tables execute at
/// load time stubbed in (the debugger provides the real ones from its
/// per-architecture dictionary).
fn interp_for_tables() -> Interp {
    let mut i = Interp::new();
    i.run_str("/Regset0 {/r exch} def /Frameoff {/l exch} def").unwrap();
    i
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn scanner_is_total(src in "\\PC{0,200}") {
        let mut sc = Scanner::from_str(src.as_str());
        for _ in 0..1000 {
            match sc.next_token() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn interpreter_never_panics_on_text(src in "\\PC{0,120}") {
        let mut i = Interp::new();
        let _ = i.run_stopped(&src);
    }

    #[test]
    fn interpreter_never_panics_on_tokeny_soup(
        src in "(?:[0-9]{1,3}|add|sub|mul|idiv|dup|pop|exch|roll|index|copy|def|begin|end|dict|get|put|exec|if|ifelse|for|repeat|exit|stop|stopped|cvx|cvs|array|aload|astore|forall|\\[|\\]|<<|>>|\\{|\\}|\\(x\\)|/nm| ){1,60}"
    ) {
        let mut i = Interp::new();
        let _ = i.run_stopped(&src);
    }

    #[test]
    fn scanned_numbers_roundtrip(n in any::<i32>()) {
        let mut sc = Scanner::from_str(format!("{n}"));
        let t = sc.next_token().unwrap().unwrap();
        prop_assert_eq!(t.as_int().unwrap(), n as i64);
    }

    #[test]
    fn string_escapes_roundtrip(s in "[a-z()\\\\ \n\t]{0,40}") {
        // Emit with the emitter's escaping rules, scan back.
        let mut quoted = String::from("(");
        for c in s.chars() {
            match c {
                '(' => quoted.push_str("\\("),
                ')' => quoted.push_str("\\)"),
                '\\' => quoted.push_str("\\\\"),
                '\n' => quoted.push_str("\\n"),
                '\t' => quoted.push_str("\\t"),
                other => quoted.push(other),
            }
        }
        quoted.push(')');
        let mut sc = Scanner::from_str(quoted);
        let t = sc.next_token().unwrap().unwrap();
        let got = t.as_string().unwrap();
        prop_assert_eq!(got.as_ref(), s.as_str());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Flip bits in a real compiler-emitted table and run it budgeted:
    /// whatever comes out, the interpreter must not panic, and the
    /// resources it consumes must stay within the budget (allowing one
    /// operation's bounded overshoot before the trip is detected).
    #[test]
    fn mutated_real_tables_respect_budgets(
        seed in any::<u64>(),
        flips in 1usize..24,
    ) {
        let table = real_table();
        let mut bytes = table.as_bytes().to_vec();
        let mut state = seed | 1;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..flips {
            let i = (next() % bytes.len() as u64) as usize;
            // Tables are ASCII; flipping bits 0-4 keeps them ASCII.
            bytes[i] ^= 1 << (next() % 5);
        }
        let mutant = String::from_utf8(bytes).expect("ascii stays utf-8");
        let mut i = interp_for_tables();
        let save = i.push_budget(FUZZ_BUDGET);
        let _ = i.run_stopped(&mutant);
        prop_assert!(i.fuel_used() <= FUZZ_BUDGET.max_fuel + 1);
        // Allocation may overshoot by at most one charge; a single
        // charge for these tables is far below 1 MiB.
        prop_assert!(i.alloc_used() <= FUZZ_BUDGET.max_alloc + (1 << 20));
        prop_assert!(i.depth() <= FUZZ_BUDGET.max_operands + 256);
        i.pop_budget(save);
    }

    /// Truncate the real table at an arbitrary point: the scanner and
    /// interpreter must fail cleanly (or succeed), never hang or panic.
    #[test]
    fn truncated_real_tables_fail_cleanly(cut in 0usize..4096) {
        let table = real_table();
        let cut = cut % table.len();
        let mut i = interp_for_tables();
        let save = i.push_budget(FUZZ_BUDGET);
        let _ = i.run_stopped(&table[..cut]);
        prop_assert!(i.fuel_used() <= FUZZ_BUDGET.max_fuel + 1);
        i.pop_budget(save);
    }

    /// Splice a random slice of the table into itself (lexically valid,
    /// structurally wrong) and run budgeted.
    #[test]
    fn spliced_real_tables_respect_budgets(at in any::<u64>(), from in any::<u64>(), n in 1usize..64) {
        let table = real_table();
        let words: Vec<&str> = table.split_whitespace().collect();
        let at = (at % words.len() as u64) as usize;
        let from = (from % words.len() as u64) as usize;
        let end = (from + n).min(words.len());
        let mut spliced: Vec<&str> = Vec::with_capacity(words.len() + n);
        spliced.extend_from_slice(&words[..at]);
        spliced.extend_from_slice(&words[from..end]);
        spliced.extend_from_slice(&words[at..]);
        let mutant = spliced.join(" ");
        let mut i = interp_for_tables();
        let save = i.push_budget(FUZZ_BUDGET);
        let _ = i.run_stopped(&mutant);
        prop_assert!(i.fuel_used() <= FUZZ_BUDGET.max_fuel + 1);
        prop_assert!(i.alloc_used() <= FUZZ_BUDGET.max_alloc + (1 << 20));
        i.pop_budget(save);
    }
}

/// The unmutated table loads within the fuzz budget — so any mutant that
/// trips a budget did so because of the mutation, not the corpus.
#[test]
fn pristine_real_table_loads_within_budget() {
    let mut i = interp_for_tables();
    let save = i.push_budget(FUZZ_BUDGET);
    i.run_str(real_table()).expect("pristine table loads");
    assert!(i.fuel_used() < FUZZ_BUDGET.max_fuel / 2, "fuel: {}", i.fuel_used());
    i.pop_budget(save);
    let table = i.pop().unwrap();
    table.as_dict().unwrap();
}

/// Deep but bounded recursion errors cleanly.
#[test]
fn deep_nesting_is_a_clean_error() {
    let mut i = Interp::new();
    let src = format!("{}1{}", "{".repeat(3000), "}".repeat(3000));
    let _ = i.run_stopped(&src);
    let deep = format!("{}1", "[ ".repeat(5000));
    let _ = i.run_stopped(&deep);
}
