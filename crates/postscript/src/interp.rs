//! The interpreter: operand stack, dictionary stack, and the execution loop.
//!
//! The dialect follows the paper (Sec. 5): names are bound dynamically, and
//! the dictionary stack is distinct from the call stack and explicitly
//! controlled by the program. When ldb changes target architectures it
//! pushes a per-architecture dictionary that rebinds the machine-dependent
//! names (`Regset0`, `&wordsize`, ...) — see [`Interp::push_dict`].

use std::cell::RefCell;
use std::io::Write as _;
use std::rc::Rc;

use ldb_trace::{Layer, Severity, Trace};

use crate::budget::{Budget, BudgetSave, BudgetStats};
use crate::dict::{Dict, Key};
use crate::error::{undefined, ErrorKind, PsError, PsResult, RuntimeError};
use crate::file::PsFile;
use crate::object::{Object, Operator, Value};
use crate::ops;
use crate::pretty::Pretty;
use crate::scanner::Scanner;

/// Where `print`, `=`, `==`, and the prettyprinter write.
#[derive(Clone)]
pub enum Out {
    /// Write through to the process's stdout.
    Stdout,
    /// Accumulate in a shared buffer (tests, and ldb's client interface).
    Shared(Rc<RefCell<String>>),
}

impl Out {
    /// Append a string to the sink.
    pub fn write_str(&self, s: &str) {
        match self {
            Out::Stdout => {
                let mut o = std::io::stdout().lock();
                let _ = o.write_all(s.as_bytes());
            }
            Out::Shared(buf) => buf.borrow_mut().push_str(s),
        }
    }
}

impl std::fmt::Debug for Out {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Out::Stdout => write!(f, "Out::Stdout"),
            Out::Shared(_) => write!(f, "Out::Shared"),
        }
    }
}

/// The embedded PostScript interpreter.
///
/// # Examples
/// ```
/// use ldb_postscript::Interp;
/// let mut interp = Interp::new();
/// interp.run_str("2 3 add").unwrap();
/// assert_eq!(interp.pop().unwrap().as_int().unwrap(), 5);
/// ```
pub struct Interp {
    stack: Vec<Object>,
    dicts: Vec<crate::object::DictRef>,
    systemdict: crate::object::DictRef,
    out: Out,
    /// The prettyprinter driven by the `Put`/`Break`/`Begin`/`End` operators.
    pub pretty: Pretty,
    depth: usize,
    max_depth: usize,
    /// The most recent runtime error caught by `stopped`.
    pub last_error: Option<RuntimeError>,
    /// The resource budget in force (UNLIMITED unless installed).
    budget: Budget,
    /// Fuel charged against the current budget.
    fuel_used: u64,
    /// Bytes charged against the current budget.
    alloc_used: u64,
    /// Lifetime sandbox statistics (`info ps`).
    stats: BudgetStats,
    /// Flight-recorder handle ([`Layer::Ps`] records: budgeted-region
    /// consumption, budget trips; the loader adds module loads and
    /// quarantines through [`Interp::trace`]).
    trace: Trace,
    /// Cross-thread cancellation token (a session watchdog sets it from
    /// outside the owning thread). Polled every [`CANCEL_POLL_MASK`]+1
    /// execution steps; a set token aborts the run with `timeout`.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

/// How often [`Interp::charge_step`] polls the cancellation token: every
/// `CANCEL_POLL_MASK + 1` steps (one atomic load amortized over 1024
/// dispatches keeps the hot path unchanged for the common case).
const CANCEL_POLL_MASK: u64 = 0x3ff;

impl std::fmt::Debug for Interp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Interp {{ stack: {}, dicts: {} }}", self.stack.len(), self.dicts.len())
    }
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// A fresh interpreter with the full operator set, writing to stdout.
    pub fn new() -> Self {
        let systemdict = Rc::new(RefCell::new(Dict::new(256)));
        let userdict = Rc::new(RefCell::new(Dict::new(64)));
        let out = Out::Stdout;
        let mut interp = Interp {
            stack: Vec::with_capacity(64),
            dicts: vec![Rc::clone(&systemdict), Rc::clone(&userdict)],
            systemdict,
            out: out.clone(),
            pretty: Pretty::new(out),
            depth: 0,
            max_depth: 400,
            last_error: None,
            budget: Budget::UNLIMITED,
            fuel_used: 0,
            alloc_used: 0,
            stats: BudgetStats::default(),
            trace: Trace::off(),
            cancel: None,
        };
        ops::register_all(&mut interp);
        interp
    }

    /// A fresh interpreter whose output accumulates in the returned buffer.
    pub fn new_capturing() -> (Self, Rc<RefCell<String>>) {
        let mut interp = Interp::new();
        let buf = Rc::new(RefCell::new(String::new()));
        interp.set_output(Out::Shared(Rc::clone(&buf)));
        (interp, buf)
    }

    /// Redirect output (print operators and prettyprinter).
    pub fn set_output(&mut self, out: Out) {
        self.out = out.clone();
        self.pretty.set_output(out);
    }

    /// The current output sink.
    pub fn output(&self) -> Out {
        self.out.clone()
    }

    /// Change the execution nesting limit. The default (400) is
    /// conservative so deep PostScript recursion fails cleanly with a
    /// `limitcheck` instead of exhausting a small host thread stack.
    pub fn set_max_depth(&mut self, depth: usize) {
        self.max_depth = depth;
    }

    /// Attach (or detach, with [`Trace::off`]) the flight recorder.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Install (or remove, with `None`) a cross-thread cancellation token.
    /// When another thread sets the token, the interpreter aborts the
    /// current run with a `timeout` error at the next poll (within 1024
    /// execution steps) — how a session watchdog kills a wedged command
    /// that is spinning inside untrusted PostScript.
    pub fn set_cancel(&mut self, cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.cancel = cancel;
    }

    /// The flight-recorder handle (cheap to clone; hosts like the loader
    /// emit their own [`Layer::Ps`] records through it).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    // ----- resource budgets (the artifact sandbox) -----

    /// Install `budget` as the ambient budget and reset the used counters.
    /// Trusted code should leave the default ([`Budget::UNLIMITED`]);
    /// untrusted executions install a per-call budget via
    /// [`Interp::push_budget`] or [`Interp::with_budget`].
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
        self.fuel_used = 0;
        self.alloc_used = 0;
    }

    /// The budget currently in force.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Begin a budgeted region: installs `budget` with fresh counters and
    /// returns the outer state for [`Interp::pop_budget`].
    pub fn push_budget(&mut self, budget: Budget) -> BudgetSave {
        let save = BudgetSave {
            budget: self.budget,
            fuel_used: self.fuel_used,
            alloc_used: self.alloc_used,
        };
        self.budget = budget;
        self.fuel_used = 0;
        self.alloc_used = 0;
        save
    }

    /// End a budgeted region: restores the outer budget, and charges the
    /// inner region's consumption against it so nesting cannot launder
    /// resource use past an outer limit.
    pub fn pop_budget(&mut self, save: BudgetSave) {
        let (inner_fuel, inner_alloc) = (self.fuel_used, self.alloc_used);
        if self.trace.is_on() && self.budget.is_limited() {
            self.trace.emit(
                Layer::Ps,
                Severity::Debug,
                "budget",
                &[("fuel", inner_fuel.into()), ("alloc", inner_alloc.into())],
            );
        }
        self.budget = save.budget;
        self.fuel_used = save.fuel_used.saturating_add(inner_fuel);
        self.alloc_used = save.alloc_used.saturating_add(inner_alloc);
    }

    /// Run `f` under `budget`, then restore the outer budget (charging the
    /// inner consumption against it).
    ///
    /// # Errors
    /// Whatever `f` returns, including budget errors.
    pub fn with_budget<T>(
        &mut self,
        budget: Budget,
        f: impl FnOnce(&mut Self) -> PsResult<T>,
    ) -> PsResult<T> {
        let save = self.push_budget(budget);
        let r = f(self);
        self.pop_budget(save);
        r
    }

    /// Charge `bytes` of allocation against the budget. Public so host
    /// operators that build large objects (e.g. the debugger's string
    /// converters) participate in accounting.
    ///
    /// # Errors
    /// `vmerror` when the charge exceeds the budget.
    pub fn charge_alloc(&mut self, bytes: u64) -> PsResult<()> {
        self.alloc_used = self.alloc_used.saturating_add(bytes);
        self.stats.alloc_charged_total = self.stats.alloc_charged_total.saturating_add(bytes);
        if self.alloc_used > self.stats.alloc_peak {
            self.stats.alloc_peak = self.alloc_used;
        }
        if self.alloc_used > self.budget.max_alloc {
            self.stats.budget_trips += 1;
            self.trace.emit(
                Layer::Ps,
                Severity::Warn,
                "budget_trip",
                &[("what", "alloc".into()), ("limit", self.budget.max_alloc.into())],
            );
            return Err(PsError::runtime(
                ErrorKind::VmError,
                format!("allocation budget exhausted ({} bytes)", self.budget.max_alloc),
            ));
        }
        Ok(())
    }

    /// Fuel consumed under the current budget.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Allocation charged under the current budget.
    pub fn alloc_used(&self) -> u64 {
        self.alloc_used
    }

    /// Lifetime sandbox statistics.
    pub fn budget_stats(&self) -> BudgetStats {
        BudgetStats { fuel_used: self.fuel_used, alloc_used: self.alloc_used, ..self.stats }
    }

    /// Charge one execution step and enforce the fuel and operand-stack
    /// limits. One increment and two compares on the dispatch hot path.
    /// Crate-visible so the compiled-module executor charges identically.
    #[inline]
    pub(crate) fn charge_step(&mut self) -> PsResult<()> {
        self.fuel_used += 1;
        self.stats.fuel_spent_total += 1;
        if self.fuel_used & CANCEL_POLL_MASK == 0 {
            if let Some(c) = &self.cancel {
                if c.load(std::sync::atomic::Ordering::Relaxed) {
                    self.trace.emit(
                        Layer::Ps,
                        Severity::Warn,
                        "cancelled",
                        &[("fuel_used", self.fuel_used.into())],
                    );
                    return Err(PsError::runtime(
                        ErrorKind::Timeout,
                        "execution cancelled by session watchdog",
                    ));
                }
            }
        }
        if self.fuel_used > self.budget.max_fuel {
            self.stats.budget_trips += 1;
            self.trace.emit(
                Layer::Ps,
                Severity::Warn,
                "budget_trip",
                &[("what", "fuel".into()), ("limit", self.budget.max_fuel.into())],
            );
            return Err(PsError::runtime(
                ErrorKind::Timeout,
                format!("execution fuel exhausted ({} steps)", self.budget.max_fuel),
            ));
        }
        if self.stack.len() > self.budget.max_operands {
            self.stats.budget_trips += 1;
            self.trace.emit(
                Layer::Ps,
                Severity::Warn,
                "budget_trip",
                &[("what", "operands".into()), ("limit", self.budget.max_operands.into())],
            );
            return Err(PsError::runtime(
                ErrorKind::LimitCheck,
                format!("operand stack exceeds budget ({} entries)", self.budget.max_operands),
            ));
        }
        Ok(())
    }

    // ----- operand stack -----

    /// Push an object.
    pub fn push(&mut self, o: impl Into<Object>) {
        self.stack.push(o.into());
    }

    /// Pop an object.
    ///
    /// # Errors
    /// Stackunderflow when the stack is empty.
    pub fn pop(&mut self) -> PsResult<Object> {
        self.stack
            .pop()
            .ok_or_else(|| PsError::runtime(ErrorKind::StackUnderflow, "operand stack empty"))
    }

    /// Pop `n` objects; the result is in stack order (deepest first).
    ///
    /// # Errors
    /// Stackunderflow when fewer than `n` operands are available.
    pub fn popn(&mut self, n: usize) -> PsResult<Vec<Object>> {
        if self.stack.len() < n {
            return Err(PsError::runtime(
                ErrorKind::StackUnderflow,
                format!("need {n} operands, have {}", self.stack.len()),
            ));
        }
        Ok(self.stack.split_off(self.stack.len() - n))
    }

    /// Reference the object `i` positions below the top (0 = top).
    ///
    /// # Errors
    /// Stackunderflow when the stack is too shallow.
    pub fn peek(&self, i: usize) -> PsResult<&Object> {
        let len = self.stack.len();
        if i >= len {
            return Err(PsError::runtime(ErrorKind::StackUnderflow, "peek past stack bottom"));
        }
        Ok(&self.stack[len - 1 - i])
    }

    /// Number of operands on the stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Direct access to the operand stack (bottom first).
    pub fn stack(&self) -> &[Object] {
        &self.stack
    }

    /// Remove all operands.
    pub fn clear_stack(&mut self) {
        self.stack.clear();
    }

    /// Truncate the stack to `n` entries (used by mark-based operators).
    pub(crate) fn truncate_stack(&mut self, n: usize) {
        self.stack.truncate(n);
    }

    /// Find the topmost mark; returns the number of objects above it.
    ///
    /// # Errors
    /// `unmatchedmark` (reported as rangecheck) when no mark is present.
    pub fn count_to_mark(&self) -> PsResult<usize> {
        for (i, o) in self.stack.iter().rev().enumerate() {
            if matches!(o.val, Value::Mark) {
                return Ok(i);
            }
        }
        Err(PsError::runtime(ErrorKind::RangeCheck, "no mark on stack"))
    }

    // ----- dictionary stack -----

    /// The system dictionary (operators are registered here).
    pub fn systemdict(&self) -> crate::object::DictRef {
        Rc::clone(&self.systemdict)
    }

    /// Push a dictionary (the `begin` operator; also how ldb installs a
    /// per-architecture rebinding dictionary).
    pub fn push_dict(&mut self, d: crate::object::DictRef) {
        self.dicts.push(d);
    }

    /// Pop the top dictionary (`end`).
    ///
    /// # Errors
    /// Dictstackunderflow when only systemdict and userdict remain.
    pub fn pop_dict(&mut self) -> PsResult<crate::object::DictRef> {
        if self.dicts.len() <= 2 {
            return Err(PsError::runtime(
                ErrorKind::DictStackUnderflow,
                "end: dictionary stack at minimum",
            ));
        }
        self.dicts.pop().ok_or_else(|| {
            PsError::runtime(ErrorKind::DictStackUnderflow, "end: dictionary stack empty")
        })
    }

    /// The current (topmost) dictionary (systemdict if the dictionary
    /// stack were ever empty, which `pop_dict` prevents).
    pub fn currentdict(&self) -> crate::object::DictRef {
        match self.dicts.last() {
            Some(d) => Rc::clone(d),
            None => Rc::clone(&self.systemdict),
        }
    }

    /// Number of dictionaries on the dictionary stack.
    pub fn dict_stack_len(&self) -> usize {
        self.dicts.len()
    }

    /// Snapshot the dictionary stack, so a sandboxed run of untrusted
    /// code can be undone: stray `begin`s (or `end`s popping the host's
    /// dictionaries) are reverted by [`Interp::restore_dict_stack`].
    pub fn dict_stack_snapshot(&self) -> Vec<crate::object::DictRef> {
        self.dicts.clone()
    }

    /// Restore a dictionary stack taken by [`Interp::dict_stack_snapshot`].
    /// Empty snapshots are ignored (the stack always keeps systemdict).
    pub fn restore_dict_stack(&mut self, dicts: Vec<crate::object::DictRef>) {
        if !dicts.is_empty() {
            self.dicts = dicts;
        }
    }

    /// Look up a name through the dictionary stack, topmost first.
    ///
    /// # Errors
    /// Undefined when no dictionary binds the name.
    pub fn lookup(&self, name: &str) -> PsResult<Object> {
        let key = Key::name(name);
        for d in self.dicts.iter().rev() {
            if let Some(v) = d.borrow().get(&key) {
                return Ok(v.clone());
            }
        }
        Err(undefined(name.to_string()))
    }

    /// Find the dictionary that binds `name`, topmost first (`where`).
    pub fn find_dict(&self, name: &str) -> Option<crate::object::DictRef> {
        let key = Key::name(name);
        for d in self.dicts.iter().rev() {
            if d.borrow().contains(&key) {
                return Some(Rc::clone(d));
            }
        }
        None
    }

    /// Define `name` in the current dictionary (`def` from Rust).
    pub fn def(&mut self, name: &str, value: Object) {
        self.currentdict().borrow_mut().put_name(name, value);
    }

    /// Register an operator in systemdict.
    pub fn register(&mut self, name: &str, f: impl Fn(&mut Interp) -> PsResult<()> + 'static) {
        let op = Operator { name: Rc::from(name), f: Rc::new(f) };
        self.systemdict
            .borrow_mut()
            .put_name(name, Object::ex(Value::Operator(op)));
    }

    /// Register an operator in an arbitrary dictionary (per-architecture
    /// dictionaries use this).
    pub fn register_in(
        dict: &crate::object::DictRef,
        name: &str,
        f: impl Fn(&mut Interp) -> PsResult<()> + 'static,
    ) {
        let op = Operator { name: Rc::from(name), f: Rc::new(f) };
        dict.borrow_mut().put_name(name, Object::ex(Value::Operator(op)));
    }

    // ----- execution -----

    pub(crate) fn enter(&mut self) -> PsResult<()> {
        self.charge_step()?;
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(PsError::runtime(ErrorKind::LimitCheck, "execution nesting too deep"));
        }
        Ok(())
    }

    pub(crate) fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Fully execute an object: executable arrays run, executable names are
    /// loaded and executed, executable strings are scanned and run,
    /// executable files run token by token. Literal objects are pushed.
    ///
    /// # Errors
    /// Propagates runtime errors and `exit`/`stop`/`quit` control transfers.
    pub fn exec_object(&mut self, o: &Object) -> PsResult<()> {
        if !o.exec {
            self.stack.push(o.clone());
            return Ok(());
        }
        match &o.val {
            Value::Name(n) => {
                let found = self.lookup(n)?;
                self.enter()?;
                let r = self.exec_object(&found);
                self.leave();
                r
            }
            Value::Operator(op) => {
                let f = Rc::clone(&op.f);
                self.enter()?;
                let r = f(self);
                self.leave();
                r
            }
            Value::Array(a) => {
                self.enter()?;
                let r = self.run_proc_elements(&Rc::clone(a));
                self.leave();
                r
            }
            Value::String(s) => {
                self.enter()?;
                let r = self.run_scanner(&mut Scanner::from_str(Rc::clone(s)));
                self.leave();
                r
            }
            Value::File(f) => {
                self.enter()?;
                let r = self.run_file(&Rc::clone(f));
                self.leave();
                r
            }
            // Executable versions of other types behave like literals.
            _ => {
                self.stack.push(o.clone());
                Ok(())
            }
        }
    }

    /// Execute a procedure body: nested procedures are *pushed*, everything
    /// else executes. This is the rule that makes `{...}` inside a procedure
    /// a deferred body rather than immediate execution.
    fn run_proc_elements(&mut self, a: &crate::object::Arr) -> PsResult<()> {
        let len = a.borrow().len();
        for i in 0..len {
            let el = a.borrow()[i].clone();
            if el.is_proc() {
                self.stack.push(el);
            } else {
                self.exec_object(&el)?;
            }
        }
        Ok(())
    }

    /// Call an object the way `if`/`ifelse`/`for`/`exec` do: procedures run,
    /// other executables execute, literals push.
    pub fn call(&mut self, o: &Object) -> PsResult<()> {
        // `is_proc` implies the object is an array; fall through to
        // `exec_object` rather than asserting, so a host-constructed
        // oddity cannot panic the interpreter.
        match (o.is_proc(), o.as_array()) {
            (true, Ok(a)) => {
                self.enter()?;
                let r = self.run_proc_elements(&a);
                self.leave();
                r
            }
            _ => self.exec_object(o),
        }
    }

    /// Run every token from a scanner. Procedure tokens are pushed; all
    /// other tokens execute immediately.
    pub fn run_scanner(&mut self, sc: &mut Scanner) -> PsResult<()> {
        while let Some(tok) = sc.next_token()? {
            self.run_token(&tok)?;
        }
        Ok(())
    }

    /// Execute one scanned token. Charges one step of fuel per token (so
    /// token streams terminate under a budget even when every token is a
    /// literal push) plus the approximate size of freshly scanned string
    /// and procedure tokens.
    pub fn run_token(&mut self, tok: &Object) -> PsResult<()> {
        self.charge_step()?;
        let cost = match &tok.val {
            Value::String(s) => s.len() as u64 + 16,
            Value::Array(a) => 32 * a.borrow().len() as u64 + 16,
            _ => 0,
        };
        if cost > 0 {
            self.charge_alloc(cost)?;
        }
        if tok.is_proc() {
            self.stack.push(tok.clone());
            Ok(())
        } else {
            self.exec_object(tok)
        }
    }

    /// Run tokens from a file object until end of stream (or an error /
    /// `stop` propagates out). The file's position persists, so a later
    /// execution resumes after the point where `stop` fired — exactly the
    /// behaviour ldb needs on the expression-server pipe.
    pub fn run_file(&mut self, f: &Rc<RefCell<PsFile>>) -> PsResult<()> {
        loop {
            let tok = f.borrow_mut().next_token()?;
            match tok {
                None => return Ok(()),
                Some(t) => self.run_token(&t)?,
            }
        }
    }

    /// Scan and run a program given as text.
    ///
    /// # Errors
    /// Syntax and runtime errors; `stop` outside `stopped` surfaces as
    /// [`PsError::Stop`].
    pub fn run_str(&mut self, program: &str) -> PsResult<()> {
        self.run_scanner(&mut Scanner::from_str(program))
    }

    /// Run a program, catching errors the way `stopped` does. Returns
    /// `Ok(true)` if the program stopped or errored, `Ok(false)` on success.
    ///
    /// # Errors
    /// Only `quit` propagates.
    pub fn run_stopped(&mut self, program: &str) -> PsResult<bool> {
        match self.run_str(program) {
            Ok(()) => Ok(false),
            Err(PsError::Quit) => Err(PsError::Quit),
            Err(PsError::Runtime(e)) => {
                self.last_error = Some(e);
                Ok(true)
            }
            Err(_) => Ok(true),
        }
    }

    /// Write to the interpreter's output sink.
    pub fn write_output(&mut self, s: &str) {
        self.out.write_str(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_stack() {
        let mut i = Interp::new();
        i.run_str("1 2 add 3 mul").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 9);
        assert_eq!(i.depth(), 0);
    }

    #[test]
    fn def_and_lookup() {
        let mut i = Interp::new();
        i.run_str("/x 42 def x x add").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 84);
    }

    #[test]
    fn procedures_defer() {
        let mut i = Interp::new();
        i.run_str("/double {2 mul} def 21 double").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 42);
    }

    #[test]
    fn nested_procedures_push() {
        let mut i = Interp::new();
        i.run_str("/f {true {1} {2} ifelse} def f").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 1);
    }

    #[test]
    fn executable_string_scans_on_demand() {
        let mut i = Interp::new();
        i.run_str("(3 4 add) cvx exec").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 7);
    }

    #[test]
    fn undefined_name_errors() {
        let mut i = Interp::new();
        let e = i.run_str("no_such_name").unwrap_err();
        assert!(matches!(e, PsError::Runtime(r) if r.kind == ErrorKind::Undefined));
    }

    #[test]
    fn run_stopped_catches() {
        let mut i = Interp::new();
        assert!(!i.run_stopped("1 2 add").unwrap());
        assert!(i.run_stopped("no_such_name").unwrap());
        assert_eq!(i.last_error.as_ref().unwrap().kind, ErrorKind::Undefined);
        assert!(i.run_stopped("stop").unwrap());
    }

    #[test]
    fn recursion_limit_guards() {
        let mut i = Interp::new();
        let e = i.run_str("/f {f} def f").unwrap_err();
        assert!(matches!(e, PsError::Runtime(r) if r.kind == ErrorKind::LimitCheck));
    }

    #[test]
    fn recursive_postscript_fib() {
        let mut i = Interp::new();
        i.run_str("/fib {dup 2 lt {pop 1} {dup 1 sub fib exch 2 sub fib add} ifelse} def 10 fib")
            .unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 89);
    }

    #[test]
    fn dict_stack_rebinding_like_architectures() {
        // Per-architecture dictionaries rebind machine-dependent names.
        let mut i = Interp::new();
        i.run_str("/Regset0 {(generic)} def").unwrap();
        i.run_str("/mips 4 dict def mips /Regset0 {(mips r)} put").unwrap();
        i.run_str("mips begin Regset0 end Regset0").unwrap();
        assert_eq!(i.pop().unwrap().as_string().unwrap().as_ref(), "generic");
        assert_eq!(i.pop().unwrap().as_string().unwrap().as_ref(), "mips r");
    }

    #[test]
    fn fuel_cuts_off_an_infinite_loop() {
        let mut i = Interp::new();
        let b = Budget { max_fuel: 10_000, ..Budget::UNLIMITED };
        let e = i.with_budget(b, |i| i.run_str("{} loop")).unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::Timeout), "{e}");
        // The budget error is sticky: further execution re-raises until
        // the budget is reset, so `stopped` cannot mask exhaustion.
        let e = i.with_budget(b, |i| i.run_str("{{} loop} stopped pop 1 2 add")).unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::Timeout), "{e}");
        // A fresh ambient budget clears the balance.
        i.set_budget(Budget::UNLIMITED);
        i.run_str("1 2 add").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 3);
    }

    #[test]
    fn allocation_bomb_trips_vmerror() {
        let mut i = Interp::new();
        let b = Budget { max_alloc: 1 << 20, ..Budget::UNLIMITED };
        // Doubling the stack with `copy` inside `loop` grows without bound.
        let e = i.with_budget(b, |i| i.run_str("1 { count copy } loop")).unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::VmError), "{e}");
        i.set_budget(Budget::UNLIMITED);
        i.clear_stack();
    }

    #[test]
    fn operand_stack_budget_bounds_literal_floods() {
        let mut i = Interp::new();
        let b = Budget { max_operands: 100, ..Budget::UNLIMITED };
        let e = i.with_budget(b, |i| i.run_str("{1} loop")).unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::LimitCheck), "{e}");
        assert!(i.depth() <= 200, "stack overshoot bounded: {}", i.depth());
        i.set_budget(Budget::UNLIMITED);
        i.clear_stack();
    }

    #[test]
    fn nested_budgets_charge_the_outer_region() {
        let mut i = Interp::new();
        let outer = Budget { max_fuel: 1_000, ..Budget::UNLIMITED };
        let save = i.push_budget(outer);
        let inner = Budget { max_fuel: 900, ..Budget::UNLIMITED };
        i.with_budget(inner, |i| i.run_str("1 1 200 {pop} for")).unwrap();
        // The inner run's fuel shows up on the outer meter.
        assert!(i.fuel_used() >= 300, "inner fuel charged outward: {}", i.fuel_used());
        let e = i.run_str("1 1 600 {pop} for").unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::Timeout), "{e}");
        i.pop_budget(save);
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut i = Interp::new();
        i.run_str("1 2 add pop").unwrap();
        let s1 = i.budget_stats();
        assert!(s1.fuel_spent_total > 0);
        i.run_str("(abc) cvs pop").unwrap();
        let s2 = i.budget_stats();
        assert!(s2.fuel_spent_total > s1.fuel_spent_total);
        assert!(s2.alloc_charged_total > s1.alloc_charged_total);
        assert_eq!(s2.budget_trips, 0);
    }

    #[test]
    fn huge_composite_requests_are_limitchecks_even_unbudgeted() {
        let mut i = Interp::new();
        let e = i.run_str("16#40000000 array").unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::LimitCheck), "{e}");
        let e = i.run_str("16#40000000 dict").unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::LimitCheck), "{e}");
    }

    #[test]
    fn file_execution_resumes_after_stop() {
        use std::cell::RefCell;
        let f = Rc::new(RefCell::new(PsFile::from_str("pipe", "1 stop 2 3")));
        let mut i = Interp::new();
        // First execution runs until `stop`.
        let e = i.run_file(&f).unwrap_err();
        assert_eq!(e, PsError::Stop);
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 1);
        // Second execution resumes where we left off.
        i.run_file(&f).unwrap();
        assert_eq!(i.depth(), 2);
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 3);
    }
}
