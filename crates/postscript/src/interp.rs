//! The interpreter: operand stack, dictionary stack, and the execution loop.
//!
//! The dialect follows the paper (Sec. 5): names are bound dynamically, and
//! the dictionary stack is distinct from the call stack and explicitly
//! controlled by the program. When ldb changes target architectures it
//! pushes a per-architecture dictionary that rebinds the machine-dependent
//! names (`Regset0`, `&wordsize`, ...) — see [`Interp::push_dict`].

use std::cell::RefCell;
use std::io::Write as _;
use std::rc::Rc;

use crate::dict::{Dict, Key};
use crate::error::{undefined, ErrorKind, PsError, PsResult, RuntimeError};
use crate::file::PsFile;
use crate::object::{Object, Operator, Value};
use crate::ops;
use crate::pretty::Pretty;
use crate::scanner::Scanner;

/// Where `print`, `=`, `==`, and the prettyprinter write.
#[derive(Clone)]
pub enum Out {
    /// Write through to the process's stdout.
    Stdout,
    /// Accumulate in a shared buffer (tests, and ldb's client interface).
    Shared(Rc<RefCell<String>>),
}

impl Out {
    /// Append a string to the sink.
    pub fn write_str(&self, s: &str) {
        match self {
            Out::Stdout => {
                let mut o = std::io::stdout().lock();
                let _ = o.write_all(s.as_bytes());
            }
            Out::Shared(buf) => buf.borrow_mut().push_str(s),
        }
    }
}

impl std::fmt::Debug for Out {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Out::Stdout => write!(f, "Out::Stdout"),
            Out::Shared(_) => write!(f, "Out::Shared"),
        }
    }
}

/// The embedded PostScript interpreter.
///
/// # Examples
/// ```
/// use ldb_postscript::Interp;
/// let mut interp = Interp::new();
/// interp.run_str("2 3 add").unwrap();
/// assert_eq!(interp.pop().unwrap().as_int().unwrap(), 5);
/// ```
pub struct Interp {
    stack: Vec<Object>,
    dicts: Vec<crate::object::DictRef>,
    systemdict: crate::object::DictRef,
    out: Out,
    /// The prettyprinter driven by the `Put`/`Break`/`Begin`/`End` operators.
    pub pretty: Pretty,
    depth: usize,
    max_depth: usize,
    /// The most recent runtime error caught by `stopped`.
    pub last_error: Option<RuntimeError>,
}

impl std::fmt::Debug for Interp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Interp {{ stack: {}, dicts: {} }}", self.stack.len(), self.dicts.len())
    }
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// A fresh interpreter with the full operator set, writing to stdout.
    pub fn new() -> Self {
        let systemdict = Rc::new(RefCell::new(Dict::new(256)));
        let userdict = Rc::new(RefCell::new(Dict::new(64)));
        let out = Out::Stdout;
        let mut interp = Interp {
            stack: Vec::with_capacity(64),
            dicts: vec![Rc::clone(&systemdict), Rc::clone(&userdict)],
            systemdict,
            out: out.clone(),
            pretty: Pretty::new(out),
            depth: 0,
            max_depth: 400,
            last_error: None,
        };
        ops::register_all(&mut interp);
        interp
    }

    /// A fresh interpreter whose output accumulates in the returned buffer.
    pub fn new_capturing() -> (Self, Rc<RefCell<String>>) {
        let mut interp = Interp::new();
        let buf = Rc::new(RefCell::new(String::new()));
        interp.set_output(Out::Shared(Rc::clone(&buf)));
        (interp, buf)
    }

    /// Redirect output (print operators and prettyprinter).
    pub fn set_output(&mut self, out: Out) {
        self.out = out.clone();
        self.pretty.set_output(out);
    }

    /// The current output sink.
    pub fn output(&self) -> Out {
        self.out.clone()
    }

    /// Change the execution nesting limit. The default (400) is
    /// conservative so deep PostScript recursion fails cleanly with a
    /// `limitcheck` instead of exhausting a small host thread stack.
    pub fn set_max_depth(&mut self, depth: usize) {
        self.max_depth = depth;
    }

    // ----- operand stack -----

    /// Push an object.
    pub fn push(&mut self, o: impl Into<Object>) {
        self.stack.push(o.into());
    }

    /// Pop an object.
    ///
    /// # Errors
    /// Stackunderflow when the stack is empty.
    pub fn pop(&mut self) -> PsResult<Object> {
        self.stack
            .pop()
            .ok_or_else(|| PsError::runtime(ErrorKind::StackUnderflow, "operand stack empty"))
    }

    /// Pop `n` objects; the result is in stack order (deepest first).
    ///
    /// # Errors
    /// Stackunderflow when fewer than `n` operands are available.
    pub fn popn(&mut self, n: usize) -> PsResult<Vec<Object>> {
        if self.stack.len() < n {
            return Err(PsError::runtime(
                ErrorKind::StackUnderflow,
                format!("need {n} operands, have {}", self.stack.len()),
            ));
        }
        Ok(self.stack.split_off(self.stack.len() - n))
    }

    /// Reference the object `i` positions below the top (0 = top).
    ///
    /// # Errors
    /// Stackunderflow when the stack is too shallow.
    pub fn peek(&self, i: usize) -> PsResult<&Object> {
        let len = self.stack.len();
        if i >= len {
            return Err(PsError::runtime(ErrorKind::StackUnderflow, "peek past stack bottom"));
        }
        Ok(&self.stack[len - 1 - i])
    }

    /// Number of operands on the stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Direct access to the operand stack (bottom first).
    pub fn stack(&self) -> &[Object] {
        &self.stack
    }

    /// Remove all operands.
    pub fn clear_stack(&mut self) {
        self.stack.clear();
    }

    /// Truncate the stack to `n` entries (used by mark-based operators).
    pub(crate) fn truncate_stack(&mut self, n: usize) {
        self.stack.truncate(n);
    }

    /// Find the topmost mark; returns the number of objects above it.
    ///
    /// # Errors
    /// `unmatchedmark` (reported as rangecheck) when no mark is present.
    pub fn count_to_mark(&self) -> PsResult<usize> {
        for (i, o) in self.stack.iter().rev().enumerate() {
            if matches!(o.val, Value::Mark) {
                return Ok(i);
            }
        }
        Err(PsError::runtime(ErrorKind::RangeCheck, "no mark on stack"))
    }

    // ----- dictionary stack -----

    /// The system dictionary (operators are registered here).
    pub fn systemdict(&self) -> crate::object::DictRef {
        Rc::clone(&self.systemdict)
    }

    /// Push a dictionary (the `begin` operator; also how ldb installs a
    /// per-architecture rebinding dictionary).
    pub fn push_dict(&mut self, d: crate::object::DictRef) {
        self.dicts.push(d);
    }

    /// Pop the top dictionary (`end`).
    ///
    /// # Errors
    /// Dictstackunderflow when only systemdict and userdict remain.
    pub fn pop_dict(&mut self) -> PsResult<crate::object::DictRef> {
        if self.dicts.len() <= 2 {
            return Err(PsError::runtime(
                ErrorKind::DictStackUnderflow,
                "end: dictionary stack at minimum",
            ));
        }
        Ok(self.dicts.pop().expect("len checked"))
    }

    /// The current (topmost) dictionary.
    pub fn currentdict(&self) -> crate::object::DictRef {
        Rc::clone(self.dicts.last().expect("dict stack never empty"))
    }

    /// Number of dictionaries on the dictionary stack.
    pub fn dict_stack_len(&self) -> usize {
        self.dicts.len()
    }

    /// Look up a name through the dictionary stack, topmost first.
    ///
    /// # Errors
    /// Undefined when no dictionary binds the name.
    pub fn lookup(&self, name: &str) -> PsResult<Object> {
        let key = Key::name(name);
        for d in self.dicts.iter().rev() {
            if let Some(v) = d.borrow().get(&key) {
                return Ok(v.clone());
            }
        }
        Err(undefined(name.to_string()))
    }

    /// Find the dictionary that binds `name`, topmost first (`where`).
    pub fn find_dict(&self, name: &str) -> Option<crate::object::DictRef> {
        let key = Key::name(name);
        for d in self.dicts.iter().rev() {
            if d.borrow().contains(&key) {
                return Some(Rc::clone(d));
            }
        }
        None
    }

    /// Define `name` in the current dictionary (`def` from Rust).
    pub fn def(&mut self, name: &str, value: Object) {
        self.currentdict().borrow_mut().put_name(name, value);
    }

    /// Register an operator in systemdict.
    pub fn register(&mut self, name: &str, f: impl Fn(&mut Interp) -> PsResult<()> + 'static) {
        let op = Operator { name: Rc::from(name), f: Rc::new(f) };
        self.systemdict
            .borrow_mut()
            .put_name(name, Object::ex(Value::Operator(op)));
    }

    /// Register an operator in an arbitrary dictionary (per-architecture
    /// dictionaries use this).
    pub fn register_in(
        dict: &crate::object::DictRef,
        name: &str,
        f: impl Fn(&mut Interp) -> PsResult<()> + 'static,
    ) {
        let op = Operator { name: Rc::from(name), f: Rc::new(f) };
        dict.borrow_mut().put_name(name, Object::ex(Value::Operator(op)));
    }

    // ----- execution -----

    fn enter(&mut self) -> PsResult<()> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(PsError::runtime(ErrorKind::LimitCheck, "execution nesting too deep"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Fully execute an object: executable arrays run, executable names are
    /// loaded and executed, executable strings are scanned and run,
    /// executable files run token by token. Literal objects are pushed.
    ///
    /// # Errors
    /// Propagates runtime errors and `exit`/`stop`/`quit` control transfers.
    pub fn exec_object(&mut self, o: &Object) -> PsResult<()> {
        if !o.exec {
            self.stack.push(o.clone());
            return Ok(());
        }
        match &o.val {
            Value::Name(n) => {
                let found = self.lookup(n)?;
                self.enter()?;
                let r = self.exec_object(&found);
                self.leave();
                r
            }
            Value::Operator(op) => {
                let f = Rc::clone(&op.f);
                self.enter()?;
                let r = f(self);
                self.leave();
                r
            }
            Value::Array(a) => {
                self.enter()?;
                let r = self.run_proc_elements(&Rc::clone(a));
                self.leave();
                r
            }
            Value::String(s) => {
                self.enter()?;
                let r = self.run_scanner(&mut Scanner::from_str(Rc::clone(s)));
                self.leave();
                r
            }
            Value::File(f) => {
                self.enter()?;
                let r = self.run_file(&Rc::clone(f));
                self.leave();
                r
            }
            // Executable versions of other types behave like literals.
            _ => {
                self.stack.push(o.clone());
                Ok(())
            }
        }
    }

    /// Execute a procedure body: nested procedures are *pushed*, everything
    /// else executes. This is the rule that makes `{...}` inside a procedure
    /// a deferred body rather than immediate execution.
    fn run_proc_elements(&mut self, a: &crate::object::Arr) -> PsResult<()> {
        let len = a.borrow().len();
        for i in 0..len {
            let el = a.borrow()[i].clone();
            if el.is_proc() {
                self.stack.push(el);
            } else {
                self.exec_object(&el)?;
            }
        }
        Ok(())
    }

    /// Call an object the way `if`/`ifelse`/`for`/`exec` do: procedures run,
    /// other executables execute, literals push.
    pub fn call(&mut self, o: &Object) -> PsResult<()> {
        if o.is_proc() {
            let a = o.as_array().expect("is_proc checked");
            self.enter()?;
            let r = self.run_proc_elements(&a);
            self.leave();
            r
        } else {
            self.exec_object(o)
        }
    }

    /// Run every token from a scanner. Procedure tokens are pushed; all
    /// other tokens execute immediately.
    pub fn run_scanner(&mut self, sc: &mut Scanner) -> PsResult<()> {
        while let Some(tok) = sc.next_token()? {
            self.run_token(&tok)?;
        }
        Ok(())
    }

    /// Execute one scanned token.
    pub fn run_token(&mut self, tok: &Object) -> PsResult<()> {
        if tok.is_proc() {
            self.stack.push(tok.clone());
            Ok(())
        } else {
            self.exec_object(tok)
        }
    }

    /// Run tokens from a file object until end of stream (or an error /
    /// `stop` propagates out). The file's position persists, so a later
    /// execution resumes after the point where `stop` fired — exactly the
    /// behaviour ldb needs on the expression-server pipe.
    pub fn run_file(&mut self, f: &Rc<RefCell<PsFile>>) -> PsResult<()> {
        loop {
            let tok = f.borrow_mut().next_token()?;
            match tok {
                None => return Ok(()),
                Some(t) => self.run_token(&t)?,
            }
        }
    }

    /// Scan and run a program given as text.
    ///
    /// # Errors
    /// Syntax and runtime errors; `stop` outside `stopped` surfaces as
    /// [`PsError::Stop`].
    pub fn run_str(&mut self, program: &str) -> PsResult<()> {
        self.run_scanner(&mut Scanner::from_str(program))
    }

    /// Run a program, catching errors the way `stopped` does. Returns
    /// `Ok(true)` if the program stopped or errored, `Ok(false)` on success.
    ///
    /// # Errors
    /// Only `quit` propagates.
    pub fn run_stopped(&mut self, program: &str) -> PsResult<bool> {
        match self.run_str(program) {
            Ok(()) => Ok(false),
            Err(PsError::Quit) => Err(PsError::Quit),
            Err(PsError::Runtime(e)) => {
                self.last_error = Some(e);
                Ok(true)
            }
            Err(_) => Ok(true),
        }
    }

    /// Write to the interpreter's output sink.
    pub fn write_output(&mut self, s: &str) {
        self.out.write_str(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_stack() {
        let mut i = Interp::new();
        i.run_str("1 2 add 3 mul").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 9);
        assert_eq!(i.depth(), 0);
    }

    #[test]
    fn def_and_lookup() {
        let mut i = Interp::new();
        i.run_str("/x 42 def x x add").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 84);
    }

    #[test]
    fn procedures_defer() {
        let mut i = Interp::new();
        i.run_str("/double {2 mul} def 21 double").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 42);
    }

    #[test]
    fn nested_procedures_push() {
        let mut i = Interp::new();
        i.run_str("/f {true {1} {2} ifelse} def f").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 1);
    }

    #[test]
    fn executable_string_scans_on_demand() {
        let mut i = Interp::new();
        i.run_str("(3 4 add) cvx exec").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 7);
    }

    #[test]
    fn undefined_name_errors() {
        let mut i = Interp::new();
        let e = i.run_str("no_such_name").unwrap_err();
        assert!(matches!(e, PsError::Runtime(r) if r.kind == ErrorKind::Undefined));
    }

    #[test]
    fn run_stopped_catches() {
        let mut i = Interp::new();
        assert!(!i.run_stopped("1 2 add").unwrap());
        assert!(i.run_stopped("no_such_name").unwrap());
        assert_eq!(i.last_error.as_ref().unwrap().kind, ErrorKind::Undefined);
        assert!(i.run_stopped("stop").unwrap());
    }

    #[test]
    fn recursion_limit_guards() {
        let mut i = Interp::new();
        let e = i.run_str("/f {f} def f").unwrap_err();
        assert!(matches!(e, PsError::Runtime(r) if r.kind == ErrorKind::LimitCheck));
    }

    #[test]
    fn recursive_postscript_fib() {
        let mut i = Interp::new();
        i.run_str("/fib {dup 2 lt {pop 1} {dup 1 sub fib exch 2 sub fib add} ifelse} def 10 fib")
            .unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 89);
    }

    #[test]
    fn dict_stack_rebinding_like_architectures() {
        // Per-architecture dictionaries rebind machine-dependent names.
        let mut i = Interp::new();
        i.run_str("/Regset0 {(generic)} def").unwrap();
        i.run_str("/mips 4 dict def mips /Regset0 {(mips r)} put").unwrap();
        i.run_str("mips begin Regset0 end Regset0").unwrap();
        assert_eq!(i.pop().unwrap().as_string().unwrap().as_ref(), "generic");
        assert_eq!(i.pop().unwrap().as_string().unwrap().as_ref(), "mips r");
    }

    #[test]
    fn file_execution_resumes_after_stop() {
        use std::cell::RefCell;
        let f = Rc::new(RefCell::new(PsFile::from_str("pipe", "1 stop 2 3")));
        let mut i = Interp::new();
        // First execution runs until `stop`.
        let e = i.run_file(&f).unwrap_err();
        assert_eq!(e, PsError::Stop);
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 1);
        // Second execution resumes where we left off.
        i.run_file(&f).unwrap();
        assert_eq!(i.depth(), 2);
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 3);
    }
}
