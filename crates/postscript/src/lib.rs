//! An embedded PostScript dialect for debugging, after Ramsey & Hanson,
//! *A Retargetable Debugger* (PLDI 1992), Sec. 2 and 5.
//!
//! The dialect omits fonts and imaging and adds types and operators for
//! debugging. Deviations from Adobe PostScript follow the paper:
//!
//! * strings are immutable,
//! * no `save`/`restore` (host garbage collection),
//! * no substrings or subarrays,
//! * interpreter errors surface as host-language errors ([`PsError`]),
//!   caught by `stopped`,
//! * files are plain token streams (the expression-server pipe is one).
//!
//! New types: **locations** ([`Location`]) and **host objects**
//! ([`HostObject`]) through which the debugger hands abstract memories to
//! PostScript code. New operators include location constructors
//! (`Absolute`, `Immediate`, `Shifted`) and a prettyprinter interface
//! (`Put`, `Break`, `Begin`, `End`) used by the value-printing procedures
//! in symbol tables.
//!
//! # Examples
//! ```
//! use ldb_postscript::Interp;
//!
//! let mut ps = Interp::new();
//! ps.run_str("/S10 << /name (i) /sourcey 6 >> def S10 /sourcey get").unwrap();
//! assert_eq!(ps.pop().unwrap().as_int().unwrap(), 6);
//! ```

pub mod budget;
pub mod compile;
pub mod dict;
pub mod error;
pub mod file;
pub mod interp;
pub mod object;
mod ops;
pub mod pretty;
pub mod scanner;

pub use budget::{Budget, BudgetSave, BudgetStats};
pub use compile::{compile_module, CacheStats, CompiledModule, ModuleCache};
pub use dict::{Dict, Key};
pub use error::{ErrorKind, PsError, PsResult, RuntimeError};
pub use file::PsFile;
pub use interp::{Interp, Out};
pub use object::{downcast_host, Arr, DictRef, HostObject, Location, Object, Operator, Value};
pub use scanner::{CharSource, ReadSource, Scanner, StrSource};
