//! Compiled symbol-table modules: scan once, run many times.
//!
//! Hanson's follow-up to the paper (*A Machine-Independent
//! Debugger—Revisited*, MSR-TR-99-4) abandoned re-reading symbol-table
//! PostScript on every connect because scanning dominated load time. This
//! module keeps the PostScript *source* format but compiles a scanned
//! module into a flat, interned bytecode ([`CompiledModule`]) that can be
//! executed repeatedly — and, because it is immutable and `Send + Sync`,
//! shared read-only between debugger sessions through a [`ModuleCache`].
//!
//! The executor ([`CompiledModule::run`]) charges exactly the fuel and
//! allocation the scanner-driven path ([`Interp::run_token`]) charges, so
//! the artifact sandbox's budgets and trace records are unchanged; it
//! additionally memoizes dictionary-stack lookups for names the module
//! provably cannot rebind (see [`compile_module`] for the soundness
//! analysis). Lookup caches live for one run only, so machine-dependent
//! names (`Regset0`, `&wordsize`, …) still rebind per architecture.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{ErrorKind, PsError, PsResult};
use crate::interp::Interp;
use crate::object::{Object, Value};
use crate::scanner::Scanner;

/// One compiled instruction. Strings, names, and procedure bodies are
/// indices into the owning [`CompiledModule`]'s interned tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push a literal integer.
    Int(i64),
    /// Push a literal real.
    Real(f64),
    /// Push the interned string (charged like a freshly scanned string).
    Str(u32),
    /// Push the interned name as a literal (`/name`).
    LitName(u32),
    /// Look up and execute the interned name.
    ExecName(u32),
    /// Build and push procedure body `procs[i]` (charged like a freshly
    /// scanned procedure token).
    Proc(u32),
}

#[derive(Debug)]
struct NameEntry {
    text: Arc<str>,
    /// May a per-run lookup cache serve this name? False for any name the
    /// module could rebind mid-run (see [`compile_module`]).
    cacheable: bool,
}

/// A module's symbol-table PostScript, compiled: the top-level token
/// stream as instructions plus interned string/name/procedure tables.
///
/// The value is immutable after compilation and holds only `Arc`-interned
/// data, so it is `Send + Sync`: a daemon's tenants attached to the same
/// binary share one compile through a [`ModuleCache`]. The original
/// source is retained so a module that later faults under its budget can
/// be quarantined and retried through the existing source-based reload
/// path.
#[derive(Debug)]
pub struct CompiledModule {
    strings: Vec<Arc<str>>,
    names: Vec<NameEntry>,
    procs: Vec<Vec<Instr>>,
    top: Vec<Instr>,
    /// Byte offset just past each top-level instruction's source token
    /// (error provenance: "module X near byte N", matching the scanner).
    top_pos: Vec<u32>,
    source: Arc<str>,
    source_hash: u64,
    architecture: Option<String>,
}

impl CompiledModule {
    /// The original PostScript source (kept for quarantine/reload).
    pub fn source(&self) -> &Arc<str> {
        &self.source
    }

    /// FNV-1a hash of the source — the content half of the cache key.
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// The architecture the module's header names (`/architecture (…)`),
    /// extracted statically so a lazy loader can type-check modules at
    /// connect without executing them.
    pub fn architecture(&self) -> Option<&str> {
        self.architecture.as_deref()
    }

    /// Number of top-level instructions.
    pub fn top_len(&self) -> usize {
        self.top.len()
    }

    /// Execute the compiled module.
    ///
    /// # Errors
    /// Exactly the errors the scanner-driven execution of the same source
    /// raises, including budget trips (fuel/alloc charges match
    /// [`Interp::run_token`]).
    pub fn run(&self, interp: &mut Interp) -> PsResult<()> {
        self.run_inner(interp).map_err(|(e, _)| e)
    }

    /// As [`CompiledModule::run`], wrapping errors with module-name and
    /// byte-offset provenance like the loader's scanner path does.
    ///
    /// # Errors
    /// As [`CompiledModule::run`].
    pub fn run_with_provenance(&self, interp: &mut Interp, name: &str) -> PsResult<()> {
        self.run_inner(interp)
            .map_err(|(e, pos)| e.with_context(name, Some(pos as u64)))
    }

    fn run_inner(&self, interp: &mut Interp) -> Result<(), (PsError, u32)> {
        let mut thaw = Thaw::new(self);
        for (i, instr) in self.top.iter().enumerate() {
            if let Err(e) = self.step(interp, *instr, &mut thaw) {
                return Err((e, self.top_pos[i]));
            }
        }
        Ok(())
    }

    /// Execute one top-level instruction with scanner-path charging:
    /// one step of fuel per token, plus `len+16` bytes for a string and
    /// `32·len+16` bytes for a procedure token (nested bodies uncharged,
    /// exactly as a scanned procedure token is accounted).
    fn step(&self, interp: &mut Interp, instr: Instr, thaw: &mut Thaw) -> PsResult<()> {
        interp.charge_step()?;
        match instr {
            Instr::Int(v) => {
                interp.push(Object::int(v));
                Ok(())
            }
            Instr::Real(v) => {
                interp.push(Object::real(v));
                Ok(())
            }
            Instr::Str(i) => {
                let s = thaw.string(self, i);
                interp.charge_alloc(s.len() as u64 + 16)?;
                interp.push(Object::lit(Value::String(s)));
                Ok(())
            }
            Instr::LitName(i) => {
                interp.push(Object::lit(Value::Name(thaw.name(self, i))));
                Ok(())
            }
            Instr::ExecName(i) => {
                let found = thaw.lookup(self, i, interp)?;
                interp.enter()?;
                let r = interp.exec_object(&found);
                interp.leave();
                r
            }
            Instr::Proc(i) => {
                let body_len = self.procs[i as usize].len() as u64;
                interp.charge_alloc(32 * body_len + 16)?;
                let proc = thaw.thaw_proc(self, i);
                interp.push(proc);
                Ok(())
            }
        }
    }
}

/// Per-run thaw state: `Rc` copies of interned strings/names (made at
/// most once per index per run) and the lookup memo for cacheable names.
/// Dropped at the end of the run, so nothing `Rc`-based outlives the
/// session that thawed it and every run re-resolves machine-dependent
/// names against the current dictionary stack.
struct Thaw {
    strings: Vec<Option<Rc<str>>>,
    names: Vec<Option<Rc<str>>>,
    looked: Vec<Option<Object>>,
}

impl Thaw {
    fn new(m: &CompiledModule) -> Thaw {
        Thaw {
            strings: vec![None; m.strings.len()],
            names: vec![None; m.names.len()],
            looked: vec![None; m.names.len()],
        }
    }

    fn string(&mut self, m: &CompiledModule, i: u32) -> Rc<str> {
        let slot = &mut self.strings[i as usize];
        match slot {
            Some(s) => Rc::clone(s),
            None => {
                let s: Rc<str> = Rc::from(&*m.strings[i as usize]);
                *slot = Some(Rc::clone(&s));
                s
            }
        }
    }

    fn name(&mut self, m: &CompiledModule, i: u32) -> Rc<str> {
        let slot = &mut self.names[i as usize];
        match slot {
            Some(s) => Rc::clone(s),
            None => {
                let s: Rc<str> = Rc::from(&*m.names[i as usize].text);
                *slot = Some(Rc::clone(&s));
                s
            }
        }
    }

    fn lookup(&mut self, m: &CompiledModule, i: u32, interp: &Interp) -> PsResult<Object> {
        let entry = &m.names[i as usize];
        if entry.cacheable {
            if let Some(o) = &self.looked[i as usize] {
                return Ok(o.clone());
            }
            let found = interp.lookup(&entry.text)?;
            self.looked[i as usize] = Some(found.clone());
            return Ok(found);
        }
        interp.lookup(&entry.text)
    }

    fn thaw_proc(&mut self, m: &CompiledModule, i: u32) -> Object {
        let body = &m.procs[i as usize];
        let mut out = Vec::with_capacity(body.len());
        for instr in body {
            out.push(match *instr {
                Instr::Int(v) => Object::int(v),
                Instr::Real(v) => Object::real(v),
                Instr::Str(j) => Object::lit(Value::String(self.string(m, j))),
                Instr::LitName(j) => Object::lit(Value::Name(self.name(m, j))),
                Instr::ExecName(j) => Object::ex(Value::Name(self.name(m, j))),
                Instr::Proc(j) => self.thaw_proc(m, j),
            });
        }
        Object::proc(out)
    }
}

impl Interp {
    /// Execute a compiled module (see [`CompiledModule::run`]).
    ///
    /// # Errors
    /// As [`CompiledModule::run`].
    pub fn run_compiled(&mut self, m: &CompiledModule) -> PsResult<()> {
        m.run(self)
    }
}

/// Exec names whose presence anywhere in a module disables lookup
/// caching for the whole module: `begin`/`end` change the dictionary
/// stack mid-run, and `cvn` can mint names from computed strings.
const DYNAMIC_MARKERS: [&str; 3] = ["begin", "end", "cvn"];

struct Compiler {
    strings: Vec<Arc<str>>,
    string_index: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
    name_index: HashMap<Arc<str>, u32>,
    procs: Vec<Vec<Instr>>,
    /// Texts the module uses as literal names (`/x`): potential `def`
    /// targets, so lookups of the matching exec names are never cached.
    lit_names: HashSet<Arc<str>>,
    /// Words appearing inside string literals: deferred code (`(…) cvx`)
    /// and `cvn` arguments hide behind these, so they are treated like
    /// literal names.
    string_words: HashSet<String>,
    /// Set when a [`DYNAMIC_MARKERS`] name appears: no caching at all.
    dynamic: bool,
}

impl Compiler {
    fn new() -> Compiler {
        Compiler {
            strings: Vec::new(),
            string_index: HashMap::new(),
            names: Vec::new(),
            name_index: HashMap::new(),
            procs: Vec::new(),
            lit_names: HashSet::new(),
            string_words: HashSet::new(),
            dynamic: false,
        }
    }

    fn intern_string(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.string_index.get(s) {
            return i;
        }
        for word in s.split(|c: char| !is_word_char(c)) {
            let word = word.trim_start_matches('/');
            if !word.is_empty() {
                self.string_words.insert(word.to_string());
            }
        }
        let a: Arc<str> = Arc::from(s);
        let i = self.strings.len() as u32;
        self.strings.push(Arc::clone(&a));
        self.string_index.insert(a, i);
        i
    }

    fn intern_name(&mut self, n: &str) -> u32 {
        if let Some(&i) = self.name_index.get(n) {
            return i;
        }
        let a: Arc<str> = Arc::from(n);
        let i = self.names.len() as u32;
        self.names.push(Arc::clone(&a));
        self.name_index.insert(a, i);
        i
    }

    fn compile_token(&mut self, tok: &Object) -> PsResult<Instr> {
        match (&tok.val, tok.exec) {
            (Value::Int(v), _) => Ok(Instr::Int(*v)),
            (Value::Real(v), _) => Ok(Instr::Real(*v)),
            (Value::String(s), false) => Ok(Instr::Str(self.intern_string(s))),
            (Value::Name(n), false) => {
                let i = self.intern_name(n);
                self.lit_names.insert(Arc::clone(&self.names[i as usize]));
                Ok(Instr::LitName(i))
            }
            (Value::Name(n), true) => {
                if DYNAMIC_MARKERS.contains(&n.as_ref()) {
                    self.dynamic = true;
                }
                Ok(Instr::ExecName(self.intern_name(n)))
            }
            (Value::Array(a), true) => {
                let src = a.borrow();
                let mut body = Vec::with_capacity(src.len());
                for el in src.iter() {
                    body.push(self.compile_token(el)?);
                }
                let i = self.procs.len() as u32;
                self.procs.push(body);
                Ok(Instr::Proc(i))
            }
            _ => Err(PsError::runtime(
                ErrorKind::SyntaxError,
                format!("cannot compile token {:?}", tok.val),
            )),
        }
    }
}

/// Characters that can appear in a PostScript name; everything else
/// splits words when mining string literals for hidden name references.
fn is_word_char(c: char) -> bool {
    !c.is_whitespace() && !matches!(c, '(' | ')' | '<' | '>' | '[' | ']' | '{' | '}' | '%')
}

/// FNV-1a, 64-bit: the content half of the module-cache key.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compile one module's symbol-table PostScript: a single scanner pass
/// (bounded by the scanner's own token/nesting caps — no interpretation,
/// no fuel), producing an immutable, shareable [`CompiledModule`].
///
/// Lookup-cache soundness: a per-run memo may serve an executable name's
/// lookup only if the module cannot rebind that name mid-run. A module
/// can only rebind names it mentions as literal names (`/x … def`),
/// names hidden in string literals (deferred `(…) cvx` bodies, `cvn`
/// arguments), or — if it uses `begin`/`end` — anything, by shifting the
/// dictionary stack. So caching is disabled per-name for the first two
/// sets and module-wide for the third. Every other name (operators,
/// frame procedures like `Regset0`) resolves identically throughout one
/// run; across runs the memo is rebuilt, so per-architecture rebinding
/// still works.
///
/// # Errors
/// Scanner errors (syntax, token caps) from the single pass.
pub fn compile_module(source: &str) -> PsResult<CompiledModule> {
    let mut c = Compiler::new();
    let mut sc = Scanner::from_str(source);
    let mut top = Vec::new();
    let mut top_pos = Vec::new();
    while let Some(tok) = sc.next_token()? {
        let instr = c.compile_token(&tok)?;
        top.push(instr);
        top_pos.push(sc.position().min(u32::MAX as u64) as u32);
    }
    // The unit header, statically: `/architecture (name)` adjacency in
    // the top-level stream.
    let mut architecture = None;
    for w in top.windows(2) {
        if let [Instr::LitName(n), Instr::Str(s)] = w {
            if &*c.names[*n as usize] == "architecture" {
                architecture = Some(c.strings[*s as usize].to_string());
                break;
            }
        }
    }
    let names = c
        .names
        .iter()
        .map(|text| NameEntry {
            cacheable: !c.dynamic
                && !c.lit_names.contains(text)
                && !c.string_words.contains(&**text),
            text: Arc::clone(text),
        })
        .collect();
    Ok(CompiledModule {
        strings: c.strings,
        names,
        procs: c.procs,
        top,
        top_pos,
        source: Arc::from(source),
        source_hash: fnv1a(source.as_bytes()),
        architecture,
    })
}

/// Aggregate [`ModuleCache`] counters, for daemon-level health reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (a compile somebody else paid for).
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Distinct compiled modules currently interned.
    pub entries: usize,
}

/// A shared, read-only cache of compiled modules, keyed by source
/// content (FNV-1a hash plus length, so a hash collision cannot alias
/// two modules of different sizes). Entries are immutable after their
/// budget-checked compile — that is the trust boundary that lets N
/// sessions share one entry: nothing a session does at run time can
/// write through the `Arc`.
#[derive(Debug, Default)]
pub struct ModuleCache {
    entries: Mutex<HashMap<(u64, usize), Arc<CompiledModule>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModuleCache {
    /// An empty cache.
    pub fn new() -> ModuleCache {
        ModuleCache::default()
    }

    /// The compiled form of `source`, compiling at most once per distinct
    /// content. Returns the module and whether it was served from cache.
    ///
    /// # Errors
    /// Compile (scanner) errors; failed compiles are not cached, so a
    /// transiently corrupt artifact does not poison the key.
    pub fn get_or_compile(&self, source: &str) -> PsResult<(Arc<CompiledModule>, bool)> {
        let key = (fnv1a(source.as_bytes()), source.len());
        if let Some(m) = lock(&self.entries).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(m), true));
        }
        // Compile outside the lock: a slow compile must not serialize
        // unrelated tenants. Two racing compiles of the same source are
        // both correct; the first insert wins.
        let compiled = Arc::new(compile_module(source)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut g = lock(&self.entries);
        let entry = g.entry(key).or_insert_with(|| Arc::clone(&compiled));
        Ok((Arc::clone(entry), false))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: lock(&self.entries).len(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    fn send_sync<T: Send + Sync>() {}

    #[test]
    fn compiled_module_is_shareable() {
        send_sync::<CompiledModule>();
        send_sync::<ModuleCache>();
    }

    /// Compiled execution must be observably identical to scanning:
    /// same stack, same output, same fuel and allocation charges.
    fn assert_equivalent(src: &str) {
        let (mut eager, eager_out) = Interp::new_capturing();
        let save = eager.push_budget(Budget::LOAD);
        let mut sc = Scanner::from_str(src);
        while let Some(t) = sc.next_token().unwrap() {
            eager.run_token(&t).unwrap();
        }
        let eager_fuel = eager.fuel_used();
        let eager_alloc = eager.alloc_used();
        eager.pop_budget(save);

        let m = compile_module(src).unwrap();
        let (mut fast, fast_out) = Interp::new_capturing();
        let save = fast.push_budget(Budget::LOAD);
        fast.run_compiled(&m).unwrap();
        assert_eq!(fast.fuel_used(), eager_fuel, "fuel diverged on {src:?}");
        assert_eq!(fast.alloc_used(), eager_alloc, "alloc diverged on {src:?}");
        fast.pop_budget(save);

        assert_eq!(&*eager_out.borrow(), &*fast_out.borrow(), "output diverged on {src:?}");
        assert_eq!(eager.depth(), fast.depth(), "stack depth diverged on {src:?}");
        for i in 0..eager.depth() {
            let (a, b) = (eager.peek(i).unwrap(), fast.peek(i).unwrap());
            assert_eq!(a.to_syntactic(), b.to_syntactic(), "stack diverged on {src:?}");
        }
    }

    #[test]
    fn equivalence_on_core_programs() {
        assert_equivalent("1 2 add 3 mul");
        assert_equivalent("/x 42 def x x add");
        assert_equivalent("/double {2 mul} def 21 double");
        assert_equivalent("/f {true {1} {2} ifelse} def f");
        assert_equivalent("(3 4 add) cvx exec");
        assert_equivalent("<< /a 1 /b (two) >> /b get");
        assert_equivalent("[ 1 2 3 ] length");
        assert_equivalent("1.5 2 add ==");
        assert_equivalent("/S1 << /name (v) /printer {pop (v) Put} >> def S1 /name get ==");
    }

    #[test]
    fn equivalence_when_module_rebinds_names() {
        // `x` is rebound mid-stream: the literal-name analysis must keep
        // its lookups uncached so the second read sees 2.
        assert_equivalent("/x 1 def x /x 2 def x add");
        // `begin` shifts the dictionary stack: caching disabled wholesale.
        assert_equivalent(
            "/d 4 dict def d /v 7 put /v 1 def d begin v end v add",
        );
        // Deferred code hidden in a string redefines a name.
        assert_equivalent("/g 1 def (/g 2 def) cvx exec g");
    }

    #[test]
    fn errors_keep_provenance() {
        let m = compile_module("1 2 add no_such_name").unwrap();
        let mut i = Interp::new();
        let e = m.run_with_provenance(&mut i, "t.c").unwrap_err();
        match e {
            PsError::Runtime(r) => {
                assert_eq!(r.kind, ErrorKind::Undefined);
                assert!(r.detail.starts_with("module t.c near byte "), "{}", r.detail);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn budget_trips_match_the_scanner_path() {
        let src = "/f {f} def 1 1 1000000 {pop} for";
        let m = compile_module(src).unwrap();
        let mut i = Interp::new();
        let b = Budget { max_fuel: 10_000, ..Budget::UNLIMITED };
        let e = i.with_budget(b, |i| i.run_compiled(&m)).unwrap_err();
        assert!(matches!(&e, PsError::Runtime(r) if r.kind == ErrorKind::Timeout), "{e}");
    }

    #[test]
    fn header_is_extracted_statically() {
        let m = compile_module(
            "<< /procs [ ] /externs 2 dict /statics 2 dict /architecture (mips) >>",
        )
        .unwrap();
        assert_eq!(m.architecture(), Some("mips"));
        let m = compile_module("1 2 add").unwrap();
        assert_eq!(m.architecture(), None);
    }

    #[test]
    fn cache_compiles_once_per_content() {
        let cache = ModuleCache::new();
        let (a, hit_a) = cache.get_or_compile("1 2 add").unwrap();
        let (b, hit_b) = cache.get_or_compile("1 2 add").unwrap();
        let (_, hit_c) = cache.get_or_compile("3 4 add").unwrap();
        assert!(!hit_a && hit_b && !hit_c);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
    }

    #[test]
    fn cache_does_not_retain_failed_compiles() {
        let cache = ModuleCache::new();
        assert!(cache.get_or_compile("(unterminated").is_err());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn thawed_procs_are_fresh_per_run() {
        // Two runs of the same compiled module must not share mutable
        // arrays: a printer proc captured by the first session's dicts
        // must not alias the second's.
        let m = compile_module("/p {1 2 add} def").unwrap();
        let mut i1 = Interp::new();
        m.run(&mut i1).unwrap();
        let mut i2 = Interp::new();
        m.run(&mut i2).unwrap();
        let p1 = i1.lookup("p").unwrap().as_array().unwrap();
        let p2 = i2.lookup("p").unwrap().as_array().unwrap();
        assert!(!Rc::ptr_eq(&p1, &p2));
    }
}
