//! Dictionary operators, including `<<`/`>>` which the symbol tables lean on.

use crate::dict::{Dict, Key};
use crate::error::{limit_check, range_check, type_check, undefined};
use crate::interp::Interp;
use crate::object::{Object, Value};

pub(crate) fn register(i: &mut Interp) {
    i.register("dict", |i| {
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("dict: negative capacity"));
        }
        if n > crate::ops::arrayops::MAX_COMPOSITE {
            return Err(limit_check(format!("dict: capacity {n} over implementation limit")));
        }
        i.charge_alloc(64 * n as u64 + 32)?;
        i.push(Object::dict(Dict::new(n as usize)));
        Ok(())
    });
    i.register("begin", |i| {
        let d = i.pop()?.as_dict()?;
        i.push_dict(d);
        Ok(())
    });
    i.register("end", |i| {
        i.pop_dict()?;
        Ok(())
    });
    i.register("def", |i| {
        let v = i.pop()?;
        let k = i.pop()?;
        let key = Key::from_object(&k)?;
        i.currentdict().borrow_mut().put(key, v);
        Ok(())
    });
    i.register("load", |i| {
        let k = i.pop()?.as_name()?;
        let v = i.lookup(&k)?;
        i.push(v);
        Ok(())
    });
    i.register("store", |i| {
        let v = i.pop()?;
        let k = i.pop()?.as_name()?;
        let dict = i.find_dict(&k).unwrap_or_else(|| i.currentdict());
        dict.borrow_mut().put_name(&k, v);
        Ok(())
    });
    i.register("known", |i| {
        let k = i.pop()?;
        let d = i.pop()?.as_dict()?;
        let key = Key::from_object(&k)?;
        let known = d.borrow().contains(&key);
        i.push(known);
        Ok(())
    });
    i.register("where", |i| {
        let k = i.pop()?.as_name()?;
        match i.find_dict(&k) {
            Some(d) => {
                i.push(Object::lit(Value::Dict(d)));
                i.push(true);
            }
            None => i.push(false),
        }
        Ok(())
    });
    i.register("currentdict", |i| {
        let d = i.currentdict();
        i.push(Object::lit(Value::Dict(d)));
        Ok(())
    });
    i.register("countdictstack", |i| {
        let n = i.dict_stack_len() as i64;
        i.push(n);
        Ok(())
    });
    i.register("undef", |i| {
        let k = i.pop()?;
        let d = i.pop()?.as_dict()?;
        let key = Key::from_object(&k)?;
        d.borrow_mut().remove(&key);
        Ok(())
    });
    i.register("<<", |i| {
        i.push(Object::mark());
        Ok(())
    });
    i.register(">>", |i| {
        let n = i.count_to_mark()?;
        if n % 2 != 0 {
            return Err(range_check(">>: odd number of operands"));
        }
        i.charge_alloc(64 * n as u64 / 2 + 32)?;
        let mut items = i.popn(n)?;
        i.pop()?; // the mark
        let mut d = Dict::new(n / 2);
        let mut it = items.drain(..);
        while let (Some(k), Some(v)) = (it.next(), it.next()) {
            d.put(Key::from_object(&k)?, v);
        }
        i.push(Object::dict(d));
        Ok(())
    });

    // Polymorphic length/get/put live here.
    i.register("length", |i| {
        let o = i.pop()?;
        let n = match &o.val {
            Value::Array(a) => a.borrow().len(),
            Value::Dict(d) => d.borrow().len(),
            Value::String(s) => s.len(),
            Value::Name(n) => n.len(),
            other => return Err(type_check(format!("length: {other:?}"))),
        };
        i.push(n as i64);
        Ok(())
    });
    i.register("maxlength", |i| {
        let o = i.pop()?;
        let d = o.as_dict()?;
        let n = d.borrow().len().max(1) as i64;
        i.push(n);
        Ok(())
    });
    i.register("get", |i| {
        let k = i.pop()?;
        let c = i.pop()?;
        match &c.val {
            Value::Array(a) => {
                let idx = k.as_int()?;
                let a = a.borrow();
                let v = a
                    .get(usize::try_from(idx).map_err(|_| range_check("get: negative index"))?)
                    .ok_or_else(|| range_check(format!("get: index {idx} out of range")))?
                    .clone();
                drop(a);
                i.push(v);
            }
            Value::Dict(d) => {
                let key = Key::from_object(&k)?;
                let v = d
                    .borrow()
                    .get(&key)
                    .cloned()
                    .ok_or_else(|| undefined(format!("get: {key}")))?;
                i.push(v);
            }
            Value::String(s) => {
                let idx = k.as_int()?;
                let b = s
                    .as_bytes()
                    .get(usize::try_from(idx).map_err(|_| range_check("get: negative index"))?)
                    .copied()
                    .ok_or_else(|| range_check("get: index out of range"))?;
                i.push(b as i64);
            }
            other => return Err(type_check(format!("get: {other:?}"))),
        }
        Ok(())
    });
    i.register("put", |i| {
        let v = i.pop()?;
        let k = i.pop()?;
        let c = i.pop()?;
        match &c.val {
            Value::Array(a) => {
                let idx = k.as_int()?;
                let idx = usize::try_from(idx).map_err(|_| range_check("put: negative index"))?;
                let mut a = a.borrow_mut();
                if idx >= a.len() {
                    return Err(range_check("put: index out of range"));
                }
                a[idx] = v;
            }
            Value::Dict(d) => {
                d.borrow_mut().put(Key::from_object(&k)?, v);
            }
            Value::String(_) => {
                // Strings are immutable in this dialect (paper, Sec. 5).
                return Err(crate::error::invalid_access("put: strings are immutable"));
            }
            other => return Err(type_check(format!("put: {other:?}"))),
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn top_int(src: &str) -> i64 {
        let mut i = Interp::new();
        i.run_str(src).unwrap();
        i.pop().unwrap().as_int().unwrap()
    }

    #[test]
    fn dict_literal_and_get() {
        assert_eq!(top_int("<< /a 1 /b 2 >> /b get"), 2);
    }

    #[test]
    fn nested_dicts_like_symbol_entries() {
        // Shape of a symbol-table entry from the paper.
        let src = r#"
            /S10 << /name (i) /type << /decl (int %s) >> /sourcey 6 >> def
            S10 /type get /decl get length
        "#;
        assert_eq!(top_int(src), 6);
    }

    #[test]
    fn begin_end_scoping() {
        let src = "/d 4 dict def d begin /x 1 def end d /x get";
        assert_eq!(top_int(src), 1);
    }

    #[test]
    fn def_goes_to_current_dict() {
        let mut i = Interp::new();
        i.run_str("/d 2 dict def d begin /x 5 def x end").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 5);
        // x is not visible once d is popped.
        assert!(i.run_str("x").is_err());
    }

    #[test]
    fn store_updates_where_found() {
        let src = "/x 1 def /d 2 dict def d begin /x 2 store end x";
        assert_eq!(top_int(src), 2);
    }

    #[test]
    fn known_and_where() {
        let mut i = Interp::new();
        i.run_str("<< /a 1 >> /a known").unwrap();
        assert!(i.pop().unwrap().as_bool().unwrap());
        i.run_str("<< /a 1 >> /b known").unwrap();
        assert!(!i.pop().unwrap().as_bool().unwrap());
        i.run_str("/zz where").unwrap();
        assert!(!i.pop().unwrap().as_bool().unwrap());
        i.run_str("/zz 9 def /zz where").unwrap();
        assert!(i.pop().unwrap().as_bool().unwrap());
        i.pop().unwrap().as_dict().unwrap();
    }

    #[test]
    fn undef_removes() {
        assert_eq!(top_int("/d << /a 1 /b 2 >> def d /a undef d length"), 1);
    }

    #[test]
    fn array_put_get() {
        assert_eq!(top_int("/a 3 array def a 1 42 put a 1 get"), 42);
    }

    #[test]
    fn string_put_is_invalid_access() {
        let mut i = Interp::new();
        assert!(i.run_str("(abc) 0 65 put").is_err());
    }

    #[test]
    fn string_get_returns_byte() {
        assert_eq!(top_int("(A) 0 get"), 65);
    }

    #[test]
    fn odd_dict_literal_errors() {
        let mut i = Interp::new();
        assert!(i.run_str("<< /a >>").is_err());
    }

    #[test]
    fn end_at_bottom_errors() {
        let mut i = Interp::new();
        assert!(i.run_str("end").is_err());
    }

    #[test]
    fn length_polymorphic() {
        assert_eq!(top_int("[1 2 3] length"), 3);
        assert_eq!(top_int("(hello) length"), 5);
        assert_eq!(top_int("/abc length"), 3);
        assert_eq!(top_int("<< /a 1 >> length"), 1);
    }
}
