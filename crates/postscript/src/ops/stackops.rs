//! Operand-stack manipulation operators.

use crate::error::range_check;
use crate::interp::Interp;
use crate::object::Object;

pub(crate) fn register(i: &mut Interp) {
    i.register("pop", |i| {
        i.pop()?;
        Ok(())
    });
    i.register("exch", |i| {
        let b = i.pop()?;
        let a = i.pop()?;
        i.push(b);
        i.push(a);
        Ok(())
    });
    i.register("dup", |i| {
        let a = i.peek(0)?.clone();
        i.push(a);
        Ok(())
    });
    i.register("copy", |i| {
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("copy: negative count"));
        }
        let n = n as usize;
        if n > 0 {
            i.charge_alloc(32 * n as u64)?;
            let start = i
                .depth()
                .checked_sub(n)
                .ok_or_else(|| range_check("copy: not enough operands"))?;
            let copies: Vec<Object> = i.stack()[start..].to_vec();
            for c in copies {
                i.push(c);
            }
        }
        Ok(())
    });
    i.register("index", |i| {
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("index: negative"));
        }
        let o = i.peek(n as usize)?.clone();
        i.push(o);
        Ok(())
    });
    i.register("roll", |i| {
        let j = i.pop()?.as_int()?;
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("roll: negative count"));
        }
        let n = n as usize;
        if n == 0 {
            return Ok(());
        }
        let mut window = i.popn(n)?;
        let j = j.rem_euclid(n as i64) as usize;
        window.rotate_right(j);
        for o in window {
            i.push(o);
        }
        Ok(())
    });
    i.register("clear", |i| {
        i.clear_stack();
        Ok(())
    });
    i.register("count", |i| {
        let d = i.depth() as i64;
        i.push(d);
        Ok(())
    });
    i.register("mark", |i| {
        i.push(Object::mark());
        Ok(())
    });
    i.register("counttomark", |i| {
        let n = i.count_to_mark()? as i64;
        i.push(n);
        Ok(())
    });
    i.register("cleartomark", |i| {
        let n = i.count_to_mark()?;
        i.truncate_stack(i.depth() - n - 1);
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn run(src: &str) -> Interp {
        let mut i = Interp::new();
        i.run_str(src).unwrap();
        i
    }

    fn ints(i: &Interp) -> Vec<i64> {
        i.stack().iter().map(|o| o.as_int().unwrap()).collect()
    }

    #[test]
    fn exch_dup_pop() {
        assert_eq!(ints(&run("1 2 exch")), vec![2, 1]);
        assert_eq!(ints(&run("1 dup")), vec![1, 1]);
        assert_eq!(ints(&run("1 2 pop")), vec![1]);
    }

    #[test]
    fn copy_duplicates_top_n() {
        assert_eq!(ints(&run("1 2 3 2 copy")), vec![1, 2, 3, 2, 3]);
        assert_eq!(ints(&run("1 2 0 copy")), vec![1, 2]);
    }

    #[test]
    fn index_counts_from_top() {
        assert_eq!(ints(&run("10 20 30 2 index")), vec![10, 20, 30, 10]);
        assert_eq!(ints(&run("10 20 0 index")), vec![10, 20, 20]);
    }

    #[test]
    fn roll_positive_and_negative() {
        // The paper's ARRAY printer uses `3 -1 roll`.
        assert_eq!(ints(&run("1 2 3 3 -1 roll")), vec![2, 3, 1]);
        assert_eq!(ints(&run("1 2 3 3 1 roll")), vec![3, 1, 2]);
        assert_eq!(ints(&run("1 2 3 3 4 roll")), vec![3, 1, 2]);
    }

    #[test]
    fn marks_and_counting() {
        let i = run("1 mark 2 3 counttomark");
        assert_eq!(i.peek(0).unwrap().as_int().unwrap(), 2);
        assert_eq!(ints(&run("1 mark 2 3 cleartomark")), vec![1]);
    }

    #[test]
    fn count_reports_depth() {
        assert_eq!(ints(&run("count 5 count")), vec![0, 5, 2]);
    }

    #[test]
    fn errors() {
        let mut i = Interp::new();
        assert!(i.run_str("pop").is_err());
        assert!(i.run_str("1 2 -1 copy").is_err());
        assert!(i.run_str("cleartomark").is_err());
        assert!(i.run_str("1 5 index").is_err());
    }
}
