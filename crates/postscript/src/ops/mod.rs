//! Operator implementations, grouped by chapter.

mod arith;
pub(crate) mod arrayops;
mod control;
mod convops;
mod debugops;
mod dictops;
mod ioops;
mod stackops;

use crate::interp::Interp;

/// Register the full dialect into an interpreter's systemdict.
pub fn register_all(interp: &mut Interp) {
    stackops::register(interp);
    arith::register(interp);
    control::register(interp);
    dictops::register(interp);
    arrayops::register(interp);
    convops::register(interp);
    ioops::register(interp);
    debugops::register(interp);
}
