//! Array operators. There are deliberately no subarray operators
//! (`getinterval`/`putinterval`): the dialect omits them (paper, Sec. 5).

use crate::error::{limit_check, range_check};
use crate::interp::Interp;
use crate::object::Object;

/// Hard element cap on `array`/`dict` construction, enforced even with no
/// budget installed: one hostile operand must not be able to commit the
/// host to gigabytes before the allocation accounting sees it.
pub(crate) const MAX_COMPOSITE: i64 = 1 << 22;

pub(crate) fn register(i: &mut Interp) {
    i.register("array", |i| {
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("array: negative length"));
        }
        if n > MAX_COMPOSITE {
            return Err(limit_check(format!("array: length {n} over implementation limit")));
        }
        i.charge_alloc(32 * n as u64 + 16)?;
        i.push(Object::array(vec![Object::null(); n as usize]));
        Ok(())
    });
    i.register("[", |i| {
        i.push(Object::mark());
        Ok(())
    });
    i.register("]", |i| {
        let n = i.count_to_mark()?;
        i.charge_alloc(32 * n as u64 + 16)?;
        let items = i.popn(n)?;
        i.pop()?; // the mark
        i.push(Object::array(items));
        Ok(())
    });
    i.register("aload", |i| {
        let o = i.pop()?;
        let a = o.as_array()?;
        let items: Vec<Object> = a.borrow().clone();
        for it in items {
            i.push(it);
        }
        i.push(o);
        Ok(())
    });
    i.register("astore", |i| {
        let o = i.pop()?;
        let a = o.as_array()?;
        let n = a.borrow().len();
        let items = i.popn(n)?;
        *a.borrow_mut() = items;
        i.push(o);
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    #[test]
    fn literal_array_and_aload() {
        let mut i = Interp::new();
        i.run_str("[10 20 30] aload pop add add").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 60);
    }

    #[test]
    fn array_of_nulls() {
        let mut i = Interp::new();
        i.run_str("2 array 0 get").unwrap();
        assert!(matches!(i.pop().unwrap().val, crate::object::Value::Null));
    }

    #[test]
    fn astore_fills_from_stack() {
        let mut i = Interp::new();
        i.run_str("1 2 3 3 array astore 1 get").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 2);
    }

    #[test]
    fn nested_array_literals() {
        let mut i = Interp::new();
        i.run_str("[[1 2] [3 4]] 1 get 0 get").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 3);
    }

    #[test]
    fn procs_inside_array_literal_stay_procs() {
        let mut i = Interp::new();
        i.run_str("[{1 add} {2 add}] 1 get 10 exch exec").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 12);
    }

    #[test]
    fn unmatched_bracket_errors() {
        let mut i = Interp::new();
        assert!(i.run_str("1 2 ]").is_err());
    }
}
