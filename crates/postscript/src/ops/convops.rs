//! Type conversion and inspection operators, including `cvx` — the key to
//! both deferred lexing (executable strings) and the literal/executable
//! machinery the paper highlights.

use std::rc::Rc;

use crate::error::{range_check, type_check};
use crate::interp::Interp;
use crate::object::{Object, Value};

pub(crate) fn register(i: &mut Interp) {
    i.register("cvx", |i| {
        let mut o = i.pop()?;
        o.exec = true;
        i.push(o);
        Ok(())
    });
    i.register("cvlit", |i| {
        let mut o = i.pop()?;
        o.exec = false;
        i.push(o);
        Ok(())
    });
    i.register("xcheck", |i| {
        let o = i.pop()?;
        i.push(o.exec);
        Ok(())
    });
    i.register("type", |i| {
        let o = i.pop()?;
        i.push(Object::name(o.type_name()));
        Ok(())
    });
    i.register("cvi", |i| {
        let o = i.pop()?;
        let v = match &o.val {
            Value::Int(x) => *x,
            Value::Real(r) => {
                if !r.is_finite() || r.abs() >= i64::MAX as f64 {
                    return Err(range_check("cvi: out of range"));
                }
                r.trunc() as i64
            }
            Value::String(s) => match crate::scanner::parse_number(s.trim()) {
                Some(n) => match n.val {
                    Value::Int(x) => x,
                    Value::Real(r) => r.trunc() as i64,
                    _ => return Err(type_check("cvi: not a number")),
                },
                None => return Err(type_check(format!("cvi: ({s})"))),
            },
            other => return Err(type_check(format!("cvi: {other:?}"))),
        };
        i.push(v);
        Ok(())
    });
    i.register("cvr", |i| {
        let o = i.pop()?;
        let v = match &o.val {
            Value::Int(x) => *x as f64,
            Value::Real(r) => *r,
            Value::String(s) => match crate::scanner::parse_number(s.trim()) {
                Some(n) => n.as_real()?,
                None => return Err(type_check(format!("cvr: ({s})"))),
            },
            other => return Err(type_check(format!("cvr: {other:?}"))),
        };
        i.push(v);
        Ok(())
    });
    i.register("cvn", |i| {
        let o = i.pop()?;
        let s = o.as_string()?;
        let mut n = Object::lit(Value::Name(Rc::clone(&s)));
        n.exec = o.exec;
        i.push(n);
        Ok(())
    });
    // In this dialect strings are immutable, so `cvs` takes no buffer
    // operand: it simply produces a fresh string (documented deviation).
    i.register("cvs", |i| {
        let o = i.pop()?;
        let s = o.to_text();
        i.charge_alloc(s.len() as u64 + 16)?;
        i.push(Object::string(s));
        Ok(())
    });
    i.register("bind", |i| {
        let o = i.pop()?;
        if let Ok(a) = o.as_array() {
            bind_body(i, &a);
        }
        i.push(o);
        Ok(())
    });
    i.register("noop", |_| Ok(()));
    i.register("version", |i| {
        i.push(Object::string("ldb-dialect-1.0"));
        Ok(())
    });
}

/// Replace executable names currently bound to operators with the operators
/// themselves; recurse into nested procedures.
fn bind_body(i: &Interp, a: &crate::object::Arr) {
    let len = a.borrow().len();
    for idx in 0..len {
        let el = a.borrow()[idx].clone();
        if el.is_proc() {
            if let Ok(inner) = el.as_array() {
                bind_body(i, &inner);
            }
        } else if el.exec {
            if let Value::Name(n) = &el.val {
                if let Ok(found) = i.lookup(n) {
                    if matches!(found.val, Value::Operator(_)) {
                        a.borrow_mut()[idx] = found;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;
    use crate::object::Value;

    fn top(src: &str) -> crate::object::Object {
        let mut i = Interp::new();
        i.run_str(src).unwrap();
        i.pop().unwrap()
    }

    #[test]
    fn cvx_makes_strings_executable() {
        assert_eq!(top("(1 2 add) cvx exec").as_int().unwrap(), 3);
    }

    #[test]
    fn cvx_cvlit_roundtrip() {
        assert!(top("/x cvx xcheck").as_bool().unwrap());
        assert!(!top("/x cvx cvlit xcheck").as_bool().unwrap());
    }

    #[test]
    fn cvi_and_cvr() {
        assert_eq!(top("3.9 cvi").as_int().unwrap(), 3);
        assert_eq!(top("-3.9 cvi").as_int().unwrap(), -3);
        assert_eq!(top("(42) cvi").as_int().unwrap(), 42);
        assert_eq!(top("(16#ff) cvi").as_int().unwrap(), 255);
        assert_eq!(top("7 cvr").as_real().unwrap(), 7.0);
        assert_eq!(top("(2.5) cvr").as_real().unwrap(), 2.5);
    }

    #[test]
    fn cvn_preserves_exec_attr() {
        assert!(matches!(top("(abc) cvn").val, Value::Name(_)));
        assert!(top("(abc) cvx cvn xcheck").as_bool().unwrap());
    }

    #[test]
    fn cvs_renders_values() {
        assert_eq!(top("42 cvs").as_string().unwrap().as_ref(), "42");
        assert_eq!(top("true cvs").as_string().unwrap().as_ref(), "true");
        assert_eq!(top("/nm cvs").as_string().unwrap().as_ref(), "nm");
        assert_eq!(top("1.5 cvs").as_string().unwrap().as_ref(), "1.5");
    }

    #[test]
    fn type_names() {
        assert_eq!(top("1 type").as_name().unwrap().as_ref(), "integertype");
        assert_eq!(top("(x) type").as_name().unwrap().as_ref(), "stringtype");
        assert_eq!(top("{1} type").as_name().unwrap().as_ref(), "arraytype");
    }

    #[test]
    fn bind_replaces_operator_names() {
        let mut i = Interp::new();
        i.run_str("/p {1 2 add {3 mul} exec} bind def").unwrap();
        // Rebinding add later does not affect the bound procedure.
        i.run_str("/add {sub} def p").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 9);
    }

    #[test]
    fn cvi_errors() {
        let mut i = Interp::new();
        assert!(i.run_str("(zz) cvi").is_err());
        assert!(i.run_str("[1] cvi").is_err());
    }
}
