//! Machine-independent debugging operators: location construction.
//!
//! Symbol tables compute `where` values with these, e.g. `30 Regset0
//! Absolute` for a register, where `Regset0` is *machine-dependent*
//! PostScript installed per architecture (it maps a register-set index to
//! the architecture's space letter). The machine-dependent operators that
//! touch target state (`Fetch32`, `Store32`, `LazyData`, ...) are
//! registered by the debugger, not here, because they need a target.

use crate::error::{range_check, type_check, PsResult};
use crate::interp::Interp;
use crate::object::{Location, Object, Value};

pub(crate) fn register(i: &mut Interp) {
    // space-name offset Absolute -> location
    i.register("Absolute", |i| {
        let offset = i.pop()?.as_int()?;
        let space = i.pop()?;
        let space = space_letter(&space)?;
        i.push(Object::location(Location::Addr { space, offset }));
        Ok(())
    });
    // value Immediate -> location
    i.register("Immediate", |i| {
        let v = i.pop()?;
        i.push(Object::location(Location::Immediate(Box::new(v))));
        Ok(())
    });
    // location delta Shifted -> location
    i.register("Shifted", |i| {
        let delta = i.pop()?.as_int()?;
        let loc = i.pop()?.as_location()?;
        i.push(Object::location(loc.shifted(delta)?));
        Ok(())
    });
    // location LocOffset -> int
    i.register("LocOffset", |i| {
        let loc = i.pop()?.as_location()?;
        match loc {
            Location::Addr { offset, .. } => i.push(offset),
            Location::Immediate(_) => return Err(type_check("LocOffset: immediate")),
        }
        Ok(())
    });
    // location LocSpace -> name
    i.register("LocSpace", |i| {
        let loc = i.pop()?.as_location()?;
        match loc {
            Location::Addr { space, .. } => i.push(Object::name(space.to_string())),
            Location::Immediate(_) => return Err(type_check("LocSpace: immediate")),
        }
        Ok(())
    });
}

/// Interpret an operand as a space letter: a one-character name or string.
fn space_letter(o: &Object) -> PsResult<char> {
    let s = match &o.val {
        Value::Name(n) => n.as_ref(),
        Value::String(s) => s.as_ref(),
        other => return Err(type_check(format!("space: {other:?}"))),
    };
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Ok(c),
        _ => Err(range_check(format!("space must be one letter, got ({s})"))),
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;
    use crate::object::Location;

    #[test]
    fn absolute_builds_location() {
        let mut i = Interp::new();
        // The paper's MIPS Regset0 maps to the r space.
        i.run_str("/Regset0 {/r exch} def 30 Regset0 Absolute").unwrap();
        let loc = i.pop().unwrap().as_location().unwrap();
        assert_eq!(loc, Location::Addr { space: 'r', offset: 30 });
    }

    #[test]
    fn shifted_moves_offset() {
        let mut i = Interp::new();
        i.run_str("/d 100 Absolute 8 Shifted LocOffset").unwrap();
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 108);
    }

    #[test]
    fn immediate_location_roundtrip() {
        let mut i = Interp::new();
        i.run_str("42 Immediate").unwrap();
        let loc = i.pop().unwrap().as_location().unwrap();
        match loc {
            Location::Immediate(v) => assert_eq!(v.as_int().unwrap(), 42),
            other => panic!("expected immediate, got {other:?}"),
        }
    }

    #[test]
    fn space_accessor() {
        let mut i = Interp::new();
        i.run_str("/x 2 Absolute LocSpace").unwrap();
        assert_eq!(i.pop().unwrap().as_name().unwrap().as_ref(), "x");
    }

    #[test]
    fn bad_space_errors() {
        let mut i = Interp::new();
        assert!(i.run_str("/toolong 0 Absolute").is_err());
        assert!(i.run_str("3 0 Absolute").is_err());
        assert!(i.run_str("7 Immediate 4 Shifted").is_err());
    }
}
