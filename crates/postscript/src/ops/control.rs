//! Control operators: `exec`, conditionals, loops, and the `stop`/`stopped`
//! pair that ldb uses to interpret the expression-server pipe "until told to
//! stop".

use crate::error::{range_check, type_check, PsError};
use crate::interp::Interp;
use crate::object::Value;

pub(crate) fn register(i: &mut Interp) {
    i.register("exec", |i| {
        let o = i.pop()?;
        i.call(&o)
    });
    i.register("if", |i| {
        let proc = i.pop()?;
        let cond = i.pop()?.as_bool()?;
        if cond {
            i.call(&proc)?;
        }
        Ok(())
    });
    i.register("ifelse", |i| {
        let pelse = i.pop()?;
        let pthen = i.pop()?;
        let cond = i.pop()?.as_bool()?;
        i.call(if cond { &pthen } else { &pelse })
    });
    i.register("repeat", |i| {
        let proc = i.pop()?;
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("repeat: negative count"));
        }
        for _ in 0..n {
            match i.call(&proc) {
                Err(PsError::Exit) => break,
                r => r?,
            }
        }
        Ok(())
    });
    i.register("loop", |i| {
        let proc = i.pop()?;
        loop {
            match i.call(&proc) {
                Err(PsError::Exit) => break,
                r => r?,
            }
        }
        Ok(())
    });
    i.register("for", |i| {
        let proc = i.pop()?;
        let limit = i.pop()?;
        let incr = i.pop()?;
        let init = i.pop()?;
        let int_mode = matches!(
            (&init.val, &incr.val, &limit.val),
            (Value::Int(_), Value::Int(_), Value::Int(_))
        );
        if int_mode {
            let (mut v, step, lim) = (init.as_int()?, incr.as_int()?, limit.as_int()?);
            if step == 0 {
                return Err(range_check("for: zero increment"));
            }
            while (step > 0 && v <= lim) || (step < 0 && v >= lim) {
                i.push(v);
                match i.call(&proc) {
                    Err(PsError::Exit) => break,
                    r => r?,
                }
                v += step;
            }
        } else {
            let (mut v, step, lim) = (init.as_real()?, incr.as_real()?, limit.as_real()?);
            if step == 0.0 {
                return Err(range_check("for: zero increment"));
            }
            while (step > 0.0 && v <= lim) || (step < 0.0 && v >= lim) {
                i.push(v);
                match i.call(&proc) {
                    Err(PsError::Exit) => break,
                    r => r?,
                }
                v += step;
            }
        }
        Ok(())
    });
    i.register("forall", |i| {
        let proc = i.pop()?;
        let coll = i.pop()?;
        match &coll.val {
            Value::Array(a) => {
                let len = a.borrow().len();
                for idx in 0..len {
                    let el = a.borrow().get(idx).cloned();
                    let el = match el {
                        Some(e) => e,
                        None => break, // array shrank during iteration
                    };
                    i.push(el);
                    match i.call(&proc) {
                        Err(PsError::Exit) => break,
                        r => r?,
                    }
                }
                Ok(())
            }
            Value::Dict(d) => {
                let pairs: Vec<_> =
                    d.borrow().iter().map(|(k, v)| (k.to_object(), v.clone())).collect();
                for (k, v) in pairs {
                    i.push(k);
                    i.push(v);
                    match i.call(&proc) {
                        Err(PsError::Exit) => break,
                        r => r?,
                    }
                }
                Ok(())
            }
            Value::String(s) => {
                for b in s.bytes() {
                    i.push(b as i64);
                    match i.call(&proc) {
                        Err(PsError::Exit) => break,
                        r => r?,
                    }
                }
                Ok(())
            }
            other => Err(type_check(format!("forall: {other:?}"))),
        }
    });
    i.register("exit", |_| Err(PsError::Exit));
    i.register("stop", |_| Err(PsError::Stop));
    i.register("quit", |_| Err(PsError::Quit));
    i.register("stopped", |i| {
        let o = i.pop()?;
        match i.call(&o) {
            Ok(()) => {
                i.push(false);
                Ok(())
            }
            Err(PsError::Quit) => Err(PsError::Quit),
            Err(PsError::Exit) => Err(PsError::Exit),
            Err(PsError::Stop) => {
                i.push(true);
                Ok(())
            }
            Err(PsError::Runtime(e)) => {
                i.last_error = Some(e);
                i.push(true);
                Ok(())
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn top_int(src: &str) -> i64 {
        let mut i = Interp::new();
        i.run_str(src).unwrap();
        i.pop().unwrap().as_int().unwrap()
    }

    #[test]
    fn if_and_ifelse() {
        assert_eq!(top_int("0 true {1 add} if"), 1);
        assert_eq!(top_int("0 false {1 add} if"), 0);
        assert_eq!(top_int("false {1} {2} ifelse"), 2);
    }

    #[test]
    fn for_counts_up_and_down() {
        assert_eq!(top_int("0 1 1 10 {add} for"), 55);
        assert_eq!(top_int("0 10 -1 1 {add} for"), 55);
        assert_eq!(top_int("0 0 2 6 {add} for"), 12); // 0+2+4+6
    }

    #[test]
    fn for_with_reals() {
        let mut i = Interp::new();
        i.run_str("0.0 0.0 0.5 1.0 {add} for").unwrap();
        assert_eq!(i.pop().unwrap().as_real().unwrap(), 1.5);
    }

    #[test]
    fn repeat_and_loop_exit() {
        assert_eq!(top_int("0 5 {1 add} repeat"), 5);
        assert_eq!(top_int("0 {1 add dup 7 ge {exit} if} loop"), 7);
    }

    #[test]
    fn exit_breaks_for() {
        // The paper's ARRAY printer uses exactly this shape for its
        // ellipsis limit.
        assert_eq!(top_int("0 1 1 100 {dup 5 ge {pop exit} if add} for"), 10);
    }

    #[test]
    fn forall_array_dict_string() {
        assert_eq!(top_int("0 [1 2 3] {add} forall"), 6);
        assert_eq!(top_int("0 << /a 1 /b 2 >> {exch pop add} forall"), 3);
        assert_eq!(top_int("0 (AB) {add} forall"), 131); // 65+66
    }

    #[test]
    fn stopped_catches_stop_and_errors() {
        let mut i = Interp::new();
        i.run_str("{stop} stopped").unwrap();
        assert!(i.pop().unwrap().as_bool().unwrap());
        i.run_str("{no_such} stopped").unwrap();
        assert!(i.pop().unwrap().as_bool().unwrap());
        i.run_str("{42} stopped").unwrap();
        assert!(!i.pop().unwrap().as_bool().unwrap());
        assert_eq!(i.pop().unwrap().as_int().unwrap(), 42);
    }

    #[test]
    fn exit_propagates_through_stopped() {
        // `exit` is control flow, not an error; it unwinds past stopped to
        // the enclosing loop.
        assert_eq!(top_int("0 {1 add {exit} stopped pop} loop"), 1);
    }

    #[test]
    fn exec_runs_procs_and_pushes_literals() {
        assert_eq!(top_int("{1 2 add} exec"), 3);
        assert_eq!(top_int("42 exec"), 42);
    }
}
