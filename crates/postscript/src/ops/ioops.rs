//! Output operators and the prettyprinter interface.
//!
//! `Put`, `Break`, `Begin`, and `End` drive the prettyprinter the debugger's
//! printing procedures use (the ARRAY printer in the paper's Sec. 2 calls
//! all four). `print`, `=`, `==`, `stack`, and `pstack` are the standard
//! PostScript output operators; ldb's debugging dictionary later *rebinds*
//! `print` to the value printer, demonstrating dictionary-stack rebinding.

use crate::error::range_check;
use crate::interp::Interp;

pub(crate) fn register(i: &mut Interp) {
    i.register("print", |i| {
        let s = i.pop()?.as_string()?;
        i.write_output(&s);
        Ok(())
    });
    i.register("=", |i| {
        let o = i.pop()?;
        let s = o.to_text();
        i.write_output(&s);
        i.write_output("\n");
        Ok(())
    });
    i.register("==", |i| {
        let o = i.pop()?;
        let s = o.to_syntactic();
        i.write_output(&s);
        i.write_output("\n");
        Ok(())
    });
    i.register("stack", |i| {
        let items: Vec<String> = i.stack().iter().rev().map(|o| o.to_text()).collect();
        for s in items {
            i.write_output(&s);
            i.write_output("\n");
        }
        Ok(())
    });
    i.register("pstack", |i| {
        let items: Vec<String> = i.stack().iter().rev().map(|o| o.to_syntactic()).collect();
        for s in items {
            i.write_output(&s);
            i.write_output("\n");
        }
        Ok(())
    });
    i.register("flush", |_| Ok(()));

    // --- prettyprinter interface ---
    i.register("Put", |i| {
        let s = i.pop()?.as_string()?;
        i.pretty.put(&s);
        Ok(())
    });
    i.register("Break", |i| {
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("Break: negative indent"));
        }
        i.pretty.brk(n as usize);
        Ok(())
    });
    i.register("Begin", |i| {
        let n = i.pop()?.as_int()?;
        if n < 0 {
            return Err(range_check("Begin: negative indent"));
        }
        i.pretty.begin(n as usize);
        Ok(())
    });
    i.register("End", |i| {
        i.pretty.end();
        Ok(())
    });
    i.register("Newline", |i| {
        i.pretty.newline();
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn output_of(src: &str) -> String {
        let (mut i, buf) = Interp::new_capturing();
        i.run_str(src).unwrap();
        let s = buf.borrow().clone();
        s
    }

    #[test]
    fn print_and_equals() {
        assert_eq!(output_of("(hi) print"), "hi");
        assert_eq!(output_of("42 ="), "42\n");
        assert_eq!(output_of("(s) =="), "(s)\n");
        assert_eq!(output_of("/n =="), "/n\n");
    }

    #[test]
    fn stack_prints_top_first() {
        assert_eq!(output_of("1 2 3 stack"), "3\n2\n1\n");
    }

    #[test]
    fn prettyprinter_ops_drive_pretty() {
        let out = output_of("({) Put 0 Begin (a) Put (, ) Put 0 Break (b) Put End (}) Put");
        assert_eq!(out, "{a, b}");
    }

    #[test]
    fn array_printer_shape_from_paper() {
        // The structure of the paper's ARRAY printer, with Put/Break/
        // Begin/End and an exit-on-limit, printing offsets directly.
        let src = r#"
            ({) Put 0 Begin
            0 4 12 {
                dup 0 ne { (, ) Put 0 Break } if
                dup 100 ge { (...) Put pop exit } if
                cvs Put
            } for
            (}) Put End
        "#;
        assert_eq!(output_of(src), "{0, 4, 8, 12}");
    }
}
