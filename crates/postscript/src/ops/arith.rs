//! Arithmetic, bit/boolean, and relational operators.

use crate::error::{range_check, type_check, undefined_result, PsResult};
use crate::interp::Interp;
use crate::object::{Object, Value};

/// Pop two numeric operands `(a, b)` with `b` on top.
fn num2(i: &mut Interp) -> PsResult<(Object, Object)> {
    let b = i.pop()?;
    let a = i.pop()?;
    Ok((a, b))
}

fn both_int(a: &Object, b: &Object) -> bool {
    matches!((&a.val, &b.val), (Value::Int(_), Value::Int(_)))
}

/// int op int stays int unless it overflows (then widen to real, as
/// PostScript does); anything else is real arithmetic.
fn arith(
    i: &mut Interp,
    int_op: fn(i64, i64) -> Option<i64>,
    real_op: fn(f64, f64) -> f64,
) -> PsResult<()> {
    let (a, b) = num2(i)?;
    if both_int(&a, &b) {
        let (x, y) = (a.as_int()?, b.as_int()?);
        match int_op(x, y) {
            Some(v) => i.push(v),
            None => i.push(real_op(x as f64, y as f64)),
        }
    } else {
        i.push(real_op(a.as_real()?, b.as_real()?));
    }
    Ok(())
}

fn unary_real(i: &mut Interp, f: fn(f64) -> f64) -> PsResult<()> {
    let a = i.pop()?.as_real()?;
    i.push(f(a));
    Ok(())
}

/// Round-to-integer family: int operands pass through unchanged.
fn rounding(i: &mut Interp, f: fn(f64) -> f64) -> PsResult<()> {
    let a = i.pop()?;
    match a.val {
        Value::Int(_) => i.push(a),
        Value::Real(r) => i.push(f(r)),
        _ => return Err(type_check("expected number")),
    }
    Ok(())
}

pub(crate) fn register(i: &mut Interp) {
    i.register("add", |i| arith(i, i64::checked_add, |a, b| a + b));
    i.register("sub", |i| arith(i, i64::checked_sub, |a, b| a - b));
    i.register("mul", |i| arith(i, i64::checked_mul, |a, b| a * b));
    i.register("div", |i| {
        let (a, b) = num2(i)?;
        let (x, y) = (a.as_real()?, b.as_real()?);
        if y == 0.0 {
            return Err(undefined_result("div: division by zero"));
        }
        i.push(x / y);
        Ok(())
    });
    i.register("idiv", |i| {
        let (a, b) = num2(i)?;
        let (x, y) = (a.as_int()?, b.as_int()?);
        if y == 0 {
            return Err(undefined_result("idiv: division by zero"));
        }
        i.push(x.wrapping_div(y));
        Ok(())
    });
    i.register("mod", |i| {
        let (a, b) = num2(i)?;
        let (x, y) = (a.as_int()?, b.as_int()?);
        if y == 0 {
            return Err(undefined_result("mod: division by zero"));
        }
        i.push(x.wrapping_rem(y));
        Ok(())
    });
    i.register("neg", |i| {
        let a = i.pop()?;
        match a.val {
            Value::Int(v) => i.push(v.checked_neg().map(Object::int).unwrap_or(Object::real(-(v as f64)))),
            Value::Real(r) => i.push(-r),
            _ => return Err(type_check("neg: expected number")),
        }
        Ok(())
    });
    i.register("abs", |i| {
        let a = i.pop()?;
        match a.val {
            Value::Int(v) => {
                i.push(v.checked_abs().map(Object::int).unwrap_or(Object::real((v as f64).abs())))
            }
            Value::Real(r) => i.push(r.abs()),
            _ => return Err(type_check("abs: expected number")),
        }
        Ok(())
    });
    i.register("ceiling", |i| rounding(i, f64::ceil));
    i.register("floor", |i| rounding(i, f64::floor));
    i.register("round", |i| rounding(i, f64::round));
    i.register("truncate", |i| rounding(i, f64::trunc));
    i.register("sqrt", |i| {
        let a = i.pop()?.as_real()?;
        if a < 0.0 {
            return Err(range_check("sqrt: negative"));
        }
        i.push(a.sqrt());
        Ok(())
    });
    i.register("exp", |i| {
        let (a, b) = num2(i)?;
        i.push(a.as_real()?.powf(b.as_real()?));
        Ok(())
    });
    i.register("ln", |i| unary_real(i, f64::ln));
    i.register("log", |i| unary_real(i, f64::log10));
    i.register("sin", |i| unary_real(i, |d| d.to_radians().sin()));
    i.register("cos", |i| unary_real(i, |d| d.to_radians().cos()));
    i.register("atan", |i| {
        let (a, b) = num2(i)?;
        let mut deg = a.as_real()?.atan2(b.as_real()?).to_degrees();
        if deg < 0.0 {
            deg += 360.0;
        }
        i.push(deg);
        Ok(())
    });

    // --- boolean / bitwise (polymorphic over bool and int, as in PostScript) ---
    i.register("and", |i| bitbool(i, |a, b| a & b, |a, b| a && b));
    i.register("or", |i| bitbool(i, |a, b| a | b, |a, b| a || b));
    i.register("xor", |i| bitbool(i, |a, b| a ^ b, |a, b| a ^ b));
    i.register("not", |i| {
        let a = i.pop()?;
        match a.val {
            Value::Bool(b) => i.push(!b),
            Value::Int(v) => i.push(!v),
            _ => return Err(type_check("not: expected bool or int")),
        }
        Ok(())
    });
    i.register("bitshift", |i| {
        let (a, b) = num2(i)?;
        let (x, s) = (a.as_int()?, b.as_int()?);
        let v = if s >= 64 || s <= -64 {
            0
        } else if s >= 0 {
            ((x as u64) << s) as i64
        } else {
            ((x as u64) >> (-s)) as i64
        };
        i.push(v);
        Ok(())
    });

    // --- relational ---
    i.register("eq", |i| {
        let (a, b) = num2(i)?;
        let r = a.ps_eq(&b);
        i.push(r);
        Ok(())
    });
    i.register("ne", |i| {
        let (a, b) = num2(i)?;
        let r = !a.ps_eq(&b);
        i.push(r);
        Ok(())
    });
    i.register("gt", |i| compare(i, |o| o == std::cmp::Ordering::Greater));
    i.register("ge", |i| compare(i, |o| o != std::cmp::Ordering::Less));
    i.register("lt", |i| compare(i, |o| o == std::cmp::Ordering::Less));
    i.register("le", |i| compare(i, |o| o != std::cmp::Ordering::Greater));

    i.register("true", |i| {
        i.push(true);
        Ok(())
    });
    i.register("false", |i| {
        i.push(false);
        Ok(())
    });
    i.register("null", |i| {
        i.push(Object::null());
        Ok(())
    });
}

fn bitbool(i: &mut Interp, fi: fn(i64, i64) -> i64, fb: fn(bool, bool) -> bool) -> PsResult<()> {
    let (a, b) = num2(i)?;
    match (&a.val, &b.val) {
        (Value::Int(x), Value::Int(y)) => i.push(fi(*x, *y)),
        (Value::Bool(x), Value::Bool(y)) => i.push(fb(*x, *y)),
        _ => return Err(type_check("logical op: expected two ints or two bools")),
    }
    Ok(())
}

fn compare(i: &mut Interp, pred: fn(std::cmp::Ordering) -> bool) -> PsResult<()> {
    let b = i.pop()?;
    let a = i.pop()?;
    let ord = match (&a.val, &b.val) {
        (Value::String(x), Value::String(y)) => x.as_ref().cmp(y.as_ref()),
        _ => {
            let (x, y) = (a.as_real()?, b.as_real()?);
            x.partial_cmp(&y).ok_or_else(|| range_check("comparison of NaN"))?
        }
    };
    i.push(pred(ord));
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;
    use crate::object::Value;

    fn top(src: &str) -> crate::object::Object {
        let mut i = Interp::new();
        i.run_str(src).unwrap();
        i.pop().unwrap()
    }

    #[test]
    fn int_arithmetic() {
        assert_eq!(top("7 3 sub").as_int().unwrap(), 4);
        assert_eq!(top("7 3 idiv").as_int().unwrap(), 2);
        assert_eq!(top("-7 3 idiv").as_int().unwrap(), -2);
        assert_eq!(top("7 3 mod").as_int().unwrap(), 1);
        assert_eq!(top("-7 3 mod").as_int().unwrap(), -1);
    }

    #[test]
    fn div_is_always_real() {
        assert_eq!(top("7 2 div").as_real().unwrap(), 3.5);
        assert_eq!(top("6 2 div").as_real().unwrap(), 3.0);
        assert!(matches!(top("6 2 div").val, Value::Real(_)));
    }

    #[test]
    fn overflow_widens_to_real() {
        let v = top("9223372036854775807 1 add");
        assert!(matches!(v.val, Value::Real(_)));
    }

    #[test]
    fn mixed_arithmetic_is_real() {
        assert_eq!(top("1 2.5 add").as_real().unwrap(), 3.5);
    }

    #[test]
    fn division_by_zero_errors() {
        let mut i = Interp::new();
        assert!(i.run_str("1 0 div").is_err());
        assert!(i.run_str("1 0 idiv").is_err());
        assert!(i.run_str("1 0 mod").is_err());
    }

    #[test]
    fn rounding_family() {
        assert_eq!(top("3.2 ceiling").as_real().unwrap(), 4.0);
        assert_eq!(top("3.8 floor").as_real().unwrap(), 3.0);
        assert_eq!(top("-3.5 truncate").as_real().unwrap(), -3.0);
        assert_eq!(top("5 round").as_int().unwrap(), 5);
    }

    #[test]
    fn transcendental() {
        assert!((top("2 ln").as_real().unwrap() - 2f64.ln()).abs() < 1e-12);
        assert!((top("100 log").as_real().unwrap() - 2.0).abs() < 1e-12);
        assert!((top("2 10 exp").as_real().unwrap() - 1024.0).abs() < 1e-9);
        assert!((top("90 sin").as_real().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bool_and_bit_ops() {
        assert!(top("true false or").as_bool().unwrap());
        assert!(!top("true false and").as_bool().unwrap());
        assert!(top("true false xor").as_bool().unwrap());
        assert_eq!(top("12 10 and").as_int().unwrap(), 8);
        assert_eq!(top("12 10 or").as_int().unwrap(), 14);
        assert_eq!(top("1 not").as_int().unwrap(), -2);
        assert_eq!(top("1 4 bitshift").as_int().unwrap(), 16);
        assert_eq!(top("16 -4 bitshift").as_int().unwrap(), 1);
    }

    #[test]
    fn comparisons() {
        assert!(top("1 2 lt").as_bool().unwrap());
        assert!(top("2 2 le").as_bool().unwrap());
        assert!(top("3 2 gt").as_bool().unwrap());
        assert!(top("(abc) (abd) lt").as_bool().unwrap());
        assert!(top("1 1.0 eq").as_bool().unwrap());
        assert!(top("(a) (b) ne").as_bool().unwrap());
    }
}
