//! The lexical scanner.
//!
//! The scanner turns program text into [`Object`]s: numbers (including
//! radix forms like `16#000023d8`), strings `(...)` with nesting and
//! escapes, literal names `/name`, executable names, procedures `{...}`
//! (scanned whole, recursively), and the punctuation names `[`, `]`, `<<`,
//! `>>` which are handled by ordinary operators.
//!
//! Deferred lexing (paper, Sec. 5): a symbol-table emitter can quote
//! PostScript code in parentheses; the scanner then reads it as a plain
//! string — *fast* — and the code is only scanned for real when the string
//! is later executed (`cvx exec`). The paper measured a 40% reduction in
//! symbol-table reading time from this technique; `ldb-bench`'s `e4_deferral`
//! binary reproduces the measurement.

use std::rc::Rc;

use crate::error::{syntax, ErrorKind, PsError, PsResult};
use crate::object::Object;

/// Longest string or name token the scanner will build, in bytes. Deferred
/// symbol tables quote whole procedure bodies in parentheses, so the cap
/// is generous — but finite, so an unterminated string on an endless pipe
/// cannot wedge the scanner or exhaust memory.
pub const MAX_TOKEN_BYTES: usize = 8 << 20;

/// Most elements one scanned procedure may hold (nesting is capped
/// separately at 120 levels).
pub const MAX_PROC_ELEMS: usize = 1 << 20;

fn limit(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::LimitCheck, detail)
}

/// A source of characters for the scanner. Strings and byte streams (pipes
/// from the expression server) both implement this.
pub trait CharSource {
    /// The next character, `None` at end of input.
    ///
    /// # Errors
    /// I/O errors from stream-backed sources.
    fn next_char(&mut self) -> PsResult<Option<char>>;
}

/// A [`CharSource`] over an owned immutable string.
#[derive(Debug)]
pub struct StrSource {
    s: Rc<str>,
    pos: usize,
}

impl StrSource {
    /// Scan from the given string.
    pub fn new(s: Rc<str>) -> Self {
        StrSource { s, pos: 0 }
    }
}

impl CharSource for StrSource {
    fn next_char(&mut self) -> PsResult<Option<char>> {
        match self.s[self.pos..].chars().next() {
            Some(c) => {
                self.pos += c.len_utf8();
                Ok(Some(c))
            }
            None => Ok(None),
        }
    }
}

/// A [`CharSource`] over a byte stream (e.g. the expression-server pipe).
/// Bytes are interpreted as Latin-1; the debugger's streams are ASCII.
pub struct ReadSource {
    inner: Box<dyn std::io::Read>,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
}

impl std::fmt::Debug for ReadSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReadSource {{ buffered: {} }}", self.len - self.pos)
    }
}

impl ReadSource {
    /// Scan from a reader. Reads are done in small chunks so that pipe-backed
    /// readers do not block waiting to fill a large buffer.
    pub fn new(inner: Box<dyn std::io::Read>) -> Self {
        ReadSource { inner, buf: vec![0; 512], pos: 0, len: 0 }
    }
}

impl CharSource for ReadSource {
    fn next_char(&mut self) -> PsResult<Option<char>> {
        if self.pos == self.len {
            match self.inner.read(&mut self.buf) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    self.len = n;
                    self.pos = 0;
                }
                Err(e) => return Err(PsError::runtime(ErrorKind::IoError, e.to_string())),
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b as char))
    }
}

/// Is `c` a PostScript delimiter (self-delimiting punctuation)?
fn is_delim(c: char) -> bool {
    matches!(c, '(' | ')' | '<' | '>' | '[' | ']' | '{' | '}' | '/' | '%')
}

/// Is `c` PostScript whitespace?
fn is_space(c: char) -> bool {
    matches!(c, ' ' | '\t' | '\r' | '\n' | '\x0c' | '\0')
}

/// The scanner: pulls tokens one at a time from a [`CharSource`].
///
/// The scanner keeps its state between calls, so a single scanner can sit on
/// an open pipe and deliver tokens as they arrive — this is how ldb applies
/// `cvx stopped` to the expression-server connection.
pub struct Scanner {
    src: Box<dyn CharSource>,
    peeked: Option<char>,
    /// Bytes consumed from the source (token provenance: "module X near
    /// byte N"). Counts UTF-8 lengths for string sources, raw bytes for
    /// stream sources.
    consumed: u64,
    /// Count of string tokens scanned (used by the deferral benchmark).
    pub strings_scanned: u64,
    /// Count of procedure tokens scanned eagerly.
    pub procs_scanned: u64,
}

impl std::fmt::Debug for Scanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scanner {{ strings: {}, procs: {} }}", self.strings_scanned, self.procs_scanned)
    }
}

impl Scanner {
    /// A scanner over any character source.
    pub fn new(src: Box<dyn CharSource>) -> Self {
        Scanner { src, peeked: None, consumed: 0, strings_scanned: 0, procs_scanned: 0 }
    }

    /// A scanner over a string.
    #[allow(clippy::should_implement_trait)] // fallible trait impl does not fit
    pub fn from_str(s: impl Into<Rc<str>>) -> Self {
        Scanner::new(Box::new(StrSource::new(s.into())))
    }

    /// Bytes consumed from the source so far — where in an artifact the
    /// scanner is, for error provenance. At a token boundary this may sit
    /// one delimiter character past the token just returned.
    pub fn position(&self) -> u64 {
        self.consumed
    }

    fn next_char(&mut self) -> PsResult<Option<char>> {
        if let Some(c) = self.peeked.take() {
            return Ok(Some(c));
        }
        let c = self.src.next_char()?;
        if let Some(c) = c {
            self.consumed += c.len_utf8() as u64;
        }
        Ok(c)
    }

    fn unread(&mut self, c: char) {
        debug_assert!(self.peeked.is_none());
        self.peeked = Some(c);
    }

    /// Scan the next token. `Ok(None)` at end of input.
    ///
    /// # Errors
    /// Syntax errors (unterminated strings/procedures, malformed numbers
    /// fall back to names as in PostScript, so they do not error) and I/O
    /// errors from the underlying source.
    pub fn next_token(&mut self) -> PsResult<Option<Object>> {
        loop {
            let c = match self.next_char()? {
                None => return Ok(None),
                Some(c) => c,
            };
            if is_space(c) {
                continue;
            }
            match c {
                '%' => {
                    // Comment to end of line.
                    while let Some(c) = self.next_char()? {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                '(' => return Ok(Some(self.scan_string()?)),
                ')' => return Err(syntax("unmatched )")),
                '{' => return Ok(Some(self.scan_proc(0)?)),
                '}' => return Err(syntax("unmatched }")),
                '[' => return Ok(Some(Object::exec_name("["))),
                ']' => return Ok(Some(Object::exec_name("]"))),
                '<' => {
                    match self.next_char()? {
                        Some('<') => return Ok(Some(Object::exec_name("<<"))),
                        _ => return Err(syntax("hex strings are not in this dialect")),
                    }
                }
                '>' => {
                    match self.next_char()? {
                        Some('>') => return Ok(Some(Object::exec_name(">>"))),
                        _ => return Err(syntax("unmatched >")),
                    }
                }
                '/' => {
                    let name = self.scan_name_chars()?;
                    return Ok(Some(Object::name(name)));
                }
                _ => {
                    let mut word = String::new();
                    word.push(c);
                    word.push_str(&self.scan_name_chars()?);
                    return Ok(Some(classify_word(&word)));
                }
            }
        }
    }

    /// Scan the remaining characters of a name (after the first).
    fn scan_name_chars(&mut self) -> PsResult<String> {
        let mut s = String::new();
        while let Some(c) = self.next_char()? {
            if is_space(c) || is_delim(c) {
                self.unread(c);
                break;
            }
            s.push(c);
            if s.len() > MAX_TOKEN_BYTES {
                return Err(limit("name token too long"));
            }
        }
        Ok(s)
    }

    /// Scan a string body; the opening `(` has been consumed.
    fn scan_string(&mut self) -> PsResult<Object> {
        self.strings_scanned += 1;
        let mut s = String::new();
        let mut depth = 1usize;
        loop {
            if s.len() > MAX_TOKEN_BYTES {
                return Err(limit("string token too long"));
            }
            let c = self.next_char()?.ok_or_else(|| syntax("unterminated string"))?;
            match c {
                '(' => {
                    depth += 1;
                    s.push(c);
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(Object::string(s));
                    }
                    s.push(c);
                }
                '\\' => {
                    let e = self.next_char()?.ok_or_else(|| syntax("unterminated escape"))?;
                    match e {
                        'n' => s.push('\n'),
                        'r' => s.push('\r'),
                        't' => s.push('\t'),
                        'b' => s.push('\u{8}'),
                        'f' => s.push('\u{c}'),
                        '\\' => s.push('\\'),
                        '(' => s.push('('),
                        ')' => s.push(')'),
                        '\n' => {} // line continuation
                        '0'..='7' => {
                            let mut v = e as u32 - '0' as u32;
                            for _ in 0..2 {
                                match self.next_char()? {
                                    Some(d @ '0'..='7') => v = v * 8 + (d as u32 - '0' as u32),
                                    Some(other) => {
                                        self.unread(other);
                                        break;
                                    }
                                    None => break,
                                }
                            }
                            s.push((v as u8) as char);
                        }
                        other => s.push(other),
                    }
                }
                _ => s.push(c),
            }
        }
    }

    /// Scan a procedure body; the opening `{` has been consumed. `depth`
    /// guards against pathological nesting (the scanner recurses per
    /// level).
    fn scan_proc(&mut self, depth: u32) -> PsResult<Object> {
        if depth > 120 {
            return Err(syntax("procedure nesting too deep"));
        }
        self.procs_scanned += 1;
        let mut body = Vec::new();
        loop {
            if body.len() > MAX_PROC_ELEMS {
                return Err(limit("procedure has too many elements"));
            }
            let c = match self.next_char()? {
                None => return Err(syntax("unterminated procedure")),
                Some(c) => c,
            };
            if is_space(c) {
                continue;
            }
            match c {
                '}' => return Ok(Object::proc(body)),
                '%' => {
                    while let Some(c) = self.next_char()? {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                '{' => body.push(self.scan_proc(depth + 1)?),
                '(' => body.push(self.scan_string()?),
                '[' => body.push(Object::exec_name("[")),
                ']' => body.push(Object::exec_name("]")),
                '<' => match self.next_char()? {
                    Some('<') => body.push(Object::exec_name("<<")),
                    _ => return Err(syntax("hex strings are not in this dialect")),
                },
                '>' => match self.next_char()? {
                    Some('>') => body.push(Object::exec_name(">>")),
                    _ => return Err(syntax("unmatched >")),
                },
                ')' => return Err(syntax("unmatched ) in procedure")),
                '/' => {
                    let name = self.scan_name_chars()?;
                    body.push(Object::name(name));
                }
                _ => {
                    let mut word = String::new();
                    word.push(c);
                    word.push_str(&self.scan_name_chars()?);
                    body.push(classify_word(&word));
                }
            }
        }
    }
}

/// Classify a bare word: integer, radix integer, real, or executable name.
fn classify_word(word: &str) -> Object {
    if let Some(o) = parse_number(word) {
        return o;
    }
    Object::exec_name(word)
}

/// Parse a PostScript number: decimal integer, `base#digits` radix integer,
/// or real (with optional exponent). Returns `None` when `word` is a name.
pub fn parse_number(word: &str) -> Option<Object> {
    if word.is_empty() {
        return None;
    }
    // Radix form: base#digits, base in 2..=36.
    if let Some(hash) = word.find('#') {
        let (base_s, digits) = (&word[..hash], &word[hash + 1..]);
        let base: u32 = base_s.parse().ok()?;
        if !(2..=36).contains(&base) || digits.is_empty() {
            return None;
        }
        let v = i64::from_str_radix(digits, base).ok()?;
        return Some(Object::int(v));
    }
    let bytes = word.as_bytes();
    let rest = match bytes[0] {
        b'+' | b'-' => &word[1..],
        _ => word,
    };
    if rest.is_empty() {
        return None;
    }
    if !rest.bytes().next().map(|b| b.is_ascii_digit() || b == b'.').unwrap_or(false) {
        return None;
    }
    if let Ok(i) = word.parse::<i64>() {
        return Some(Object::int(i));
    }
    // Reals must consist only of digits, '.', 'e'/'E', and sign characters.
    if word
        .bytes()
        .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        if let Ok(r) = word.parse::<f64>() {
            return Some(Object::real(r));
        }
        // ".5" and "-.5" are valid PostScript but also valid for Rust parse;
        // bare "." is not a number.
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Value;

    fn scan_all(s: &str) -> Vec<Object> {
        let mut sc = Scanner::from_str(s);
        let mut v = Vec::new();
        while let Some(t) = sc.next_token().unwrap() {
            v.push(t);
        }
        v
    }

    #[test]
    fn numbers() {
        let ts = scan_all("1 -7 +42 3.14 -.5 1e3 16#ff 2#1010 8#777");
        let vals: Vec<_> = ts.iter().map(|o| o.to_text()).collect();
        assert_eq!(vals, vec!["1", "-7", "42", "3.14", "-0.5", "1000.0", "255", "10", "511"]);
    }

    #[test]
    fn names_and_literal_names() {
        let ts = scan_all("/foo bar /S10 a-b &elemsize");
        assert!(!ts[0].exec);
        assert!(ts[1].exec);
        assert_eq!(ts[2].as_name().unwrap().as_ref(), "S10");
        assert_eq!(ts[3].to_text(), "a-b");
        assert_eq!(ts[4].to_text(), "&elemsize");
    }

    #[test]
    fn minus_alone_is_a_name() {
        let ts = scan_all("- -- 4#");
        assert!(matches!(ts[0].val, Value::Name(_)));
        assert!(matches!(ts[1].val, Value::Name(_)));
        assert!(matches!(ts[2].val, Value::Name(_)));
    }

    #[test]
    fn strings_with_nesting_and_escapes() {
        let ts = scan_all(r"(hello (nested) world) (a\nb) (oct\101al) (paren\))");
        assert_eq!(ts[0].as_string().unwrap().as_ref(), "hello (nested) world");
        assert_eq!(ts[1].as_string().unwrap().as_ref(), "a\nb");
        assert_eq!(ts[2].as_string().unwrap().as_ref(), "octAal");
        assert_eq!(ts[3].as_string().unwrap().as_ref(), "paren)");
    }

    #[test]
    fn procedures_scan_recursively() {
        let ts = scan_all("{1 2 add {3} if}");
        assert!(ts[0].is_proc());
        let body = ts[0].as_array().unwrap();
        let body = body.borrow();
        assert_eq!(body.len(), 5);
        assert!(body[3].is_proc());
    }

    #[test]
    fn comments_skipped() {
        let ts = scan_all("1 % a comment\n2");
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn dict_brackets() {
        let ts = scan_all("<< /a 1 >> [ ]");
        assert_eq!(ts[0].to_text(), "<<");
        assert_eq!(ts[3].to_text(), ">>");
        assert_eq!(ts[4].to_text(), "[");
        assert_eq!(ts[5].to_text(), "]");
    }

    #[test]
    fn unterminated_string_is_syntax_error() {
        let mut sc = Scanner::from_str("(abc");
        assert!(sc.next_token().is_err());
    }

    #[test]
    fn unterminated_proc_is_syntax_error() {
        let mut sc = Scanner::from_str("{1 2");
        assert!(sc.next_token().is_err());
    }

    #[test]
    fn deferral_counts_strings_not_procs() {
        let mut sc = Scanner::from_str("(1 2 add) {1 2 add}");
        sc.next_token().unwrap();
        sc.next_token().unwrap();
        assert_eq!(sc.strings_scanned, 1);
        assert_eq!(sc.procs_scanned, 1);
    }

    #[test]
    fn radix_16_loader_table_addresses() {
        let ts = scan_all("16#00002270 16#000023d8");
        assert_eq!(ts[0].as_int().unwrap(), 0x2270);
        assert_eq!(ts[1].as_int().unwrap(), 0x23d8);
    }

    #[test]
    fn names_with_delimiters_split() {
        let ts = scan_all("foo(bar)baz");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].to_text(), "foo");
        assert_eq!(ts[1].as_string().unwrap().as_ref(), "bar");
        assert_eq!(ts[2].to_text(), "baz");
    }
}
