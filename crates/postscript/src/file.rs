//! File objects: executable token streams.
//!
//! ldb treats the pipe from the expression server as a PostScript file and
//! applies `cvx stopped` to it: the interpreter executes tokens as they
//! arrive until the server's trailing `ExpressionServer.result` executes
//! `stop`. Because a [`PsFile`] owns a persistent [`Scanner`], execution can
//! resume exactly where it left off for the next expression.

use std::rc::Rc;

use crate::error::PsResult;
use crate::object::Object;
use crate::scanner::{CharSource, ReadSource, Scanner, StrSource};

/// An executable token stream.
pub struct PsFile {
    scanner: Scanner,
    /// Set once the underlying source reports end of input.
    at_eof: bool,
    name: String,
}

impl std::fmt::Debug for PsFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "-file:{}-", self.name)
    }
}

impl PsFile {
    /// A file over an arbitrary character source.
    pub fn new(name: impl Into<String>, src: Box<dyn CharSource>) -> Self {
        PsFile { scanner: Scanner::new(src), at_eof: false, name: name.into() }
    }

    /// A file over a byte stream, e.g. a pipe.
    pub fn from_reader(name: impl Into<String>, r: Box<dyn std::io::Read>) -> Self {
        PsFile::new(name, Box::new(ReadSource::new(r)))
    }

    /// A file over a string (useful in tests).
    pub fn from_str(name: impl Into<String>, s: impl Into<Rc<str>>) -> Self {
        PsFile::new(name, Box::new(StrSource::new(s.into())))
    }

    /// The next token, or `None` at end of stream.
    ///
    /// # Errors
    /// Propagates scan and I/O errors.
    pub fn next_token(&mut self) -> PsResult<Option<Object>> {
        if self.at_eof {
            return Ok(None);
        }
        let t = self.scanner.next_token()?;
        if t.is_none() {
            self.at_eof = true;
        }
        Ok(t)
    }

    /// Has the stream ended?
    pub fn at_eof(&self) -> bool {
        self.at_eof
    }

    /// The name given at construction (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_then_eof() {
        let mut f = PsFile::from_str("t", "1 2");
        assert_eq!(f.next_token().unwrap().unwrap().as_int().unwrap(), 1);
        assert!(!f.at_eof());
        assert_eq!(f.next_token().unwrap().unwrap().as_int().unwrap(), 2);
        assert!(f.next_token().unwrap().is_none());
        assert!(f.at_eof());
        assert!(f.next_token().unwrap().is_none());
    }
}
