//! Dictionaries.
//!
//! Dictionaries are the workhorse of the dialect: symbol-table entries, type
//! descriptors, loader tables, and the per-architecture rebinding
//! dictionaries are all dictionaries. Iteration order is insertion order so
//! that `forall` and symbol-table dumps are deterministic.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::error::{type_check, PsResult};
use crate::object::{Object, Value};

/// A dictionary key. PostScript allows most objects as keys; in practice the
/// debugger uses names (string keys convert to names, as in PostScript).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// A name key (also produced by string keys).
    Name(Rc<str>),
    /// An integer key.
    Int(i64),
    /// A boolean key.
    Bool(bool),
}

impl Key {
    /// Convert an object to a key per PostScript rules.
    ///
    /// # Errors
    /// Typecheck for objects that cannot be keys (arrays, dicts, marks...).
    pub fn from_object(o: &Object) -> PsResult<Key> {
        match &o.val {
            Value::Name(n) => Ok(Key::Name(Rc::clone(n))),
            Value::String(s) => Ok(Key::Name(Rc::clone(s))),
            Value::Int(i) => Ok(Key::Int(*i)),
            Value::Bool(b) => Ok(Key::Bool(*b)),
            Value::Real(r) if r.fract() == 0.0 => Ok(Key::Int(*r as i64)),
            other => Err(type_check(format!("invalid dict key: {other:?}"))),
        }
    }

    /// Convenience constructor from a `&str`.
    pub fn name(s: &str) -> Key {
        Key::Name(Rc::from(s))
    }

    /// Render the key as an object (names come back as literal names).
    pub fn to_object(&self) -> Object {
        match self {
            Key::Name(n) => Object::name(Rc::clone(n)),
            Key::Int(i) => Object::int(*i),
            Key::Bool(b) => Object::bool(*b),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Name(n) => write!(f, "/{n}"),
            Key::Int(i) => write!(f, "{i}"),
            Key::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A dictionary with insertion-ordered iteration.
#[derive(Default, Clone)]
pub struct Dict {
    map: HashMap<Key, usize>,
    entries: Vec<(Key, Object)>,
}

impl Dict {
    /// An empty dictionary. `capacity` is advisory, as in the `dict` operator.
    pub fn new(capacity: usize) -> Dict {
        Dict { map: HashMap::with_capacity(capacity), entries: Vec::with_capacity(capacity) }
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a key.
    pub fn get(&self, key: &Key) -> Option<&Object> {
        self.map.get(key).map(|&i| &self.entries[i].1)
    }

    /// Look up by name, the common case.
    pub fn get_name(&self, name: &str) -> Option<&Object> {
        // Avoid allocating an Rc for the probe by scanning the map's raw
        // entry; HashMap requires an owned Key, so probe with a borrowed
        // equivalent via iteration only when small, else allocate.
        self.get(&Key::Name(Rc::from(name)))
    }

    /// Insert or replace.
    pub fn put(&mut self, key: Key, value: Object) {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i].1 = value;
        } else {
            self.map.insert(key.clone(), self.entries.len());
            self.entries.push((key, value));
        }
    }

    /// Insert by name.
    pub fn put_name(&mut self, name: &str, value: Object) {
        self.put(Key::name(name), value);
    }

    /// Remove a key (`undef`). Returns the removed value if present.
    pub fn remove(&mut self, key: &Key) -> Option<Object> {
        let i = self.map.remove(key)?;
        let (_, v) = self.entries.remove(i);
        for idx in self.map.values_mut() {
            if *idx > i {
                *idx -= 1;
            }
        }
        Some(v)
    }

    /// Does the dictionary contain `key`?
    pub fn contains(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Key, Object)> {
        self.entries.iter()
    }
}

impl fmt::Debug for Dict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{k} {v:?}")?;
        }
        write!(f, ">>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_replace() {
        let mut d = Dict::new(4);
        d.put_name("a", Object::int(1));
        d.put_name("b", Object::int(2));
        d.put_name("a", Object::int(3));
        assert_eq!(d.len(), 2);
        assert_eq!(d.get_name("a").unwrap().as_int().unwrap(), 3);
        assert_eq!(d.get_name("b").unwrap().as_int().unwrap(), 2);
        assert!(d.get_name("c").is_none());
    }

    #[test]
    fn insertion_order_preserved() {
        let mut d = Dict::new(4);
        for (i, k) in ["z", "m", "a"].iter().enumerate() {
            d.put_name(k, Object::int(i as i64));
        }
        let keys: Vec<String> = d.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["/z", "/m", "/a"]);
    }

    #[test]
    fn remove_keeps_indices_consistent() {
        let mut d = Dict::new(4);
        d.put_name("a", Object::int(1));
        d.put_name("b", Object::int(2));
        d.put_name("c", Object::int(3));
        assert!(d.remove(&Key::name("a")).is_some());
        assert_eq!(d.get_name("b").unwrap().as_int().unwrap(), 2);
        assert_eq!(d.get_name("c").unwrap().as_int().unwrap(), 3);
        assert_eq!(d.len(), 2);
        assert!(d.remove(&Key::name("a")).is_none());
    }

    #[test]
    fn string_keys_convert_to_names() {
        let k1 = Key::from_object(&Object::string("x")).unwrap();
        let k2 = Key::from_object(&Object::name("x")).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn invalid_keys_rejected() {
        assert!(Key::from_object(&Object::mark()).is_err());
        assert!(Key::from_object(&Object::array(vec![])).is_err());
    }

    #[test]
    fn integral_real_keys_fold_to_int() {
        let k = Key::from_object(&Object::real(4.0)).unwrap();
        assert_eq!(k, Key::Int(4));
        assert!(Key::from_object(&Object::real(4.5)).is_err());
    }
}
