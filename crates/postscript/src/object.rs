//! The PostScript object model.
//!
//! Every object carries a *literal/executable* attribute, exactly as in
//! PostScript: "Every PostScript object has an attribute that tells
//! explicitly whether the object is literal or executable; the distinction
//! need not be inferred from context" (paper, Sec. 5). The dialect follows
//! the paper's deviations from Adobe PostScript:
//!
//! * strings are **immutable** (no `put`/`putinterval` on strings),
//! * there are no `save`/`restore` operators (the host GC reclaims memory),
//! * there are no substrings or subarrays (`getinterval` is absent),
//! * fonts and imaging types are absent,
//! * new types support debugging: **locations** and **host objects**
//!   (abstract memories, nub connections, prettyprinters).

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::dict::Dict;
use crate::error::{type_check, PsResult};
use crate::file::PsFile;
use crate::interp::Interp;

/// A shared, mutable PostScript array.
pub type Arr = Rc<RefCell<Vec<Object>>>;
/// A shared, mutable PostScript dictionary.
pub type DictRef = Rc<RefCell<Dict>>;

/// The function implementing an operator.
pub type OpFn = Rc<dyn Fn(&mut Interp) -> PsResult<()>>;

/// A named operator. Built-in operators and host-registered closures (the
/// debugging operators ldb adds, such as `Fetch32` or `LazyData`) share this
/// representation.
#[derive(Clone)]
pub struct Operator {
    /// The name under which the operator was registered.
    pub name: Rc<str>,
    /// The implementation.
    pub f: OpFn,
}

impl fmt::Debug for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "--{}--", self.name)
    }
}

impl PartialEq for Operator {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.f, &other.f)
    }
}

/// Objects supplied by the embedding application (the debugger).
///
/// ldb registers abstract memories, target handles, and the prettyprinter as
/// host objects; its debugging operators downcast via [`HostObject::as_any`].
pub trait HostObject: fmt::Debug {
    /// A short type tag, reported by the `type` operator as `/<tag>type`.
    fn type_name(&self) -> &'static str;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
}

/// An addressing mode plus coordinates: the dialect's machine-independent
/// representation of "where a value lives" (paper, Sec. 4.1).
///
/// A location either names an offset within a *space* of an abstract memory
/// (spaces are single letters: `d` data, `c` code, `r` registers, `f`
/// floating-point registers, `x` extra registers), or holds an immediate
/// value outright — fetches from immediate locations return the value.
#[derive(Debug, Clone, PartialEq)]
pub enum Location {
    /// An absolute offset within a named space.
    Addr {
        /// The space letter.
        space: char,
        /// Byte offset (register spaces: register index).
        offset: i64,
    },
    /// An immediate value; `Fetch*` returns it unchanged.
    Immediate(Box<Object>),
}

impl Location {
    /// The location `offset` bytes beyond `self`.
    ///
    /// # Errors
    /// Returns a typecheck error when applied to an immediate location.
    pub fn shifted(&self, delta: i64) -> PsResult<Location> {
        match self {
            Location::Addr { space, offset } => Ok(Location::Addr {
                space: *space,
                offset: offset.wrapping_add(delta),
            }),
            Location::Immediate(_) => Err(type_check("Shifted: immediate location")),
        }
    }
}

/// The value part of an object.
#[derive(Clone)]
pub enum Value {
    /// The distinguished null value.
    Null,
    /// A stack mark, as pushed by `mark`, `[`, and `<<`.
    Mark,
    /// Booleans `true` / `false`.
    Bool(bool),
    /// Integers. The dialect uses 64-bit host integers; target values are
    /// 8/16/32-bit and are widened on fetch.
    Int(i64),
    /// Reals.
    Real(f64),
    /// An immutable string.
    String(Rc<str>),
    /// An (interned-by-content) name.
    Name(Rc<str>),
    /// An array; procedures are arrays with the executable attribute.
    Array(Arr),
    /// A dictionary.
    Dict(DictRef),
    /// An operator.
    Operator(Operator),
    /// A token stream (the expression-server pipe is one of these).
    File(Rc<RefCell<PsFile>>),
    /// A location within an abstract memory.
    Location(Location),
    /// A host (debugger-supplied) object.
    Host(Rc<dyn HostObject>),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Mark => write!(f, "-mark-"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r:?}"),
            Value::String(s) => write!(f, "({s})"),
            Value::Name(n) => write!(f, "/{n}"),
            Value::Array(a) => write!(f, "-array:{}-", a.borrow().len()),
            Value::Dict(d) => write!(f, "-dict:{}-", d.borrow().len()),
            Value::Operator(op) => write!(f, "{op:?}"),
            Value::File(_) => write!(f, "-file-"),
            Value::Location(l) => write!(f, "{l:?}"),
            Value::Host(h) => write!(f, "-host:{}-", h.type_name()),
        }
    }
}

/// A PostScript object: a value plus the executable attribute.
///
/// Equality combines [`Object::ps_eq`] (the `eq` operator's rules) with the
/// executable attribute; it exists mainly so [`Location`]s can be compared.
#[derive(Clone, Debug)]
pub struct Object {
    /// The payload.
    pub val: Value,
    /// `true` when the object is executable (`cvx`), `false` when literal.
    pub exec: bool,
}

impl PartialEq for Object {
    fn eq(&self, other: &Self) -> bool {
        self.exec == other.exec && self.ps_eq(other)
    }
}

impl Object {
    /// A literal object.
    pub fn lit(val: Value) -> Self {
        Object { val, exec: false }
    }

    /// An executable object.
    pub fn ex(val: Value) -> Self {
        Object { val, exec: true }
    }

    /// Literal integer.
    pub fn int(i: i64) -> Self {
        Object::lit(Value::Int(i))
    }

    /// Literal real.
    pub fn real(r: f64) -> Self {
        Object::lit(Value::Real(r))
    }

    /// Literal boolean.
    pub fn bool(b: bool) -> Self {
        Object::lit(Value::Bool(b))
    }

    /// Literal string.
    pub fn string(s: impl Into<Rc<str>>) -> Self {
        Object::lit(Value::String(s.into()))
    }

    /// Literal name (`/name`).
    pub fn name(s: impl Into<Rc<str>>) -> Self {
        Object::lit(Value::Name(s.into()))
    }

    /// Executable name (`name`).
    pub fn exec_name(s: impl Into<Rc<str>>) -> Self {
        Object::ex(Value::Name(s.into()))
    }

    /// Literal null.
    pub fn null() -> Self {
        Object::lit(Value::Null)
    }

    /// The mark object.
    pub fn mark() -> Self {
        Object::lit(Value::Mark)
    }

    /// A new literal array from a vector.
    pub fn array(v: Vec<Object>) -> Self {
        Object::lit(Value::Array(Rc::new(RefCell::new(v))))
    }

    /// A new procedure (executable array) from a vector.
    pub fn proc(v: Vec<Object>) -> Self {
        Object::ex(Value::Array(Rc::new(RefCell::new(v))))
    }

    /// A new literal dictionary object.
    pub fn dict(d: Dict) -> Self {
        Object::lit(Value::Dict(Rc::new(RefCell::new(d))))
    }

    /// A literal location.
    pub fn location(l: Location) -> Self {
        Object::lit(Value::Location(l))
    }

    /// A literal host object.
    pub fn host(h: Rc<dyn HostObject>) -> Self {
        Object::lit(Value::Host(h))
    }

    /// The `type` operator's name for this object.
    pub fn type_name(&self) -> String {
        match &self.val {
            Value::Null => "nulltype".to_string(),
            Value::Mark => "marktype".to_string(),
            Value::Bool(_) => "booleantype".to_string(),
            Value::Int(_) => "integertype".to_string(),
            Value::Real(_) => "realtype".to_string(),
            Value::String(_) => "stringtype".to_string(),
            Value::Name(_) => "nametype".to_string(),
            Value::Array(_) => "arraytype".to_string(),
            Value::Dict(_) => "dicttype".to_string(),
            Value::Operator(_) => "operatortype".to_string(),
            Value::File(_) => "filetype".to_string(),
            Value::Location(_) => "locationtype".to_string(),
            Value::Host(h) => format!("{}type", h.type_name()),
        }
    }

    /// Is this a procedure (executable array)?
    pub fn is_proc(&self) -> bool {
        self.exec && matches!(self.val, Value::Array(_))
    }

    /// Extract an integer operand.
    ///
    /// # Errors
    /// Typecheck unless the value is an integer.
    pub fn as_int(&self) -> PsResult<i64> {
        match self.val {
            Value::Int(i) => Ok(i),
            _ => Err(type_check(format!("expected integer, got {:?}", self.val))),
        }
    }

    /// Extract a numeric operand, widening integers to reals.
    ///
    /// # Errors
    /// Typecheck unless the value is numeric.
    pub fn as_real(&self) -> PsResult<f64> {
        match self.val {
            Value::Int(i) => Ok(i as f64),
            Value::Real(r) => Ok(r),
            _ => Err(type_check(format!("expected number, got {:?}", self.val))),
        }
    }

    /// Extract a boolean operand.
    ///
    /// # Errors
    /// Typecheck unless the value is a boolean.
    pub fn as_bool(&self) -> PsResult<bool> {
        match self.val {
            Value::Bool(b) => Ok(b),
            _ => Err(type_check(format!("expected boolean, got {:?}", self.val))),
        }
    }

    /// Extract a string operand.
    ///
    /// # Errors
    /// Typecheck unless the value is a string.
    pub fn as_string(&self) -> PsResult<Rc<str>> {
        match &self.val {
            Value::String(s) => Ok(Rc::clone(s)),
            _ => Err(type_check(format!("expected string, got {:?}", self.val))),
        }
    }

    /// Extract a name operand.
    ///
    /// # Errors
    /// Typecheck unless the value is a name.
    pub fn as_name(&self) -> PsResult<Rc<str>> {
        match &self.val {
            Value::Name(n) => Ok(Rc::clone(n)),
            _ => Err(type_check(format!("expected name, got {:?}", self.val))),
        }
    }

    /// Extract an array operand.
    ///
    /// # Errors
    /// Typecheck unless the value is an array.
    pub fn as_array(&self) -> PsResult<Arr> {
        match &self.val {
            Value::Array(a) => Ok(Rc::clone(a)),
            _ => Err(type_check(format!("expected array, got {:?}", self.val))),
        }
    }

    /// Extract a dictionary operand.
    ///
    /// # Errors
    /// Typecheck unless the value is a dictionary.
    pub fn as_dict(&self) -> PsResult<DictRef> {
        match &self.val {
            Value::Dict(d) => Ok(Rc::clone(d)),
            _ => Err(type_check(format!("expected dict, got {:?}", self.val))),
        }
    }

    /// Extract a location operand.
    ///
    /// # Errors
    /// Typecheck unless the value is a location.
    pub fn as_location(&self) -> PsResult<Location> {
        match &self.val {
            Value::Location(l) => Ok(l.clone()),
            _ => Err(type_check(format!("expected location, got {:?}", self.val))),
        }
    }

    /// Extract a host object and downcast it to `T`.
    ///
    /// # Errors
    /// Typecheck unless the value is a host object of dynamic type `T`.
    pub fn as_host<T: 'static>(&self) -> PsResult<Rc<dyn HostObject>> {
        match &self.val {
            Value::Host(h) if h.as_any().is::<T>() => Ok(Rc::clone(h)),
            Value::Host(h) => Err(type_check(format!(
                "expected host object of a different kind, got {}",
                h.type_name()
            ))),
            _ => Err(type_check(format!("expected host object, got {:?}", self.val))),
        }
    }

    /// Structural equality as the `eq` operator defines it: numbers compare
    /// by value across int/real, strings and names compare by content
    /// (including with each other), composites compare by identity.
    pub fn ps_eq(&self, other: &Object) -> bool {
        use Value::*;
        match (&self.val, &other.val) {
            (Null, Null) | (Mark, Mark) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Real(a), Real(b)) => a == b,
            (Int(a), Real(b)) | (Real(b), Int(a)) => (*a as f64) == *b,
            (String(a), String(b)) => a == b,
            (Name(a), Name(b)) => a == b,
            (String(a), Name(b)) | (Name(a), String(b)) => a == b,
            (Array(a), Array(b)) => Rc::ptr_eq(a, b),
            (Dict(a), Dict(b)) => Rc::ptr_eq(a, b),
            (Operator(a), Operator(b)) => a == b,
            (File(a), File(b)) => Rc::ptr_eq(a, b),
            (Location(a), Location(b)) => a == b,
            (Host(a), Host(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Render the object the way `cvs` does (value only, no syntax).
    pub fn to_text(&self) -> String {
        match &self.val {
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Real(r) => format_real(*r),
            Value::String(s) => s.to_string(),
            Value::Name(n) => n.to_string(),
            Value::Operator(op) => op.name.to_string(),
            _ => "--nostringval--".to_string(),
        }
    }

    /// Render the object the way `==` does (with syntax: `(str)`, `/name`,
    /// `[...]`, `{...}`). Dictionaries print as `-dict:N-` as in most
    /// interpreters; recursion is depth-limited.
    pub fn to_syntactic(&self) -> String {
        self.syntactic(4)
    }

    fn syntactic(&self, depth: usize) -> String {
        match &self.val {
            Value::String(s) => format!("({s})"),
            Value::Name(n) => {
                if self.exec {
                    n.to_string()
                } else {
                    format!("/{n}")
                }
            }
            Value::Array(a) => {
                let (open, close) = if self.exec { ("{", "}") } else { ("[", "]") };
                if depth == 0 {
                    return format!("{open}...{close}");
                }
                let inner: Vec<String> =
                    a.borrow().iter().map(|o| o.syntactic(depth - 1)).collect();
                format!("{open}{}{close}", inner.join(" "))
            }
            Value::Null => "null".to_string(),
            Value::Mark => "-mark-".to_string(),
            Value::Dict(d) => format!("-dict:{}-", d.borrow().len()),
            Value::Location(Location::Addr { space, offset }) => {
                format!("<loc {space}:{offset}>")
            }
            Value::Location(Location::Immediate(v)) => {
                format!("<imm {}>", v.syntactic(depth.saturating_sub(1)))
            }
            _ => self.to_text(),
        }
    }
}

/// Format a real the way PostScript writes them: always with a decimal
/// point or exponent so it re-reads as a real.
pub fn format_real(r: f64) -> String {
    if r.is_nan() {
        return "nan".to_string();
    }
    if r.is_infinite() {
        return if r > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    let s = format!("{r}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Convenience conversion for building operand-stack values from Rust.
impl From<i64> for Object {
    fn from(i: i64) -> Self {
        Object::int(i)
    }
}
impl From<f64> for Object {
    fn from(r: f64) -> Self {
        Object::real(r)
    }
}
impl From<bool> for Object {
    fn from(b: bool) -> Self {
        Object::bool(b)
    }
}
impl From<&str> for Object {
    fn from(s: &str) -> Self {
        Object::string(s)
    }
}
impl From<Location> for Object {
    fn from(l: Location) -> Self {
        Object::location(l)
    }
}

/// Helper: downcast a host object to a concrete type.
///
/// # Errors
/// Typecheck when the dynamic type does not match.
pub fn downcast_host<T: 'static>(h: &Rc<dyn HostObject>) -> PsResult<&T> {
    h.as_any()
        .downcast_ref::<T>()
        .ok_or_else(|| type_check(format!("host object is {}, not the expected kind", h.type_name())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_executable() {
        let n = Object::name("x");
        assert!(!n.exec);
        let e = Object::exec_name("x");
        assert!(e.exec);
        assert!(Object::proc(vec![]).is_proc());
        assert!(!Object::array(vec![]).is_proc());
    }

    #[test]
    fn ps_eq_numbers_cross_type() {
        assert!(Object::int(3).ps_eq(&Object::real(3.0)));
        assert!(!Object::int(3).ps_eq(&Object::real(3.5)));
    }

    #[test]
    fn ps_eq_strings_and_names() {
        assert!(Object::string("abc").ps_eq(&Object::name("abc")));
        assert!(!Object::string("abc").ps_eq(&Object::name("abd")));
    }

    #[test]
    fn ps_eq_composites_by_identity() {
        let a = Object::array(vec![Object::int(1)]);
        let b = Object::array(vec![Object::int(1)]);
        assert!(a.ps_eq(&a.clone()));
        assert!(!a.ps_eq(&b));
    }

    #[test]
    fn location_shift() {
        let l = Location::Addr { space: 'd', offset: 100 };
        assert_eq!(l.shifted(8).unwrap(), Location::Addr { space: 'd', offset: 108 });
        let imm = Location::Immediate(Box::new(Object::int(1)));
        assert!(imm.shifted(4).is_err());
    }

    #[test]
    fn syntactic_rendering() {
        assert_eq!(Object::string("hi").to_syntactic(), "(hi)");
        assert_eq!(Object::name("n").to_syntactic(), "/n");
        assert_eq!(Object::exec_name("n").to_syntactic(), "n");
        let p = Object::proc(vec![Object::int(1), Object::exec_name("add")]);
        assert_eq!(p.to_syntactic(), "{1 add}");
        let a = Object::array(vec![Object::int(1), Object::int(2)]);
        assert_eq!(a.to_syntactic(), "[1 2]");
    }

    #[test]
    fn real_formatting_roundtrips_as_real() {
        assert_eq!(format_real(1.0), "1.0");
        assert_eq!(format_real(1.5), "1.5");
        assert_eq!(format_real(-0.25), "-0.25");
    }

    #[test]
    fn type_names() {
        assert_eq!(Object::int(1).type_name(), "integertype");
        assert_eq!(Object::mark().type_name(), "marktype");
        assert_eq!(
            Object::location(Location::Addr { space: 'r', offset: 30 }).type_name(),
            "locationtype"
        );
    }
}
