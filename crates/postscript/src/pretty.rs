//! The prettyprinter behind the `Put`, `Break`, `Begin`, and `End` operators.
//!
//! The paper's dialect includes "an interface to a prettyprinter supplied
//! with Modula-3; the prettyprinter procedures are called by the PostScript
//! code that prints structured data" (Sec. 5). The ARRAY printer, for
//! instance, emits `({) Put ... (, ) Put 0 Break ... (}) Put` so long arrays
//! wrap at sensible points.
//!
//! The algorithm is a simple one-lookahead line filler: `Break n` records a
//! *potential* break with extra indent `n`; the next `Put` decides whether
//! to take it, based on whether the text fits the line width.

use crate::interp::Out;

/// Prettyprinter state.
#[derive(Debug)]
pub struct Pretty {
    out: Out,
    width: usize,
    col: usize,
    indents: Vec<usize>,
    pending_break: Option<usize>,
}

impl Pretty {
    /// A prettyprinter writing to `out` with the default 72-column width.
    pub fn new(out: Out) -> Self {
        Pretty { out, width: 72, col: 0, indents: vec![0], pending_break: None }
    }

    /// Redirect output.
    pub fn set_output(&mut self, out: Out) {
        self.out = out;
    }

    /// Change the line width.
    pub fn set_width(&mut self, width: usize) {
        self.width = width.max(8);
    }

    fn base_indent(&self) -> usize {
        *self.indents.last().expect("indent stack never empty")
    }

    /// `Put`: emit a string, honouring a pending break if the string would
    /// overflow the line.
    pub fn put(&mut self, s: &str) {
        if let Some(extra) = self.pending_break.take() {
            let first_line_len = s.split('\n').next().map_or(0, str::len);
            if self.col + first_line_len > self.width {
                let indent = self.base_indent() + extra;
                self.out.write_str("\n");
                self.out.write_str(&" ".repeat(indent));
                self.col = indent;
            }
        }
        for (i, piece) in s.split('\n').enumerate() {
            if i > 0 {
                self.out.write_str("\n");
                self.col = 0;
            }
            self.out.write_str(piece);
            self.col += piece.len();
        }
    }

    /// `Break n`: a potential line break with extra indent `n`.
    pub fn brk(&mut self, extra_indent: usize) {
        self.pending_break = Some(extra_indent);
    }

    /// `Begin n`: open a group whose continuation lines indent by `n` beyond
    /// the current group.
    pub fn begin(&mut self, extra_indent: usize) {
        let base = self.base_indent();
        self.indents.push(base + extra_indent);
    }

    /// `End`: close the innermost group.
    pub fn end(&mut self) {
        if self.indents.len() > 1 {
            self.indents.pop();
        }
    }

    /// Emit an unconditional newline and reset the column.
    pub fn newline(&mut self) {
        self.out.write_str("\n");
        self.col = 0;
        self.pending_break = None;
    }

    /// Current output column (for tests).
    pub fn column(&self) -> usize {
        self.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn capture() -> (Pretty, Rc<RefCell<String>>) {
        let buf = Rc::new(RefCell::new(String::new()));
        (Pretty::new(Out::Shared(Rc::clone(&buf))), buf)
    }

    #[test]
    fn fits_on_one_line() {
        let (mut p, buf) = capture();
        p.set_width(20);
        p.put("{");
        p.begin(2);
        for i in 0..3 {
            if i > 0 {
                p.put(", ");
                p.brk(0);
            }
            p.put(&i.to_string());
        }
        p.end();
        p.put("}");
        assert_eq!(buf.borrow().as_str(), "{0, 1, 2}");
    }

    #[test]
    fn wraps_with_group_indent() {
        let (mut p, buf) = capture();
        p.set_width(10);
        p.put("{");
        p.begin(2);
        for i in 0..6 {
            if i > 0 {
                p.put(", ");
                p.brk(0);
            }
            p.put(&format!("{}", i * 111));
        }
        p.end();
        p.put("}");
        let s = buf.borrow();
        assert!(s.contains('\n'), "should wrap: {s:?}");
        for line in s.lines().skip(1) {
            assert!(line.starts_with("  "), "continuation indented: {line:?}");
        }
    }

    #[test]
    fn newline_resets_column() {
        let (mut p, _buf) = capture();
        p.put("abc");
        assert_eq!(p.column(), 3);
        p.newline();
        assert_eq!(p.column(), 0);
    }

    #[test]
    fn end_never_underflows() {
        let (mut p, _buf) = capture();
        p.end();
        p.end();
        p.put("x"); // still works
    }
}
