//! Resource budgets for sandboxed execution.
//!
//! Symbol tables, type printers, and compiled expressions are *programs*
//! the debugger executes; their producers are not always trustworthy
//! (Hanson, *A Machine-Independent Debugger—Revisited*). A [`Budget`]
//! bounds what one execution may consume: **fuel** (execution steps,
//! charged at every operator call, name execution, procedure body, and
//! scanned token), **allocation** (approximate bytes charged by the
//! array/string/dict constructors), and **operand-stack depth**. Fuel
//! exhaustion surfaces as a `timeout` error, allocation exhaustion as
//! `vmerror`, and stack overflow as `limitcheck` — all typed
//! [`PsError`](crate::PsError)s that `stopped` can observe but, being
//! sticky until the budget is reset, cannot mask.

/// Resource limits for one execution. The default is [`Budget::UNLIMITED`]
/// — budgets are opt-in so trusted internal code (preludes, the debug
/// dictionary) runs unmetered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum execution steps (`u64::MAX` = unlimited).
    pub max_fuel: u64,
    /// Maximum bytes of charged allocation (`u64::MAX` = unlimited).
    pub max_alloc: u64,
    /// Maximum operand-stack depth. Operators that push many objects in
    /// one call (e.g. `copy`, `aload`) may overshoot by one call's worth;
    /// the check at the next execution step bounds the excess.
    pub max_operands: usize,
}

impl Budget {
    /// No limits (the interpreter's initial state).
    pub const UNLIMITED: Budget =
        Budget { max_fuel: u64::MAX, max_alloc: u64::MAX, max_operands: usize::MAX };

    /// A generous profile for loading symbol tables: large tables are
    /// legitimate, runaway ones are not.
    pub const LOAD: Budget =
        Budget { max_fuel: 50_000_000, max_alloc: 256 << 20, max_operands: 1 << 20 };

    /// A tight profile for interactive work (printing a value, one
    /// expression): anything that needs more than this is stuck.
    pub const INTERACTIVE: Budget =
        Budget { max_fuel: 5_000_000, max_alloc: 32 << 20, max_operands: 1 << 16 };

    /// Is any limit actually set?
    pub fn is_limited(&self) -> bool {
        *self != Budget::UNLIMITED
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::UNLIMITED
    }
}

/// Saved budget state, returned by
/// [`Interp::push_budget`](crate::Interp::push_budget) and consumed by
/// [`Interp::pop_budget`](crate::Interp::pop_budget).
#[derive(Debug, Clone, Copy)]
pub struct BudgetSave {
    pub(crate) budget: Budget,
    pub(crate) fuel_used: u64,
    pub(crate) alloc_used: u64,
}

/// Cumulative sandbox statistics for one interpreter (the `info ps`
/// report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetStats {
    /// Execution steps charged over the interpreter's lifetime.
    pub fuel_spent_total: u64,
    /// Bytes of allocation charged over the interpreter's lifetime.
    pub alloc_charged_total: u64,
    /// The largest allocation balance observed within any single budgeted
    /// run (peak, not cumulative).
    pub alloc_peak: u64,
    /// How many times a budget limit fired.
    pub budget_trips: u64,
    /// Fuel used under the currently installed budget.
    pub fuel_used: u64,
    /// Allocation used under the currently installed budget.
    pub alloc_used: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_default_and_unlimited() {
        assert_eq!(Budget::default(), Budget::UNLIMITED);
        assert!(!Budget::UNLIMITED.is_limited());
        assert!(Budget::LOAD.is_limited());
        assert!(Budget::INTERACTIVE.is_limited());
    }

    #[test]
    fn interactive_is_tighter_than_load() {
        const { assert!(Budget::INTERACTIVE.max_fuel < Budget::LOAD.max_fuel) }
        const { assert!(Budget::INTERACTIVE.max_alloc < Budget::LOAD.max_alloc) }
    }
}
