//! Interpreter errors.
//!
//! The paper's dialect maps interpreter errors onto Modula-3 exceptions; here
//! they are ordinary Rust [`Result`]s. The `stopped` operator catches both
//! explicit `stop` and runtime errors, exactly as ldb relies on when it
//! applies `cvx stopped` to the pipe from the expression server.

use std::fmt;

/// The result type used throughout the interpreter.
pub type PsResult<T> = Result<T, PsError>;

/// Everything that can abort execution of a PostScript object.
///
/// `Exit` and `Stop` are control flow, not errors: `exit` unwinds to the
/// nearest looping operator, `stop` unwinds to the nearest `stopped`.
#[derive(Debug, Clone, PartialEq)]
pub enum PsError {
    /// `exit` executed; caught by `for`, `loop`, `repeat`, `forall`.
    Exit,
    /// `stop` executed; caught by `stopped`.
    Stop,
    /// `quit` executed; terminates the whole interpretation.
    Quit,
    /// A genuine runtime error, caught by `stopped` like `stop` is.
    Runtime(RuntimeError),
}

/// Runtime error kinds, named after their PostScript counterparts.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Which class of error occurred.
    pub kind: ErrorKind,
    /// Human-readable context: usually the operator and offending operand.
    pub detail: String,
}

/// The PostScript error name under which a [`RuntimeError`] is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Operand of the wrong type.
    TypeCheck,
    /// Not enough operands.
    StackUnderflow,
    /// Name not found in the dictionary stack.
    Undefined,
    /// Operand outside the acceptable range.
    RangeCheck,
    /// Write to an immutable object (e.g. a string; strings are immutable
    /// in this dialect for compatibility with the host language).
    InvalidAccess,
    /// Arithmetic result cannot be represented (e.g. division by zero).
    UndefinedResult,
    /// Malformed program text.
    SyntaxError,
    /// An input/output failure, e.g. the expression-server pipe broke.
    IoError,
    /// Resource exhaustion: execution or dictionary stack overflow.
    LimitCheck,
    /// `end` with nothing left to pop, or unbalanced `}`/`]`/`>>`.
    DictStackUnderflow,
    /// An error raised by a host object (abstract memory, nub connection).
    HostError,
    /// Execution fuel exhausted (the sandbox's step budget ran out).
    Timeout,
    /// Allocation budget exhausted (the sandbox's byte budget ran out).
    VmError,
}

impl ErrorKind {
    /// The PostScript name of this error, as `$error /errorname` would hold.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::TypeCheck => "typecheck",
            ErrorKind::StackUnderflow => "stackunderflow",
            ErrorKind::Undefined => "undefined",
            ErrorKind::RangeCheck => "rangecheck",
            ErrorKind::InvalidAccess => "invalidaccess",
            ErrorKind::UndefinedResult => "undefinedresult",
            ErrorKind::SyntaxError => "syntaxerror",
            ErrorKind::IoError => "ioerror",
            ErrorKind::LimitCheck => "limitcheck",
            ErrorKind::DictStackUnderflow => "dictstackunderflow",
            ErrorKind::HostError => "hosterror",
            ErrorKind::Timeout => "timeout",
            ErrorKind::VmError => "vmerror",
        }
    }

    /// Is this a resource-budget error (fuel or allocation)? Budget errors
    /// are *sticky*: once raised, the interpreter re-raises on the next
    /// execution step until the budget is reset, so hostile code cannot
    /// absorb them with `stopped` and keep running.
    pub fn is_budget(self) -> bool {
        matches!(self, ErrorKind::Timeout | ErrorKind::VmError)
    }
}

impl PsError {
    /// Construct a runtime error with a detail message.
    pub fn runtime(kind: ErrorKind, detail: impl Into<String>) -> Self {
        PsError::Runtime(RuntimeError { kind, detail: detail.into() })
    }

    /// Is this a genuine error (as opposed to `exit`/`stop`/`quit` control flow)?
    pub fn is_runtime(&self) -> bool {
        matches!(self, PsError::Runtime(_))
    }

    /// Wrap a runtime error with artifact provenance: which module's
    /// PostScript raised it, and how far into the text the scanner was.
    /// Control-flow transfers (`exit`/`stop`/`quit`) pass through
    /// unchanged.
    #[must_use]
    pub fn with_context(self, module: &str, byte_offset: Option<u64>) -> Self {
        match self {
            PsError::Runtime(e) => {
                let at = match byte_offset {
                    Some(off) => format!(" near byte {off}"),
                    None => String::new(),
                };
                PsError::Runtime(RuntimeError {
                    kind: e.kind,
                    detail: format!("module {module}{at}: {}", e.detail),
                })
            }
            other => other,
        }
    }
}

impl fmt::Display for PsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsError::Exit => write!(f, "exit outside a loop"),
            PsError::Stop => write!(f, "stop outside stopped"),
            PsError::Quit => write!(f, "quit"),
            PsError::Runtime(e) => write!(f, "{}: {}", e.kind.name(), e.detail),
        }
    }
}

impl std::error::Error for PsError {}

/// Shorthand constructors used by the operator implementations.
pub(crate) fn type_check(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::TypeCheck, detail)
}
pub(crate) fn range_check(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::RangeCheck, detail)
}
pub(crate) fn undefined(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::Undefined, detail)
}
pub(crate) fn undefined_result(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::UndefinedResult, detail)
}
pub(crate) fn syntax(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::SyntaxError, detail)
}
pub(crate) fn invalid_access(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::InvalidAccess, detail)
}
pub(crate) fn limit_check(detail: impl Into<String>) -> PsError {
    PsError::runtime(ErrorKind::LimitCheck, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PsError::Exit.to_string(), "exit outside a loop");
        assert_eq!(
            PsError::runtime(ErrorKind::TypeCheck, "add: bool").to_string(),
            "typecheck: add: bool"
        );
    }

    #[test]
    fn runtime_classification() {
        assert!(PsError::runtime(ErrorKind::Undefined, "x").is_runtime());
        assert!(!PsError::Stop.is_runtime());
        assert!(!PsError::Exit.is_runtime());
        assert!(!PsError::Quit.is_runtime());
    }

    #[test]
    fn kind_names_are_postscript_names() {
        assert_eq!(ErrorKind::StackUnderflow.name(), "stackunderflow");
        assert_eq!(ErrorKind::UndefinedResult.name(), "undefinedresult");
        assert_eq!(ErrorKind::HostError.name(), "hosterror");
        assert_eq!(ErrorKind::Timeout.name(), "timeout");
        assert_eq!(ErrorKind::VmError.name(), "vmerror");
        assert!(ErrorKind::Timeout.is_budget());
        assert!(ErrorKind::VmError.is_budget());
        assert!(!ErrorKind::LimitCheck.is_budget());
    }

    #[test]
    fn context_wrapping_preserves_kind_and_adds_provenance() {
        let e = PsError::runtime(ErrorKind::Undefined, "no_such").with_context("t2.c", Some(128));
        match e {
            PsError::Runtime(r) => {
                assert_eq!(r.kind, ErrorKind::Undefined);
                assert_eq!(r.detail, "module t2.c near byte 128: no_such");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Control flow passes through untouched.
        assert_eq!(PsError::Stop.with_context("x", None), PsError::Stop);
    }
}
