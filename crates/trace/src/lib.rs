//! The session flight recorder: a structured trace journal threaded
//! through the three layers where all debugger behaviour flows — the nub
//! wire (every frame sent and received, with sequence and generation
//! numbers and fault-injection outcomes), the PostScript interpreter
//! (module loads, budget consumption, quarantine decisions), and the
//! debugger command loop (commands, events, stops, frame walks).
//!
//! Records are compact JSONL with a versioned schema ([`SCHEMA_VERSION`]),
//! a deterministic field order, and per-layer severity filtering. The
//! recorder keeps an in-memory ring buffer (the `info trace` command) and
//! optionally streams every record to a writer (`--trace FILE`).
//!
//! Determinism is a design constraint, not an accident: in logical-clock
//! mode ([`TraceConfig::wall_clock`] = false) a record's bytes are a pure
//! function of the session's behaviour, so recording the same seeded
//! session twice yields byte-identical journals — the substrate for the
//! record/replay golden tests. Wall-clock timestamps (microseconds since
//! recorder creation) are opt-in for interactive use.
//!
//! The handle type [`Trace`] is a cheap clone (`Option<Arc<Mutex<…>>>`);
//! a disabled handle is a `None` and every operation on it is a branch
//! and nothing else, which is what keeps the recorder's overhead at zero
//! when tracing is off and lets it thread through `Send` types like the
//! wire transports.

use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version stamped into every record as `"v"`. Bump when the record
/// shape changes; [`Record::parse`] rejects other versions.
pub const SCHEMA_VERSION: u64 = 1;

/// The layer a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The nub wire: frames sent/received, retransmissions, injected
    /// faults, reconnects.
    Wire,
    /// The embedded PostScript interpreter: module loads, budget
    /// consumption, quarantines.
    Ps,
    /// The debugger command loop: commands, stops, frame walks.
    Dbg,
    /// The daemon's client transport: connections accepted and shed,
    /// oversized or malformed requests, connection quarantines, idle
    /// disconnects.
    Net,
    /// The fleet runner: session outcomes, retries, shed jobs, bucket
    /// assignments, minimization steps. Records at this layer describe
    /// *whole sessions*, not events inside one — a fleet journal is the
    /// run's triage ledger, cross-checked against each session's own
    /// journal.
    Fleet,
}

impl Layer {
    /// All layers, in report order.
    pub const ALL: [Layer; 5] =
        [Layer::Wire, Layer::Ps, Layer::Dbg, Layer::Net, Layer::Fleet];

    /// The layers a single session can speak on (everything but
    /// [`Layer::Fleet`], which only the fleet runner emits).
    pub const SESSION: [Layer; 4] = [Layer::Wire, Layer::Ps, Layer::Dbg, Layer::Net];

    /// The journal's name for this layer.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Wire => "wire",
            Layer::Ps => "ps",
            Layer::Dbg => "dbg",
            Layer::Net => "net",
            Layer::Fleet => "fleet",
        }
    }

    /// Inverse of [`Layer::name`].
    pub fn from_name(s: &str) -> Option<Layer> {
        Some(match s {
            "wire" => Layer::Wire,
            "ps" => Layer::Ps,
            "dbg" => Layer::Dbg,
            "net" => Layer::Net,
            "fleet" => Layer::Fleet,
            _ => return None,
        })
    }

    /// Dense index (`wire` 0, `ps` 1, `dbg` 2, `net` 3, `fleet` 4) for
    /// per-layer arrays, such as [`TraceConfig::min_sev`].
    pub fn idx(self) -> usize {
        match self {
            Layer::Wire => 0,
            Layer::Ps => 1,
            Layer::Dbg => 2,
            Layer::Net => 3,
            Layer::Fleet => 4,
        }
    }
}

/// Record severity, in ascending order. The per-layer filter keeps a
/// record iff its severity is at least the layer's minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Routine traffic (individual frames, frame walks).
    Debug,
    /// Lifecycle milestones (attach, stop, command, module load).
    Info,
    /// Trouble survived (faults, retransmissions, budget trips,
    /// quarantines).
    Warn,
}

impl Severity {
    /// The journal's name for this severity.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }

    /// Inverse of [`Severity::name`].
    pub fn from_name(s: &str) -> Option<Severity> {
        Some(match s {
            "debug" => Severity::Debug,
            "info" => Severity::Info,
            "warn" => Severity::Warn,
            _ => return None,
        })
    }
}

/// A scalar field value. The journal is deliberately flat: no nested
/// containers, so every record diffs line-by-line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer (addresses, lengths, sequence numbers).
    U64(u64),
    /// Signed integer (exit statuses).
    I64(i64),
    /// Text (request kinds, module names, commands). `Cow` so the hot
    /// paths journal `&'static str` names without allocating; equality
    /// is content-based either way.
    Str(Cow<'static, str>),
    /// Flag (event accepted, reconnect succeeded).
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v.into())
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v.into())
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(Cow::Borrowed(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Cow::Owned(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// One journal record. Serializes to a single JSON line with a fixed key
/// order (`v`, `seq`, `t`?, `layer`, `sev`, `kind`, `fields`), so equal
/// records have equal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Recorder-wide sequence number, starting at 1.
    pub seq: u64,
    /// Microseconds since the recorder started; absent in logical-clock
    /// (deterministic) mode.
    pub t_us: Option<u64>,
    /// Originating layer.
    pub layer: Layer,
    /// Severity.
    pub sev: Severity,
    /// What happened — a short stable tag (`"send"`, `"stop"`,
    /// `"quarantine"`…). The set of kinds per layer is documented in
    /// DESIGN.md §11.
    pub kind: Cow<'static, str>,
    /// Flat key→scalar payload, in emission order.
    pub fields: Vec<(Cow<'static, str>, Value)>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Record {
    /// Serialize to one canonical JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"v\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        if let Some(t) = self.t_us {
            out.push_str(",\"t\":");
            out.push_str(&t.to_string());
        }
        out.push_str(",\"layer\":\"");
        out.push_str(self.layer.name());
        out.push_str("\",\"sev\":\"");
        out.push_str(self.sev.name());
        out.push_str("\",\"kind\":");
        push_json_str(&mut out, &self.kind);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            match v {
                Value::U64(n) => out.push_str(&n.to_string()),
                Value::I64(n) => out.push_str(&n.to_string()),
                Value::Str(s) => push_json_str(&mut out, s),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push_str("}}");
        out
    }

    /// Parse and validate one journal line against the schema.
    ///
    /// Strict by design: unknown top-level keys, duplicate keys, a wrong
    /// `v`, unknown layer/severity names, nested containers inside
    /// `fields`, and trailing garbage are all rejected — a journal that
    /// parses is a journal a future reader can trust.
    ///
    /// # Errors
    /// A description of the first violation found.
    pub fn parse(line: &str) -> Result<Record, String> {
        let mut p = Parser { b: line.as_bytes(), i: 0 };
        let rec = p.record()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(rec)
    }
}

/// Validate one journal line against the versioned schema (alias for
/// [`Record::parse`], the shape test suites use).
///
/// # Errors
/// A description of the first violation found.
pub fn validate(line: &str) -> Result<Record, String> {
    Record::parse(line)
}

/// A tiny strict JSON reader specialized to the flat record shape.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(n)
                                    .ok_or_else(|| format!("bad code point {n:#x}"))?,
                            );
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x80 => {
                    if c < 0x20 {
                        return Err(format!("raw control byte {c:#04x} in string"));
                    }
                    out.push(c as char);
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so this is valid.
                    let s = &self.b[self.i..];
                    let c = std::str::from_utf8(s)
                        .map_err(|_| "bad utf-8".to_string())?
                        .chars()
                        .next()
                        .ok_or("empty char")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.ws();
        let start = self.i;
        let neg = self.b.get(self.i) == Some(&b'-');
        if neg {
            self.i += 1;
        }
        let digits = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == digits {
            return Err(format!("expected number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if neg {
            text.parse::<i64>().map(Value::I64).map_err(|_| format!("integer overflow `{text}`"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| format!("integer overflow `{text}`"))
        }
    }

    fn scalar(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(Cow::Owned(self.string()?))),
            Some(b't') | Some(b'f') => {
                let (word, v): (&[u8], bool) =
                    if self.b.get(self.i) == Some(&b't') { (b"true", true) } else { (b"false", false) };
                if self.b.get(self.i..self.i + word.len()) == Some(word) {
                    self.i += word.len();
                    Ok(Value::Bool(v))
                } else {
                    Err(format!("bad literal at byte {}", self.i))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b'{') | Some(b'[') => {
                Err(format!("nested container at byte {} (fields must be flat scalars)", self.i))
            }
            Some(b'n') => Err(format!("null at byte {} (not part of the schema)", self.i)),
            other => Err(format!("expected scalar, found {other:?} at byte {}", self.i)),
        }
    }

    fn fields(&mut self) -> Result<Vec<(Cow<'static, str>, Value)>, String> {
        self.expect(b'{')?;
        let mut out: Vec<(Cow<'static, str>, Value)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            if out.iter().any(|(k, _)| k.as_ref() == key) {
                return Err(format!("duplicate field key `{key}`"));
            }
            self.expect(b':')?;
            let value = self.scalar()?;
            out.push((Cow::Owned(key), value));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(out);
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn record(&mut self) -> Result<Record, String> {
        self.expect(b'{')?;
        let (mut v, mut seq, mut t_us) = (None, None, None);
        let (mut layer, mut sev, mut kind, mut fields) = (None, None, None, None);
        if self.peek() == Some(b'}') {
            self.i += 1;
        } else {
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                let dup = |was_set: bool| {
                    if was_set {
                        Err(format!("duplicate key `{key}`"))
                    } else {
                        Ok(())
                    }
                };
                match key.as_str() {
                    "v" => {
                        dup(v.is_some())?;
                        match self.number()? {
                            Value::U64(n) => v = Some(n),
                            other => return Err(format!("`v` must be unsigned, got {other:?}")),
                        }
                    }
                    "seq" => {
                        dup(seq.is_some())?;
                        match self.number()? {
                            Value::U64(n) => seq = Some(n),
                            other => return Err(format!("`seq` must be unsigned, got {other:?}")),
                        }
                    }
                    "t" => {
                        dup(t_us.is_some())?;
                        match self.number()? {
                            Value::U64(n) => t_us = Some(n),
                            other => return Err(format!("`t` must be unsigned, got {other:?}")),
                        }
                    }
                    "layer" => {
                        dup(layer.is_some())?;
                        let name = self.string()?;
                        layer = Some(
                            Layer::from_name(&name)
                                .ok_or_else(|| format!("unknown layer `{name}`"))?,
                        );
                    }
                    "sev" => {
                        dup(sev.is_some())?;
                        let name = self.string()?;
                        sev = Some(
                            Severity::from_name(&name)
                                .ok_or_else(|| format!("unknown severity `{name}`"))?,
                        );
                    }
                    "kind" => {
                        dup(kind.is_some())?;
                        let k = self.string()?;
                        if k.is_empty() {
                            return Err("`kind` must be non-empty".into());
                        }
                        kind = Some(k);
                    }
                    "fields" => {
                        dup(fields.is_some())?;
                        fields = Some(self.fields()?);
                    }
                    other => return Err(format!("unknown top-level key `{other}`")),
                }
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        break;
                    }
                    other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                }
            }
        }
        let v = v.ok_or("missing `v`")?;
        if v != SCHEMA_VERSION {
            return Err(format!("schema version {v}, expected {SCHEMA_VERSION}"));
        }
        Ok(Record {
            seq: seq.ok_or("missing `seq`")?,
            t_us,
            layer: layer.ok_or("missing `layer`")?,
            sev: sev.ok_or("missing `sev`")?,
            kind: Cow::Owned(kind.ok_or("missing `kind`")?),
            fields: fields.ok_or("missing `fields`")?,
        })
    }
}

/// Recorder policy.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// How many records the in-memory ring keeps (`info trace` tail).
    pub ring_capacity: usize,
    /// Per-layer minimum severity, indexed as [`Layer::ALL`]. A record
    /// below its layer's minimum is not recorded at all.
    pub min_sev: [Severity; 5],
    /// Stamp records with microseconds since recorder creation. Leave
    /// off for deterministic (replayable) journals.
    pub wall_clock: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
            min_sev: [Severity::Debug; 5],
            wall_clock: false,
        }
    }
}

/// Per-layer record totals, as reported by `info trace`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerCounts {
    /// Records from [`Layer::Wire`].
    pub wire: u64,
    /// Records from [`Layer::Ps`].
    pub ps: u64,
    /// Records from [`Layer::Dbg`].
    pub dbg: u64,
    /// Records from [`Layer::Net`].
    pub net: u64,
    /// Records from [`Layer::Fleet`].
    pub fleet: u64,
}

impl LayerCounts {
    /// Sum over layers.
    pub fn total(&self) -> u64 {
        self.wire + self.ps + self.dbg + self.net + self.fleet
    }
}

struct Recorder {
    cfg: TraceConfig,
    start: Instant,
    next_seq: u64,
    ring: VecDeque<Record>,
    counts: [u64; 5],
    kinds: BTreeMap<(Layer, &'static str), u64>,
    writer: Option<Box<dyn Write + Send>>,
    /// Set after the first writer failure; the journal file is then
    /// incomplete and `info trace` says so.
    write_failed: bool,
}

impl Recorder {
    fn emit(&mut self, layer: Layer, sev: Severity, kind: &'static str, fields: &[(&'static str, Value)]) {
        if sev < self.cfg.min_sev[layer.idx()] {
            return;
        }
        self.next_seq += 1;
        let rec = Record {
            seq: self.next_seq,
            t_us: self
                .cfg
                .wall_clock
                .then(|| u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)),
            layer,
            sev,
            kind: Cow::Borrowed(kind),
            fields: fields
                .iter()
                .map(|(k, v)| (Cow::Borrowed(*k), v.clone()))
                .collect(),
        };
        self.counts[layer.idx()] += 1;
        *self.kinds.entry((layer, kind)).or_insert(0) += 1;
        if let Some(w) = self.writer.as_mut() {
            let mut line = rec.to_json();
            line.push('\n');
            if w.write_all(line.as_bytes()).is_err() {
                self.write_failed = true;
                self.writer = None;
            }
        }
        if self.cfg.ring_capacity > 0 {
            if self.ring.len() == self.cfg.ring_capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(rec);
        }
    }
}

/// A cheap, cloneable, `Send` handle to one recorder — or to nothing.
///
/// Every layer of the debugger holds one of these. The disabled handle
/// ([`Trace::off`], also `Default`) costs one branch per call site and
/// allocates nothing, which is how the recorder disappears when unused.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Trace(off)"),
            Some(_) => write!(f, "Trace(on, {:?})", self.counts()),
        }
    }
}

impl Trace {
    /// The disabled handle: records nothing, costs nothing.
    pub fn off() -> Trace {
        Trace::default()
    }

    /// A recorder with the given policy and no writer (ring buffer only).
    pub fn new(cfg: TraceConfig) -> Trace {
        Trace::build(cfg, None)
    }

    /// A deterministic ring-only recorder (logical clock, all severities).
    pub fn ring(capacity: usize) -> Trace {
        Trace::new(TraceConfig { ring_capacity: capacity, ..TraceConfig::default() })
    }

    /// A recorder that also streams every record to `writer` as JSONL.
    pub fn with_writer(cfg: TraceConfig, writer: Box<dyn Write + Send>) -> Trace {
        Trace::build(cfg, Some(writer))
    }

    /// A recorder streaming into an in-memory buffer the caller can read
    /// back — the journal capture used by the replay and schema tests.
    pub fn to_shared_buffer(cfg: TraceConfig) -> (Trace, SharedBuf) {
        let buf = SharedBuf::default();
        (Trace::build(cfg, Some(Box::new(buf.clone()))), buf)
    }

    fn build(cfg: TraceConfig, writer: Option<Box<dyn Write + Send>>) -> Trace {
        Trace {
            inner: Some(Arc::new(Mutex::new(Recorder {
                cfg,
                start: Instant::now(),
                next_seq: 0,
                ring: VecDeque::new(),
                counts: [0; 5],
                kinds: BTreeMap::new(),
                writer,
                write_failed: false,
            }))),
        }
    }

    /// Is a recorder attached? Call sites use this to skip building
    /// field values when tracing is off.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. A no-op on a disabled handle.
    pub fn emit(&self, layer: Layer, sev: Severity, kind: &'static str, fields: &[(&'static str, Value)]) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().emit(layer, sev, kind, fields);
        }
    }

    /// Would a record at (`layer`, `sev`) be kept? Hot call sites that
    /// must *allocate* to build field values (e.g. the script runner's
    /// per-command `cmd` record) check this first, so a disabled or
    /// severity-filtered recorder costs neither the allocation nor the
    /// lock round-trip of a doomed [`Trace::emit`].
    #[inline]
    pub fn enabled(&self, layer: Layer, sev: Severity) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => sev >= inner.lock().unwrap().cfg.min_sev[layer.idx()],
        }
    }

    /// Per-layer record totals (zero when disabled).
    pub fn counts(&self) -> LayerCounts {
        match &self.inner {
            None => LayerCounts::default(),
            Some(inner) => {
                let r = inner.lock().unwrap();
                LayerCounts {
                    wire: r.counts[0],
                    ps: r.counts[1],
                    dbg: r.counts[2],
                    net: r.counts[3],
                    fleet: r.counts[4],
                }
            }
        }
    }

    /// The layer's configured minimum severity, or `None` when disabled.
    /// Consumers that cross-check kind counts against external counters
    /// (e.g. `info trace` vs `WireMetrics`) use this to notice that
    /// Debug-level records were filtered out rather than never emitted.
    pub fn min_sev(&self, layer: Layer) -> Option<Severity> {
        self.inner.as_ref().map(|inner| inner.lock().unwrap().cfg.min_sev[layer.idx()])
    }

    /// How many records of `kind` the given layer has produced.
    pub fn kind_count(&self, layer: Layer, kind: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => {
                let r = inner.lock().unwrap();
                r.kinds
                    .iter()
                    .filter(|((l, k), _)| *l == layer && *k == kind)
                    .map(|(_, n)| *n)
                    .sum()
            }
        }
    }

    /// All (layer, kind, count) triples in deterministic order.
    pub fn kind_counts(&self) -> Vec<(Layer, &'static str, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let r = inner.lock().unwrap();
                r.kinds.iter().map(|((l, k), n)| (*l, *k, *n)).collect()
            }
        }
    }

    /// The newest `n` records in the ring, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Record> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let r = inner.lock().unwrap();
                let skip = r.ring.len().saturating_sub(n);
                r.ring.iter().skip(skip).cloned().collect()
            }
        }
    }

    /// Did a journal write fail? (The file is incomplete if so.)
    pub fn write_failed(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.lock().unwrap().write_failed)
    }

    /// Flush the attached writer, if any.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let mut r = inner.lock().unwrap();
            if let Some(w) = r.writer.as_mut() {
                if w.flush().is_err() {
                    r.write_failed = true;
                }
            }
        }
    }
}

/// A `Write` into a shared in-memory buffer; [`Trace::to_shared_buffer`]
/// hands one back so tests can read the journal they just recorded.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }

    /// The bytes written so far, as UTF-8 text.
    ///
    /// # Panics
    /// If the journal is not valid UTF-8 (it always is).
    pub fn text(&self) -> String {
        String::from_utf8(self.contents()).expect("journal is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            seq: 7,
            t_us: None,
            layer: Layer::Wire,
            sev: Severity::Info,
            kind: Cow::Borrowed("send"),
            fields: vec![
                (Cow::Borrowed("seq"), Value::U64(42)),
                (Cow::Borrowed("req"), Value::Str("Fetch".into())),
                (Cow::Borrowed("ok"), Value::Bool(true)),
                (Cow::Borrowed("delta"), Value::I64(-3)),
            ],
        }
    }

    #[test]
    fn encode_is_canonical() {
        assert_eq!(
            sample().to_json(),
            r#"{"v":1,"seq":7,"layer":"wire","sev":"info","kind":"send","fields":{"seq":42,"req":"Fetch","ok":true,"delta":-3}}"#
        );
    }

    #[test]
    fn round_trip_is_byte_identical() {
        for rec in [
            sample(),
            Record { t_us: Some(123), ..sample() },
            Record { fields: vec![], kind: Cow::Borrowed("a\"b\\c\nd"), ..sample() },
        ] {
            let line = rec.to_json();
            let back = Record::parse(&line).unwrap();
            assert_eq!(back, rec);
            assert_eq!(back.to_json(), line);
        }
    }

    #[test]
    fn parse_rejects_schema_violations() {
        let good = sample().to_json();
        assert!(Record::parse(&good).is_ok());
        for (bad, why) in [
            (good.replace("\"v\":1", "\"v\":2"), "wrong version"),
            (good.replace("\"seq\":7", "\"seqq\":7"), "unknown key"),
            (good.replace("\"wire\"", "\"fire\""), "unknown layer"),
            (good.replace("\"info\"", "\"notice\""), "unknown severity"),
            (good.replace("\"seq\":42", "\"seq\":[42]"), "nested container"),
            (good.replace("\"ok\":true", "\"ok\":null"), "null"),
            (format!("{good} trailing"), "trailing garbage"),
            (good.replace(",\"kind\":\"send\"", ""), "missing kind"),
            (good.replace("\"fields\"", "\"seq\""), "duplicate key"),
        ] {
            assert!(Record::parse(&bad).is_err(), "{why}: {bad}");
        }
    }

    #[test]
    fn disabled_handle_is_free_and_silent() {
        let t = Trace::off();
        assert!(!t.is_on());
        t.emit(Layer::Dbg, Severity::Warn, "x", &[("a", 1u64.into())]);
        assert_eq!(t.counts(), LayerCounts::default());
        assert!(t.tail(10).is_empty());
    }

    #[test]
    fn recorder_counts_filters_and_rings() {
        let t = Trace::new(TraceConfig {
            ring_capacity: 2,
            min_sev: [
                Severity::Warn,
                Severity::Debug,
                Severity::Debug,
                Severity::Debug,
                Severity::Debug,
            ],
            wall_clock: false,
        });
        assert!(!t.enabled(Layer::Wire, Severity::Debug));
        assert!(t.enabled(Layer::Wire, Severity::Warn));
        assert!(t.enabled(Layer::Fleet, Severity::Debug));
        assert!(!Trace::off().enabled(Layer::Dbg, Severity::Warn));
        t.emit(Layer::Wire, Severity::Debug, "send", &[]); // filtered out
        t.emit(Layer::Wire, Severity::Warn, "retx", &[]);
        t.emit(Layer::Ps, Severity::Debug, "budget", &[]);
        t.emit(Layer::Dbg, Severity::Info, "cmd", &[]);
        t.emit(Layer::Dbg, Severity::Info, "cmd", &[]);
        let c = t.counts();
        assert_eq!((c.wire, c.ps, c.dbg), (1, 1, 2));
        assert_eq!(t.kind_count(Layer::Dbg, "cmd"), 2);
        assert_eq!(t.kind_count(Layer::Wire, "send"), 0, "filtered below min_sev");
        let tail = t.tail(10);
        assert_eq!(tail.len(), 2, "ring capacity bounds the tail");
        // Sequence numbers count accepted records only, monotonically.
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn shared_buffer_captures_jsonl() {
        let (t, buf) = Trace::to_shared_buffer(TraceConfig::default());
        t.emit(Layer::Wire, Severity::Info, "send", &[("len", 9u64.into())]);
        t.emit(Layer::Dbg, Severity::Info, "cmd", &[("text", "c".into())]);
        t.flush();
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let rec = validate(line).unwrap();
            assert_eq!(rec.to_json(), **line, "writer emits canonical lines");
        }
    }

    #[test]
    fn deterministic_mode_reproduces_bytes() {
        let run = || {
            let (t, buf) = Trace::to_shared_buffer(TraceConfig::default());
            for i in 0..10u64 {
                t.emit(Layer::Wire, Severity::Debug, "send", &[("seq", i.into())]);
            }
            buf.contents()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wall_clock_mode_stamps_t() {
        let t = Trace::new(TraceConfig { wall_clock: true, ..TraceConfig::default() });
        t.emit(Layer::Dbg, Severity::Info, "cmd", &[]);
        assert!(t.tail(1)[0].t_us.is_some());
    }
}
