#!/bin/sh
# Repo-wide check: what CI runs, runnable locally too.
#
#   build (release)  — the tier-1 build
#   clippy           — lint gate; the whole workspace denies all warnings
#   test             — workspace suite, incl. tests/fault_injection.rs
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
