#!/bin/sh
# Repo-wide check: what CI runs, runnable locally too.
#
#   build (release)  — the tier-1 build
#   clippy           — lint gate; the whole workspace denies all warnings
#   test             — workspace suite, incl. tests/fault_injection.rs
#   robustness gate  — the artifact-corruption suite and the fuzz smoke,
#                      run by name so a filter can never silently drop them
#   replay-golden    — deterministic record/replay against the checked-in
#                      golden transcripts and journals, all architectures
#   chaos soak       — 200 seeded target-memory-corruption sessions across
#                      all architectures (MIPS both byte orders): no
#                      panics, typed truncation reasons, health accounting
#   daemon marathon  — ldbd with 104 simultaneous sessions (healthy +
#                      chaos + fault + wedged): zero cross-session
#                      interference, per-tenant health, graceful cap
#   daemon shutdown  — teardown mid-command: typed close reasons, idle
#                      eviction, no leaked threads, TCP quickstart
#   shared cache     — N same-binary tenants pay exactly one symbol-table
#                      compile (counted over the health verb); health
#                      polling cannot keep an idle tenant alive
#   daemon protocol  — escape/unescape round-trips (proptest), payload
#                      whitespace preserved, CRLF clients over real TCP
#   service-edge     — the hostile-client marathon (64 seeded chaos
#                      clients vs 16 healthy tenants), typed rejection /
#                      quarantine / shedding / drain gates, and proptest
#                      fuzz of arbitrary byte streams over real TCP
#   time-travel      — the reverse-execution differential harness
#                      (reverse-step;step and reverse-continue;continue
#                      round-trip to bit-identical machine state on every
#                      architecture, typed truncation past the oldest
#                      checkpoint) and the pinned reverse-session goldens
#   fleet smoke      — 64 supervised headless sessions (every script
#                      template × every architecture): outcome coverage,
#                      byte-identical reports across worker counts, retry
#                      policy, typed shedding, journal cross-check, and an
#                      end-to-end chaos-seed minimization
#
# `--soak` additionally runs the 10k-session fleet soak (release mode,
# two same-corpus passes, byte-identical bucket reports, zero leaked
# threads, one minimized chaos seed) — minutes, not seconds, so it is
# opt-in here and a scheduled job in CI rather than a per-push gate.
set -eu
cd "$(dirname "$0")/.."

soak=0
for arg in "$@"; do
    case "$arg" in
        --soak) soak=1 ;;
        *) echo "usage: $0 [--soak]" >&2; exit 2 ;;
    esac
done

cargo build --release
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
cargo test -q --test artifact_corruption
cargo test -q -p ldb-postscript --test fuzz
cargo test -q --test replay_golden
cargo test -q --test chaos_soak
cargo test -q --test daemon_marathon
cargo test -q --test daemon_shutdown
cargo test -q --test daemon_shared_cache
cargo test -q --test daemon_protocol
cargo test -q --test daemon_hostile_client
cargo test -q --test reverse_exec
cargo test -q --test reverse_golden
cargo test -q --test script_recovery
cargo test -q --test fleet_smoke

if [ "$soak" = 1 ]; then
    cargo test -q --release --test fleet_soak -- --ignored --nocapture
fi
